//! The evaluation harness: one function per table/figure of the paper.
//!
//! Every artifact of the paper's evaluation section maps to a function
//! here (see DESIGN.md §3 for the index). The expensive per-benchmark
//! work is shared through [`evaluate_benchmark`], which runs the
//! instrumented baseline, every Figure 4 scheme, and both compiler
//! algorithms once; figure-specific functions then aggregate. The
//! 20-benchmark sweeps — and, within one benchmark, the per-scheme
//! simulations — fan out on the in-tree `ndc-par` runtime (the harness
//! layer is the only parallel code; each simulation is deterministic
//! and single-threaded, and `ndc-par` returns results in input order,
//! so parallel and serial runs produce bit-identical output; set
//! `NDC_THREADS=1` to force the serial path). Nested fan-outs are
//! safe: a `parallel_map` issued from inside a worker runs serially,
//! so the per-scheme level only spawns when a benchmark is evaluated
//! on its own (e.g. `ndc-eval fig4 --bench swim`).

use ndc_cme::{
    accuracy_against_sim, offload_accuracy, AccuracyReport, OffloadAccuracyReport, RefKey,
};
use ndc_compiler::{
    compile_algorithm1, compile_algorithm2, compile_coarse, Algorithm2Options, CandidateRecord,
    CompilerReport,
};
use ndc_ir::{lower, LowerOptions, Program};
use ndc_obs::ledger::AttributionLedger;
use ndc_obs::span::SpanTrace;
use ndc_obs::{Event, Metrics, ObsLevel};
use ndc_sim::engine::{simulate, simulate_obs, simulate_tenants, Engine};
use ndc_sim::instrument::Instrumentation;
use ndc_sim::schemes::{Scheme, WaitBudget};
use ndc_sim::SimResult;
use ndc_types::{
    geomean_improvement, ArchConfig, Cycle, NdcConfig, NdcLocation, OpClass, Pc, WindowHistogram,
    ALL_NDC_LOCATIONS,
};
use ndc_workloads::{all_benchmarks, Benchmark, Scale};

/// The Figure 4 scheme lineup, in the paper's bar order (Default,
/// Oracle, Wait(5/10/25/50%), Last Wait, Algorithm-1, Algorithm-2 —
/// Algorithms are run separately since they need compilation).
pub fn figure4_schemes() -> Vec<Scheme> {
    vec![
        Scheme::NdcAll {
            budget: WaitBudget::Forever,
        },
        Scheme::Oracle { reuse_aware: true },
        Scheme::NdcAll {
            budget: WaitBudget::PctOfCap(5),
        },
        Scheme::NdcAll {
            budget: WaitBudget::PctOfCap(10),
        },
        Scheme::NdcAll {
            budget: WaitBudget::PctOfCap(25),
        },
        Scheme::NdcAll {
            budget: WaitBudget::PctOfCap(50),
        },
        Scheme::NdcAll {
            budget: WaitBudget::LastWindow,
        },
    ]
}

/// Everything one benchmark contributes to the evaluation.
pub struct BenchmarkEvaluation {
    pub name: String,
    pub baseline: SimResult,
    /// The characterization data from the instrumented baseline
    /// (Figures 2, 3, 5).
    pub instrumentation: Instrumentation,
    /// Results of the Figure 4 measurement schemes, in
    /// [`figure4_schemes`] order.
    pub scheme_results: Vec<SimResult>,
    /// Algorithm 1: compiled result + compiler report.
    pub alg1: (SimResult, CompilerReport),
    /// Algorithm 2: compiled result + compiler report.
    pub alg2: (SimResult, CompilerReport),
    /// CME estimation accuracy against the baseline run (Table 2).
    pub cme_accuracy: AccuracyReport,
}

impl BenchmarkEvaluation {
    /// Improvement (%) of a scheme result over the baseline.
    pub fn improvement(&self, r: &SimResult) -> f64 {
        r.improvement_over(&self.baseline)
    }

    /// The oracle run (Figure 4 bar 2, Figure 6 breakdown).
    pub fn oracle(&self) -> &SimResult {
        &self.scheme_results[1]
    }
}

/// Map a [`RefKey`] to the PC the lowering assigned its accesses.
fn pc_of_refkey(key: &RefKey) -> Pc {
    ndc_ir::pc_of(key.nest_pos, key.stmt_pos, ndc_ir::ROLE_MAIN)
}

/// Observability artifacts from one benchmark evaluation: every run's
/// component-level metrics tree and (optionally) its trace events, in
/// fixed job order — `baseline`, the seven [`figure4_schemes`] labels,
/// `alg1`, `alg2`. The order is the `ndc-par` job input order, so it
/// is identical under any `NDC_THREADS`.
#[derive(Default)]
pub struct BenchObs {
    pub per_run: Vec<(String, Metrics)>,
    pub per_run_events: Vec<(String, Vec<Event>)>,
}

/// Run the full shared evaluation of one benchmark.
pub fn evaluate_benchmark(bench: &Benchmark, cfg: ArchConfig, scale: Scale) -> BenchmarkEvaluation {
    evaluate_benchmark_obs(bench, cfg, scale, ObsLevel::off()).0
}

/// [`evaluate_benchmark`] with the observability layer enabled: each
/// simulated run also yields a per-component [`Metrics`] tree and, if
/// the trace ring is on, its latest-window events (collected into
/// [`BenchObs`] in job input order, preserving determinism).
pub fn evaluate_benchmark_obs(
    bench: &Benchmark,
    cfg: ArchConfig,
    scale: Scale,
    obs: ObsLevel,
) -> (BenchmarkEvaluation, BenchObs) {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    // The baseline lowering is shared read-only by the instrumented
    // run and every measurement scheme — computed once, not per
    // scheme.
    let traces = lower(&prog, &opts, None);

    // Every remaining piece of the evaluation is independent given
    // `traces`: the instrumented baseline (+ CME accuracy), the seven
    // Figure 4 measurement schemes, and the two compiler algorithms
    // (each of which lowers its own schedule). Fan them out; ndc-par
    // returns results in job order, so the output is bit-identical to
    // the serial path.
    enum Job {
        Baseline,
        Scheme(Scheme),
        Algorithm(u8),
    }
    enum JobOut {
        Baseline(Box<(SimResult, Instrumentation, AccuracyReport)>),
        Scheme(Box<SimResult>),
        Algorithm(Box<(SimResult, CompilerReport)>),
    }

    let mut jobs = vec![Job::Baseline];
    jobs.extend(figure4_schemes().into_iter().map(Job::Scheme));
    jobs.push(Job::Algorithm(1));
    jobs.push(Job::Algorithm(2));

    // Per-job run labels in the same order as `jobs`, used to key the
    // observability output.
    let labels: Vec<String> = std::iter::once("baseline".to_string())
        .chain(figure4_schemes().into_iter().map(|s| s.label()))
        .chain(["alg1".to_string(), "alg2".to_string()])
        .collect();

    let outs = ndc_par::parallel_map(&jobs, |job| match job {
        Job::Baseline => {
            // Instrumented baseline: execution time + characterization
            // + per-reference cache counters.
            let base_out = Engine::new(cfg, &traces, Scheme::Baseline)
                .with_instrumentation()
                .with_obs(obs)
                .run();
            let baseline = base_out.result;
            let instrumentation = base_out.instrumentation.expect("instrumented run");
            // Table 2: CME predictions vs the baseline's measured
            // behaviour.
            let cme = ndc_cme::analyze(&prog, &cfg, cores);
            let l1_counters = baseline
                .pc_l1
                .iter()
                .map(|(k, v)| (*k, (v.hits, v.misses)))
                .collect();
            let l2_counters = baseline
                .pc_l2
                .iter()
                .map(|(k, v)| (*k, (v.hits, v.misses)))
                .collect();
            let cme_accuracy = accuracy_against_sim(&cme, &l1_counters, &l2_counters, pc_of_refkey);
            (
                JobOut::Baseline(Box::new((baseline, instrumentation, cme_accuracy))),
                base_out.metrics,
                base_out.events,
            )
        }
        Job::Scheme(s) => {
            let out = simulate_obs(cfg, &traces, *s, obs);
            (
                JobOut::Scheme(Box::new(out.result)),
                out.metrics,
                out.events,
            )
        }
        Job::Algorithm(which) => {
            let (sched, report) = if *which == 1 {
                compile_algorithm1(&prog, &cfg, cores)
            } else {
                compile_algorithm2(&prog, &cfg, cores, Algorithm2Options::default())
            };
            let t = lower(&prog, &opts, Some(&sched));
            let out = simulate_obs(cfg, &t, Scheme::Compiled, obs);
            (
                JobOut::Algorithm(Box::new((out.result, report))),
                out.metrics,
                out.events,
            )
        }
    });

    let mut baseline_parts = None;
    let mut scheme_results = Vec::new();
    let mut algs = Vec::new();
    let mut bench_obs = BenchObs::default();
    for (label, (out, metrics, events)) in labels.into_iter().zip(outs) {
        if let Some(m) = metrics {
            bench_obs.per_run.push((label.clone(), m));
        }
        if obs.trace_capacity > 0 {
            bench_obs.per_run_events.push((label, events));
        }
        match out {
            JobOut::Baseline(b) => baseline_parts = Some(*b),
            JobOut::Scheme(r) => scheme_results.push(*r),
            JobOut::Algorithm(a) => algs.push(*a),
        }
    }
    let (baseline, instrumentation, cme_accuracy) = baseline_parts.expect("baseline job ran");
    let (a2, r2) = algs.pop().expect("algorithm 2 job ran");
    let (a1, r1) = algs.pop().expect("algorithm 1 job ran");

    (
        BenchmarkEvaluation {
            name: bench.name.to_string(),
            baseline,
            instrumentation,
            scheme_results,
            alg1: (a1, r1),
            alg2: (a2, r2),
            cme_accuracy,
        },
        bench_obs,
    )
}

/// Evaluate all 20 benchmarks (ndc-par fan-out, ordered results).
pub fn evaluate_all(cfg: ArchConfig, scale: Scale) -> Vec<BenchmarkEvaluation> {
    let benches = all_benchmarks();
    ndc_par::parallel_map(&benches, |b| evaluate_benchmark(b, cfg, scale))
}

// ---------------------------------------------------------------------
// Figure 2: arrival-window CDFs per location.
// ---------------------------------------------------------------------

/// Per-benchmark, per-location window CDF values (truncated at 50% as
/// in the paper's plots).
pub fn figure2(evals: &[BenchmarkEvaluation]) -> Vec<(String, [[f64; 7]; 4])> {
    evals
        .iter()
        .map(|e| {
            let mut per_loc = [[0.0; 7]; 4];
            for (i, slot) in per_loc.iter_mut().enumerate() {
                *slot = e.instrumentation.window_hist[i].cdf().truncated(50.0);
            }
            (e.name.clone(), per_loc)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 3: breakeven vs arrival-window distributions, averaged over
// all benchmarks.
// ---------------------------------------------------------------------

pub struct Figure3 {
    pub windows: [WindowHistogram; 4],
    pub breakevens: [WindowHistogram; 4],
}

pub fn figure3(evals: &[BenchmarkEvaluation]) -> Figure3 {
    let mut out = Figure3 {
        windows: Default::default(),
        breakevens: Default::default(),
    };
    for e in evals {
        for i in 0..4 {
            out.windows[i].merge(&e.instrumentation.window_hist[i]);
            out.breakevens[i].merge(&e.instrumentation.breakeven_hist[i]);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 4: performance benefits of every scheme.
// ---------------------------------------------------------------------

/// One Figure 4 row: improvements (%) over the original program.
pub struct Figure4Row {
    pub name: String,
    /// Default, Oracle, Wait(5/10/25/50), LastWait — in
    /// [`figure4_schemes`] order.
    pub schemes: Vec<f64>,
    pub alg1: f64,
    pub alg2: f64,
}

pub fn figure4(evals: &[BenchmarkEvaluation]) -> Vec<Figure4Row> {
    evals
        .iter()
        .map(|e| Figure4Row {
            name: e.name.clone(),
            schemes: e.scheme_results.iter().map(|r| e.improvement(r)).collect(),
            alg1: e.improvement(&e.alg1.0),
            alg2: e.improvement(&e.alg2.0),
        })
        .collect()
}

/// Geometric-mean summary of a Figure 4 column.
pub fn figure4_geomean(rows: &[Figure4Row], col: impl Fn(&Figure4Row) -> f64) -> f64 {
    let vals: Vec<f64> = rows.iter().map(col).collect();
    geomean_improvement(&vals)
}

// ---------------------------------------------------------------------
// Figure 5: consecutive arrival windows of one static instruction.
// ---------------------------------------------------------------------

/// The first `n` windows observed for the busiest PC of a benchmark
/// (`None` = the operands never co-located for that instance).
pub fn figure5(eval: &BenchmarkEvaluation, n: usize) -> Vec<Option<Cycle>> {
    let Some(pc) = eval.instrumentation.busiest_pc() else {
        return Vec::new();
    };
    eval.instrumentation.pc_series[&pc]
        .iter()
        .take(n)
        .copied()
        .collect()
}

// ---------------------------------------------------------------------
// Figures 6 and 13: NDC location breakdowns.
// ---------------------------------------------------------------------

/// Per-benchmark per-location breakdown (%) of where NDC was performed.
pub struct BreakdownRow {
    pub name: String,
    pub pct: [f64; 4],
}

/// Figure 6: the oracle's NDC location distribution.
pub fn figure6(evals: &[BenchmarkEvaluation]) -> Vec<BreakdownRow> {
    evals
        .iter()
        .map(|e| BreakdownRow {
            name: e.name.clone(),
            pct: e.oracle().ndc_breakdown_pct(),
        })
        .collect()
}

/// Figure 13: Algorithm 1's NDC location distribution (plus footnote
/// 6's offloaded-instruction fraction, via `SimResult::ndc_fraction`).
pub fn figure13(evals: &[BenchmarkEvaluation]) -> Vec<BreakdownRow> {
    evals
        .iter()
        .map(|e| BreakdownRow {
            name: e.name.clone(),
            pct: e.alg1.0.ndc_breakdown_pct(),
        })
        .collect()
}

/// Average of a set of breakdown rows (the paper's "average" bar).
pub fn breakdown_average(rows: &[BreakdownRow]) -> [f64; 4] {
    let mut avg = [0.0; 4];
    let n = rows.len().max(1) as f64;
    for r in rows {
        for (a, p) in avg.iter_mut().zip(r.pct.iter()) {
            *a += p / n;
        }
    }
    avg
}

// ---------------------------------------------------------------------
// Figure 14: Algorithm 1 restricted to a single component.
// ---------------------------------------------------------------------

pub struct Figure14Row {
    pub name: String,
    /// Improvement when only this location (by index) is enabled.
    pub isolated: [f64; 4],
    /// Improvement with all four locations (the Algorithm 1 bar).
    pub all: f64,
}

pub fn figure14(bench: &Benchmark, cfg: ArchConfig, scale: Scale) -> Figure14Row {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    let traces = lower(&prog, &opts, None);
    let baseline = simulate(cfg, &traces, Scheme::Baseline).result;

    let run_with_mask = |mask: u8| -> f64 {
        let mut c = cfg;
        c.ndc.enabled_mask = mask;
        let (sched, _) = compile_algorithm1(&prog, &c, cores);
        let t = lower(&prog, &opts, Some(&sched));
        simulate(c, &t, Scheme::Compiled)
            .result
            .improvement_over(&baseline)
    };

    // The five compile+lower+simulate runs (one per isolated location
    // plus the all-locations bar) are independent given the shared
    // baseline above.
    let masks: Vec<u8> = ALL_NDC_LOCATIONS
        .iter()
        .map(|&loc| NdcConfig::only(loc))
        .chain([NdcConfig::ALL_LOCATIONS])
        .collect();
    let improvements = ndc_par::parallel_map(&masks, |&m| run_with_mask(m));
    let mut isolated = [0.0; 4];
    for (loc, imp) in ALL_NDC_LOCATIONS.iter().zip(&improvements) {
        isolated[loc.index()] = *imp;
    }
    Figure14Row {
        name: bench.name.to_string(),
        isolated,
        all: improvements[4],
    }
}

pub fn figure14_all(cfg: ArchConfig, scale: Scale) -> Vec<Figure14Row> {
    let benches = all_benchmarks();
    ndc_par::parallel_map(&benches, |b| figure14(b, cfg, scale))
}

// ---------------------------------------------------------------------
// Figure 15: fraction of NDC opportunities exercised by Algorithm 2.
// ---------------------------------------------------------------------

pub fn figure15(evals: &[BenchmarkEvaluation]) -> Vec<(String, f64)> {
    evals
        .iter()
        .map(|e| (e.name.clone(), e.alg2.1.exercised_pct()))
        .collect()
}

// ---------------------------------------------------------------------
// Figure 16: L1/L2 miss rates under Algorithms 1 and 2.
// ---------------------------------------------------------------------

pub struct Figure16Row {
    pub name: String,
    pub l1_alg1: f64,
    pub l1_alg2: f64,
    pub l2_alg1: f64,
    pub l2_alg2: f64,
}

pub fn figure16(evals: &[BenchmarkEvaluation]) -> Vec<Figure16Row> {
    evals
        .iter()
        .map(|e| Figure16Row {
            name: e.name.clone(),
            l1_alg1: 100.0 * e.alg1.0.l1.miss_rate(),
            l1_alg2: 100.0 * e.alg2.0.l1.miss_rate(),
            l2_alg1: 100.0 * e.alg1.0.l2.miss_rate(),
            l2_alg2: 100.0 * e.alg2.0.l2.miss_rate(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 17: sensitivity study.
// ---------------------------------------------------------------------

/// One sensitivity configuration.
pub struct SensitivityConfig {
    pub label: String,
    pub cfg: ArchConfig,
}

/// The paper's sensitivity axes: default, 4×4 and 6×6 meshes, 256 KB
/// and 1 MB L2 banks, and offloadable ops restricted to `{+,−}`.
pub fn figure17_configs() -> Vec<SensitivityConfig> {
    let base = ArchConfig::paper_default();
    let mut configs = vec![SensitivityConfig {
        label: "default (5x5, 512KB, all ops)".into(),
        cfg: base,
    }];
    for (w, h) in [(4u16, 4u16), (6, 6)] {
        let mut c = base;
        c.noc.width = w;
        c.noc.height = h;
        configs.push(SensitivityConfig {
            label: format!("{w}x{h} mesh"),
            cfg: c,
        });
    }
    for kb in [256u64, 1024] {
        let mut c = base;
        c.l2.size_bytes = kb * 1024;
        configs.push(SensitivityConfig {
            label: format!("{kb}KB L2 banks"),
            cfg: c,
        });
    }
    let mut c = base;
    c.ndc.op_class = OpClass::AddSubOnly;
    configs.push(SensitivityConfig {
        label: "ops restricted to +/-".into(),
        cfg: c,
    });
    configs
}

pub struct Figure17Row {
    pub label: String,
    /// Geometric means across all benchmarks.
    pub alg1: f64,
    pub alg2: f64,
    pub oracle: f64,
}

/// Run the sensitivity sweep. Each configuration runs baseline, oracle,
/// and both algorithms on every benchmark; rows are geometric means.
///
/// The whole (configuration × benchmark) grid is flattened into one
/// fan-out so a slow configuration can't serialize the sweep behind a
/// per-configuration barrier.
pub fn figure17(scale: Scale) -> Vec<Figure17Row> {
    let configs = figure17_configs();
    let benches = all_benchmarks();
    let pairs: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..benches.len()).map(move |bi| (ci, bi)))
        .collect();

    let cells: Vec<(f64, f64, f64)> = ndc_par::parallel_map(&pairs, |&(ci, bi)| {
        let cfg = configs[ci].cfg;
        let prog = benches[bi].build(scale);
        let cores = cfg.nodes();
        let opts = LowerOptions {
            cores,
            emit_busy: true,
        };
        // Shared baseline lowering for this (config, benchmark) cell;
        // the oracle run reuses it, only the algorithms re-lower.
        let traces = lower(&prog, &opts, None);
        let base = simulate(cfg, &traces, Scheme::Baseline).result;
        let oracle = simulate(cfg, &traces, Scheme::Oracle { reuse_aware: true })
            .result
            .improvement_over(&base);
        let (s1, _) = compile_algorithm1(&prog, &cfg, cores);
        let a1 = simulate(cfg, &lower(&prog, &opts, Some(&s1)), Scheme::Compiled)
            .result
            .improvement_over(&base);
        let (s2, _) = compile_algorithm2(&prog, &cfg, cores, Algorithm2Options::default());
        let a2 = simulate(cfg, &lower(&prog, &opts, Some(&s2)), Scheme::Compiled)
            .result
            .improvement_over(&base);
        (a1, a2, oracle)
    });

    configs
        .into_iter()
        .enumerate()
        .map(|(ci, sc)| {
            let rows = &cells[ci * benches.len()..(ci + 1) * benches.len()];
            let a1: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let a2: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let oracle: Vec<f64> = rows.iter().map(|r| r.2).collect();
            Figure17Row {
                label: sc.label,
                alg1: geomean_improvement(&a1),
                alg2: geomean_improvement(&a2),
                oracle: geomean_improvement(&oracle),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 2: CME estimation accuracy.
// ---------------------------------------------------------------------

pub fn table2(evals: &[BenchmarkEvaluation]) -> Vec<(String, AccuracyReport)> {
    evals
        .iter()
        .map(|e| (e.name.clone(), e.cme_accuracy))
        .collect()
}

// ---------------------------------------------------------------------
// `ndc-eval explain`: causal span traces joined with the compiler's
// decision provenance and the offload cost-model cross-check.
// ---------------------------------------------------------------------

/// Default span sampling rate for `explain` sweeps: one request in 64,
/// enough material for decomposition without unbounded trace memory.
pub const EXPLAIN_SAMPLE_ONE_IN: u32 = 64;

/// Everything `ndc-eval explain` reports for one benchmark: the
/// Algorithm 2 compiled run with span tracing on, the compiler's
/// per-chain decision provenance, and the predicted-vs-measured
/// offload-latency cross-check.
pub struct ExplainReport {
    pub name: String,
    /// The compiled (Algorithm 2) run the spans were sampled from.
    pub result: SimResult,
    /// Compiler report carrying the per-chain [`ndc_compiler::ChainProvenance`].
    pub compiler: CompilerReport,
    /// Sampled span traces (deterministic in the request id).
    pub spans: Vec<SpanTrace>,
    /// Predicted-vs-measured offload cycles per NDC location, under
    /// the reuse-derived static cost model.
    pub offload: OffloadAccuracyReport,
    /// The same cross-check under the retired CME-probability
    /// heuristic — the baseline the model-accuracy gate compares
    /// against.
    pub offload_legacy: OffloadAccuracyReport,
}

impl ExplainReport {
    /// The `k` slowest sampled requests, slowest first (ties broken by
    /// request id, so the order is deterministic).
    pub fn top_slowest(&self, k: usize) -> Vec<&SpanTrace> {
        let mut refs: Vec<&SpanTrace> = self.spans.iter().collect();
        refs.sort_by(|a, b| b.latency().cmp(&a.latency()).then(a.id.cmp(&b.id)));
        refs.truncate(k);
        refs
    }
}

/// Mean predicted offload cycles per location over every chain the
/// planner assessed (the candidate tables of the provenance) — the
/// predicted side of the cost-model cross-check. `pick` selects which
/// model's prediction to average.
fn offload_means_by(report: &CompilerReport, pick: impl Fn(&CandidateRecord) -> f64) -> [f64; 4] {
    let mut sum = [0.0; 4];
    let mut n = [0u64; 4];
    for chain in &report.provenance {
        for c in &chain.candidates {
            sum[c.location.index()] += pick(c);
            n[c.location.index()] += 1;
        }
    }
    let mut out = [0.0; 4];
    for i in 0..4 {
        if n[i] > 0 {
            out[i] = sum[i] / n[i] as f64;
        }
    }
    out
}

/// Per-location mean predictions of the reuse-derived static model.
pub fn predicted_offload_means(report: &CompilerReport) -> [f64; 4] {
    offload_means_by(report, |c| c.predicted_cycles)
}

/// Per-location mean predictions of the retired CME-probability
/// heuristic, kept as the model-accuracy baseline.
pub fn predicted_offload_means_legacy(report: &CompilerReport) -> [f64; 4] {
    offload_means_by(report, |c| c.predicted_cycles_legacy)
}

/// Compile one benchmark with Algorithm 2, run it with span tracing at
/// `one_in`, and join spans, provenance, and the offload cross-check.
pub fn explain_benchmark(
    bench: &Benchmark,
    cfg: ArchConfig,
    scale: Scale,
    one_in: u32,
) -> ExplainReport {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    let (sched, compiler) = compile_algorithm2(&prog, &cfg, cores, Algorithm2Options::default());
    let traces = lower(&prog, &opts, Some(&sched));
    let out = simulate_obs(cfg, &traces, Scheme::Compiled, ObsLevel::with_spans(one_in));
    let offload = offload_accuracy(
        predicted_offload_means(&compiler),
        out.result.ndc_offload_cycles,
        out.result.ndc_offload_samples,
    );
    let offload_legacy = offload_accuracy(
        predicted_offload_means_legacy(&compiler),
        out.result.ndc_offload_cycles,
        out.result.ndc_offload_samples,
    );
    ExplainReport {
        name: bench.name.to_string(),
        result: out.result,
        compiler,
        spans: out.spans,
        offload,
        offload_legacy,
    }
}

/// [`explain_benchmark`] over all 20 benchmarks (ndc-par fan-out,
/// ordered results) — the rows of the explain error table.
pub fn explain_all(cfg: ArchConfig, scale: Scale, one_in: u32) -> Vec<ExplainReport> {
    let benches = all_benchmarks();
    ndc_par::parallel_map(&benches, |b| explain_benchmark(b, cfg, scale, one_in))
}

// ---------------------------------------------------------------------
// `ndc-eval profile`: per-tenant attribution ledger, latency sketch
// quantiles, and the slowest sampled requests.
// ---------------------------------------------------------------------

/// Default span sampling rate for `profile` sweeps (the outlier table
/// only needs a representative tail, not every request).
pub const PROFILE_SAMPLE_ONE_IN: u32 = 64;

/// Round-robin core→tenant assignment: core `c` belongs to tenant
/// `c mod num_tenants`. One tenant reproduces the default
/// single-tenant world, so every existing figure is unchanged.
pub fn round_robin_tenants(cores: usize, num_tenants: u16) -> Vec<u16> {
    let n = num_tenants.max(1) as usize;
    (0..cores).map(|c| (c % n) as u16).collect()
}

/// Everything `ndc-eval profile` reports for one benchmark: the
/// attribution ledger of the Algorithm 2 compiled run (cores mapped to
/// tenants round-robin), the sampled span traces for the outlier
/// table, and the run result.
pub struct ProfileReport {
    pub name: String,
    /// The compiled (Algorithm 2) run the ledger was charged from.
    pub result: SimResult,
    /// Per-tenant attribution rows with latency/queue-delay/offload
    /// sketches.
    pub ledger: AttributionLedger,
    /// Sampled span traces (deterministic in the request id).
    pub spans: Vec<SpanTrace>,
    /// Trace events evicted from the observability ring (0 unless a
    /// `--trace` ring overflowed; surfaced so profiles are explicit
    /// about lossy capture).
    pub events_dropped: u64,
}

impl ProfileReport {
    /// The `k` slowest sampled requests, slowest first (ties broken by
    /// request id, so the order is deterministic).
    pub fn top_slowest(&self, k: usize) -> Vec<&SpanTrace> {
        let mut refs: Vec<&SpanTrace> = self.spans.iter().collect();
        refs.sort_by(|a, b| b.latency().cmp(&a.latency()).then(a.id.cmp(&b.id)));
        refs.truncate(k);
        refs
    }
}

/// Compile one benchmark with Algorithm 2 and run it with the
/// attribution ledger on, cores assigned to `num_tenants` tenants
/// round-robin, sampling one request in `one_in` for the outlier
/// table. Pure observation: the simulated timing is identical to the
/// unprofiled run.
pub fn profile_benchmark(
    bench: &Benchmark,
    cfg: ArchConfig,
    scale: Scale,
    num_tenants: u16,
    one_in: u32,
) -> ProfileReport {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    let (sched, _) = compile_algorithm2(&prog, &cfg, cores, Algorithm2Options::default());
    let traces = lower(&prog, &opts, Some(&sched));
    let obs = ObsLevel {
        span_one_in: one_in,
        ledger: true,
        ..ObsLevel::default()
    };
    let tenants = round_robin_tenants(cores, num_tenants);
    let out = simulate_tenants(cfg, &traces, Scheme::Compiled, obs, tenants);
    ProfileReport {
        name: bench.name.to_string(),
        result: out.result,
        ledger: out.ledger.expect("profile run collects the ledger"),
        spans: out.spans,
        events_dropped: out.events_dropped,
    }
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

/// §5.4: disabling route reshaping cuts router NDC by ~40%.
pub struct RoutingAblationRow {
    pub name: String,
    pub router_ndc_with: u64,
    pub router_ndc_without: u64,
}

pub fn ablation_routing(bench: &Benchmark, cfg: ArchConfig, scale: Scale) -> RoutingAblationRow {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    let (sched, _) = compile_algorithm1(&prog, &cfg, cores);
    let with = simulate(cfg, &lower(&prog, &opts, Some(&sched)), Scheme::Compiled).result;

    let mut stripped = sched.clone();
    for p in &mut stripped.precomputes {
        p.reshape_routes = false;
    }
    let without = simulate(cfg, &lower(&prog, &opts, Some(&stripped)), Scheme::Compiled).result;

    RoutingAblationRow {
        name: bench.name.to_string(),
        router_ndc_with: with.ndc_performed_at(NdcLocation::LinkBuffer),
        router_ndc_without: without.ndc_performed_at(NdcLocation::LinkBuffer),
    }
}

/// §5.4: coarse-grain (whole-nest) mapping performs poorly.
pub struct CoarseAblationRow {
    pub name: String,
    pub fine_alg1: f64,
    pub fine_alg2: f64,
    pub coarse_alg1: f64,
    pub coarse_alg2: f64,
}

pub fn ablation_coarse(bench: &Benchmark, cfg: ArchConfig, scale: Scale) -> CoarseAblationRow {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    let traces = lower(&prog, &opts, None);
    let base = simulate(cfg, &traces, Scheme::Baseline).result;
    let run = |sched: &ndc_ir::Schedule| -> f64 {
        simulate(cfg, &lower(&prog, &opts, Some(sched)), Scheme::Compiled)
            .result
            .improvement_over(&base)
    };
    let (s1, _) = compile_algorithm1(&prog, &cfg, cores);
    let (s2, _) = compile_algorithm2(&prog, &cfg, cores, Algorithm2Options::default());
    let (c1, _) = compile_coarse(&prog, &cfg, false);
    let (c2, _) = compile_coarse(&prog, &cfg, true);
    CoarseAblationRow {
        name: bench.name.to_string(),
        fine_alg1: run(&s1),
        fine_alg2: run(&s2),
        coarse_alg1: run(&c1),
        coarse_alg2: run(&c2),
    }
}

/// Extension: sweep Algorithm 2's reuse threshold `k` (the paper's
/// future-work parameter, §5.3/§5.4) on one benchmark.
pub struct KSweepRow {
    pub k: u32,
    pub improvement: f64,
    pub exercised_pct: f64,
}

pub fn ablation_k(bench: &Benchmark, cfg: ArchConfig, scale: Scale, ks: &[u32]) -> Vec<KSweepRow> {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    let traces = lower(&prog, &opts, None);
    let base = simulate(cfg, &traces, Scheme::Baseline).result;
    ks.iter()
        .map(|&k| {
            let (sched, report) = compile_algorithm2(
                &prog,
                &cfg,
                cores,
                Algorithm2Options {
                    reuse_k: k,
                    ..Default::default()
                },
            );
            let r = simulate(cfg, &lower(&prog, &opts, Some(&sched)), Scheme::Compiled).result;
            KSweepRow {
                k,
                improvement: r.improvement_over(&base),
                exercised_pct: report.exercised_pct(),
            }
        })
        .collect()
}

/// Extension: the Markov-chain window predictor the paper mentions in
/// §4.4 ("even a Markov Chain-based predictor generated similar
/// results") — compared against Last-Wait and the oracle.
pub struct MarkovRow {
    pub name: String,
    pub last_wait: f64,
    pub markov: f64,
    pub oracle: f64,
}

pub fn ablation_markov(bench: &Benchmark, cfg: ArchConfig, scale: Scale) -> MarkovRow {
    let prog = bench.build(scale);
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let traces = lower(&prog, &opts, None);
    let base = simulate(cfg, &traces, Scheme::Baseline).result;
    let run = |s: Scheme| simulate(cfg, &traces, s).result.improvement_over(&base);
    MarkovRow {
        name: bench.name.to_string(),
        last_wait: run(Scheme::NdcAll {
            budget: WaitBudget::LastWindow,
        }),
        markov: run(Scheme::NdcAll {
            budget: WaitBudget::Markov,
        }),
        oracle: run(Scheme::Oracle { reuse_aware: true }),
    }
}

/// Extension: the data-layout optimization of §5.2.1's fourth
/// challenge, applied before Algorithm 2.
pub struct LayoutRow {
    pub name: String,
    pub without: f64,
    pub with_layout: f64,
    pub chains_aligned: u64,
}

pub fn ablation_layout(bench: &Benchmark, cfg: ArchConfig, scale: Scale) -> LayoutRow {
    let prog = bench.build(scale);
    let cores = cfg.nodes();
    let opts = LowerOptions {
        cores,
        emit_busy: true,
    };
    // Baseline timing uses the ORIGINAL layout; the layout pass is a
    // whole-program change, so its variant gets its own baseline too.
    let base = simulate(cfg, &lower(&prog, &opts, None), Scheme::Baseline).result;
    let (s2, _) = compile_algorithm2(&prog, &cfg, cores, Algorithm2Options::default());
    let without = simulate(cfg, &lower(&prog, &opts, Some(&s2)), Scheme::Compiled)
        .result
        .improvement_over(&base);

    let (reprog, lreport) = ndc_compiler::optimize_layout(&prog, &cfg);
    let rebase = simulate(cfg, &lower(&reprog, &opts, None), Scheme::Baseline).result;
    let (s2l, _) = compile_algorithm2(&reprog, &cfg, cores, Algorithm2Options::default());
    let with_layout = simulate(cfg, &lower(&reprog, &opts, Some(&s2l)), Scheme::Compiled)
        .result
        .improvement_over(&rebase);

    LayoutRow {
        name: bench.name.to_string(),
        without,
        with_layout,
        chains_aligned: lreport.aligned,
    }
}

/// Semantics-preservation oracle used by integration tests: the
/// compiled schedule must compute bit-identical results.
pub fn semantics_preserved(prog: &Program, sched: &ndc_ir::Schedule) -> bool {
    use ndc_ir::{DataStore, Interpreter};
    let mut a = DataStore::init(prog);
    let mut b = DataStore::init(prog);
    Interpreter::new(prog).run(&mut a);
    Interpreter::new(prog).run_scheduled(&mut b, sched);
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_eval() -> BenchmarkEvaluation {
        let bench = ndc_workloads::by_name("kdtree").unwrap();
        evaluate_benchmark(&bench, ArchConfig::paper_default(), Scale::Test)
    }

    #[test]
    fn evaluation_produces_all_artifacts() {
        let e = small_eval();
        assert!(e.baseline.total_cycles > 0);
        assert_eq!(e.scheme_results.len(), figure4_schemes().len());
        assert!(e.instrumentation.observations() > 0);
        assert!(e.cme_accuracy.l1_accesses > 0);
        // kdtree's chains are always co-homed: Algorithm 1 plans them.
        assert!(e.alg1.1.planned > 0);
    }

    #[test]
    fn profile_splits_charges_across_tenants_without_perturbing_timing() {
        let bench = ndc_workloads::by_name("kdtree").unwrap();
        let cfg = ArchConfig::paper_default();
        let one = profile_benchmark(&bench, cfg, Scale::Test, 1, 8);
        let two = profile_benchmark(&bench, cfg, Scale::Test, 2, 8);
        // Observation only: tenant count never changes the simulation.
        assert_eq!(one.result.total_cycles, two.result.total_cycles);
        assert_eq!(one.ledger.num_tenants(), 1);
        assert_eq!(two.ledger.num_tenants(), 2);
        assert!(two.ledger.rows()[0].requests > 0);
        assert!(two.ledger.rows()[1].requests > 0);
        // The 2-tenant rows merge back to the single-tenant row:
        // attribution partitions the charges, it never invents any.
        let mut merged = two.ledger.rows()[0].clone();
        merged.merge(&two.ledger.rows()[1]);
        assert_eq!(merged, one.ledger.rows()[0]);
        // Default-config profile runs must be lossless.
        assert_eq!(one.events_dropped, 0);
        assert!(!one.top_slowest(3).is_empty());
    }

    #[test]
    fn figure_builders_consume_evaluations() {
        let evals = vec![small_eval()];
        assert_eq!(figure2(&evals).len(), 1);
        let f3 = figure3(&evals);
        assert!(f3.windows[0].total() > 0);
        let f4 = figure4(&evals);
        assert_eq!(f4[0].schemes.len(), 7);
        assert!(!figure5(&evals[0], 30).is_empty());
        let f6 = figure6(&evals);
        let avg = breakdown_average(&f6);
        assert!(avg.iter().sum::<f64>() <= 100.0 + 1e-9);
        assert_eq!(figure15(&evals).len(), 1);
        assert_eq!(figure16(&evals).len(), 1);
        assert_eq!(table2(&evals).len(), 1);
    }

    #[test]
    fn obs_evaluation_labels_every_run_in_job_order() {
        let bench = ndc_workloads::by_name("kdtree").unwrap();
        let (e, obs) = evaluate_benchmark_obs(
            &bench,
            ArchConfig::paper_default(),
            Scale::Test,
            ObsLevel::metrics(),
        );
        // One metrics tree per simulated run: baseline + 7 schemes +
        // 2 algorithms, in fixed job order.
        assert_eq!(obs.per_run.len(), 10);
        assert_eq!(obs.per_run[0].0, "baseline");
        assert_eq!(obs.per_run[8].0, "alg1");
        assert_eq!(obs.per_run[9].0, "alg2");
        // No trace ring requested -> no event lists.
        assert!(obs.per_run_events.is_empty());
        // The baseline metrics agree with the baseline result.
        let m = &obs.per_run[0].1;
        match m.get("engine") {
            Some(ndc_obs::MetricNode::Tree(t)) => {
                assert_eq!(
                    t.counter_value("total_cycles"),
                    Some(e.baseline.total_cycles)
                );
            }
            _ => panic!("engine subtree missing"),
        }
        // The plain path is unaffected and timing-identical.
        let plain = evaluate_benchmark(&bench, ArchConfig::paper_default(), Scale::Test);
        assert_eq!(plain.baseline.total_cycles, e.baseline.total_cycles);
    }

    #[test]
    fn explain_joins_spans_provenance_and_accuracy() {
        let bench = ndc_workloads::by_name("kdtree").unwrap();
        let rep = explain_benchmark(&bench, ArchConfig::paper_default(), Scale::Test, 1);
        assert!(!rep.spans.is_empty());
        for t in &rep.spans {
            assert_eq!(t.root.partition_violation(), None);
        }
        // kdtree plans chains, so provenance carries candidate tables.
        assert!(rep
            .compiler
            .provenance
            .iter()
            .any(|p| !p.candidates.is_empty()));
        // Performed offloads yield measured means the predictions pair
        // against.
        assert!(rep.result.ndc_total() > 0);
        let measured: u64 = rep.offload.per_location.iter().map(|a| a.samples).sum();
        assert_eq!(measured, rep.result.ndc_total());
        // Top-slowest is ordered and bounded.
        let top = rep.top_slowest(5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].latency() >= w[1].latency());
        }
        // Predicted means cover the locations candidates were scored
        // at.
        let pred = predicted_offload_means(&rep.compiler);
        assert!(pred.iter().any(|&p| p > 0.0));
    }

    #[test]
    fn figure17_configs_cover_the_paper_axes() {
        let configs = figure17_configs();
        assert_eq!(configs.len(), 6);
        assert!(configs.iter().any(|c| c.cfg.noc.width == 4));
        assert!(configs.iter().any(|c| c.cfg.noc.width == 6));
        assert!(configs.iter().any(|c| c.cfg.l2.size_bytes == 256 * 1024));
        assert!(configs
            .iter()
            .any(|c| c.cfg.ndc.op_class == OpClass::AddSubOnly));
    }

    #[test]
    fn k_sweep_is_monotone_in_exercised_fraction() {
        let bench = ndc_workloads::by_name("md").unwrap();
        let rows = ablation_k(&bench, ArchConfig::paper_default(), Scale::Test, &[0, 2, 8]);
        for w in rows.windows(2) {
            assert!(
                w[1].exercised_pct >= w[0].exercised_pct - 1e-9,
                "higher k must exercise at least as many opportunities"
            );
        }
    }

    #[test]
    fn markov_scheme_runs() {
        let bench = ndc_workloads::by_name("radiosity").unwrap();
        let row = ablation_markov(&bench, ArchConfig::paper_default(), Scale::Test);
        assert!(row.markov.is_finite());
        assert!(row.oracle.is_finite());
    }

    #[test]
    fn layout_pass_never_corrupts_the_program() {
        let cfg = ArchConfig::paper_default();
        for name in ["raytrace", "fft", "swim"] {
            let bench = ndc_workloads::by_name(name).unwrap();
            let prog = bench.build(Scale::Test);
            let (reprog, _) = ndc_compiler::optimize_layout(&prog, &cfg);
            // Arrays stay disjoint...
            let mut ranges: Vec<(u64, u64)> = reprog
                .arrays
                .iter()
                .map(|a| (a.base, a.base + a.size_bytes()))
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(w[0].1 <= w[1].0, "{name}: overlap after layout");
            }
            // ...and the program still simulates.
            let opts = LowerOptions {
                cores: cfg.nodes(),
                emit_busy: true,
            };
            let r = simulate(cfg, &lower(&reprog, &opts, None), Scheme::Baseline).result;
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn routing_ablation_reduces_router_ndc() {
        // swim's chains rely on reshaped overlap.
        let bench = ndc_workloads::by_name("swim").unwrap();
        let row = ablation_routing(&bench, ArchConfig::paper_default(), Scale::Test);
        assert!(
            row.router_ndc_without <= row.router_ndc_with,
            "reshaping can only add router meetings: {} vs {}",
            row.router_ndc_without,
            row.router_ndc_with
        );
    }

    #[test]
    fn compiled_schedules_preserve_semantics() {
        let cfg = ArchConfig::paper_default();
        for name in ["kdtree", "swim", "applu"] {
            let bench = ndc_workloads::by_name(name).unwrap();
            let prog = bench.build(Scale::Test);
            let (s1, _) = compile_algorithm1(&prog, &cfg, cfg.nodes());
            assert!(
                semantics_preserved(&prog, &s1),
                "{name}: Algorithm 1 broke semantics"
            );
            let (s2, _) =
                compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
            assert!(
                semantics_preserved(&prog, &s2),
                "{name}: Algorithm 2 broke semantics"
            );
        }
    }
}
