//! Seeded end-to-end fuzzing: generated IR through every layer.
//!
//! One seed drives one [`ndc_workloads::gen`] program through the full
//! stack — static legality (verifier + bounds prover), the reuse
//! analysis cross-checked against interpreter-measured footprints,
//! both compiler algorithms, schedule lint certification, the
//! differential oracle,
//! structured lowering, the checked simulator (`CheckLevel::full()`),
//! and finally the DAMOV-style bottleneck classifier. Any divergence,
//! invariant violation, or panic is reported *with the seed that
//! reproduces it*, so a red fuzz run is a one-command repro:
//! `ndc-eval fuzz --count 1 --seed <seed>`.
//!
//! The pipeline is deterministic: outcomes depend only on the seed and
//! the architecture config, and batches fan out with
//! [`ndc_par::parallel_map`] in input order, so reports are
//! byte-identical under any `NDC_THREADS`.

use crate::check as chk;
use crate::prelude::*;
use ndc_cme::{classify, BottleneckClass, BottleneckCounters};
use ndc_ir::try_lower;
use ndc_workloads::gen::{generate, GenClass};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Everything one seed produced, pass or fail.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The reproducing seed (pass it back via `--seed`, `--count 1`).
    pub seed: u64,
    /// Access-pattern class the generator drew.
    pub class: GenClass,
    /// Bottleneck label from the checked simulation (`None` when the
    /// pipeline failed before simulating).
    pub bottleneck: Option<BottleneckClass>,
    /// Loop nests in the generated program.
    pub nests: usize,
    /// Total iteration points across nests (0 for all-zero-trip).
    pub points: u64,
    /// Chains planned by Algorithm 1 / Algorithm 2.
    pub alg1_planned: u64,
    pub alg2_planned: u64,
    /// Lint-certified transforms the oracle executed and diffed.
    pub oracle_legal: usize,
    /// Producer-consumer chains fused by the fusion stage (with the
    /// fusion-enabled Algorithm 2 compile).
    pub fused_chains: u64,
    /// Simulated cycles of the checked run (0 on earlier failure).
    pub sim_cycles: u64,
    /// Every divergence / violation / panic, already seed-stamped.
    pub failures: Vec<String>,
}

impl FuzzOutcome {
    /// Did every stage hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Copy the classifier's counters out of a simulation result.
pub fn counters_of(cfg: &ArchConfig, r: &SimResult) -> BottleneckCounters {
    BottleneckCounters {
        cores: cfg.nodes() as u32,
        total_cycles: r.total_cycles,
        issued_insts: r.issued_insts,
        mshr_stall_cycles: r.mshr_stall_cycles,
        offload_stall_cycles: r.offload_stall_cycles,
        noc_queueing_cycles: r.noc_queueing_cycles,
        noc_messages: r.noc_messages,
        l1_misses: r.l1.misses,
        l2_misses: r.l2.misses,
    }
}

/// Run one seed through the whole pipeline. Never panics: every stage
/// runs under `catch_unwind`, and a panic becomes a seed-stamped
/// failure line instead of tearing down the batch.
pub fn fuzz_one(seed: u64, cfg: &ArchConfig) -> FuzzOutcome {
    let gen = generate(seed);
    let prog = &gen.program;
    let mut out = FuzzOutcome {
        seed,
        class: gen.class,
        bottleneck: None,
        nests: prog.nests.len(),
        points: prog.nests.iter().map(|n| n.points()).sum(),
        alg1_planned: 0,
        alg2_planned: 0,
        oracle_legal: 0,
        fused_chains: 0,
        sim_cycles: 0,
        failures: Vec::new(),
    };
    let fail = |failures: &mut Vec<String>, stage: &str, msg: String| {
        failures.push(format!("seed {seed:#018x} [{stage}]: {msg}"));
    };

    // Stage 1: static legality of the generated program itself. The
    // generator promises valid IR; hold it to that promise.
    let errors = ndc_lint::verify_program(prog);
    for e in &errors {
        fail(&mut out.failures, "verify", e.to_string());
    }
    for rb in ndc_lint::prove_program(prog) {
        if !rb.in_bounds {
            fail(
                &mut out.failures,
                "bounds",
                format!("reference not provably in bounds: {rb:?}"),
            );
        }
    }
    if !out.failures.is_empty() {
        return out; // invalid IR would only cascade noise downstream
    }

    // Stage 1b: reuse analysis. Every generated program must analyze
    // without panicking, and every fact the analysis emits must honor
    // its own soundness contract against the interpreter: measured
    // footprints equal `Exact`-tagged counts, never exceed `Bound`s.
    match catch_unwind(AssertUnwindSafe(|| {
        chk::cross_check_workload(prog, cfg.l1.line_bytes, cfg.l2.line_bytes)
    })) {
        Ok(sum) => {
            for v in &sum.violations {
                fail(&mut out.failures, "reuse", v.clone());
            }
        }
        Err(p) => fail(&mut out.failures, "reuse", panic_text(p)),
    }

    // Stage 1c: the layout pass must preserve static legality — a
    // re-based program stays verifiable, provably in bounds, and its
    // arrays stay pairwise disjoint (shifts that cannot fit are
    // refused, never applied half-way).
    match catch_unwind(AssertUnwindSafe(|| {
        ndc_compiler::optimize_layout(prog, cfg)
    })) {
        Ok((rebased, _)) => {
            for e in ndc_lint::verify_program(&rebased) {
                fail(&mut out.failures, "layout", format!("rebased program: {e}"));
            }
            for rb in ndc_lint::prove_program(&rebased) {
                if !rb.in_bounds {
                    fail(
                        &mut out.failures,
                        "layout",
                        format!("rebased reference not provably in bounds: {rb:?}"),
                    );
                }
            }
            let mut ranges: Vec<(u64, u64)> = rebased
                .arrays
                .iter()
                .map(|a| (a.base, a.base.saturating_add(a.size_bytes())))
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                if w[0].1 > w[1].0 {
                    fail(
                        &mut out.failures,
                        "layout",
                        format!("arrays overlap after layout pass: {ranges:?}"),
                    );
                    break;
                }
            }
        }
        Err(p) => fail(&mut out.failures, "layout", panic_text(p)),
    }

    // Stage 2: both compiler algorithms, each schedule re-certified by
    // the independent lint layer and re-executed by the oracle.
    let compiled = catch_unwind(AssertUnwindSafe(|| {
        let (s1, r1) = compile_algorithm1(prog, cfg, cfg.nodes());
        let (s2, r2) = compile_algorithm2(prog, cfg, cfg.nodes(), Algorithm2Options::default());
        (s1, r1, s2, r2)
    }));
    let (sched1, rep1, sched2, rep2) = match compiled {
        Ok(v) => v,
        Err(p) => {
            fail(&mut out.failures, "compile", panic_text(p));
            return out;
        }
    };
    out.alg1_planned = rep1.planned;
    out.alg2_planned = rep2.planned;
    for (alg, sched) in [("alg1", &sched1), ("alg2", &sched2)] {
        let lint = ndc_lint::lint_schedule(prog, sched);
        if !lint.accepted() {
            for e in &lint.errors {
                fail(&mut out.failures, alg, format!("lint rejected: {e}"));
            }
        }
        if lint.unproven_bounds() > 0 {
            fail(
                &mut out.failures,
                alg,
                format!(
                    "{} references not provably in bounds",
                    lint.unproven_bounds()
                ),
            );
        }
        if let Err(d) = chk::check_schedule(prog, sched) {
            fail(&mut out.failures, alg, format!("oracle diverged: {d}"));
        }
    }

    // Stage 3: transform sweep — every lint-certified candidate
    // transform executes and diffs against the reference order.
    let sweep = match catch_unwind(AssertUnwindSafe(|| chk::sweep_workload(prog, 1))) {
        Ok(s) => s,
        Err(p) => {
            fail(&mut out.failures, "sweep", panic_text(p));
            return out;
        }
    };
    out.oracle_legal = sweep.legal_checked;
    if sweep.oob_reads > 0 {
        fail(
            &mut out.failures,
            "sweep",
            format!("{} out-of-bounds reads", sweep.oob_reads),
        );
    }
    for f in &sweep.failures {
        fail(
            &mut out.failures,
            "sweep",
            format!(
                "nest {} transform {:?}: {}",
                f.nest, f.transform, f.divergence
            ),
        );
    }

    // Stage 4: structured lowering of the Algorithm-2 schedule, then
    // the checked simulator with every invariant armed.
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let traces = match try_lower(prog, &opts, Some(&sched2)) {
        Ok(t) => t,
        Err(e) => {
            fail(&mut out.failures, "lower", e.to_string());
            return out;
        }
    };
    let simulated = catch_unwind(AssertUnwindSafe(|| {
        chk::simulate_checked(
            *cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::PctOfCap(50),
            },
        )
    }));
    let engine_out = match simulated {
        Ok(o) => o,
        Err(p) => {
            fail(&mut out.failures, "simulate", panic_text(p));
            return out;
        }
    };
    let report = chk::check_engine_output(&engine_out);
    for v in &report.violations {
        fail(&mut out.failures, "invariant", v.to_string());
    }

    // Stage 5: bottleneck taxonomy over the measured counters.
    out.sim_cycles = engine_out.result.total_cycles;
    out.bottleneck = Some(classify(&counters_of(cfg, &engine_out.result)));

    // Stage 6: fusion. Re-compile Algorithm 2 with operator fusion on,
    // then hold the fused schedule to every bar the unfused one passed:
    // lint (which independently re-verifies each fusion certificate),
    // the differential oracle, structured lowering, and the checked
    // simulator executing multi-op precompute packets.
    let fused = catch_unwind(AssertUnwindSafe(|| {
        compile_algorithm2(
            prog,
            cfg,
            cfg.nodes(),
            Algorithm2Options {
                fuse: true,
                ..Default::default()
            },
        )
    }));
    let (fsched, frep) = match fused {
        Ok(v) => v,
        Err(p) => {
            fail(&mut out.failures, "fuse", panic_text(p));
            return out;
        }
    };
    out.fused_chains = frep.fused_chains;
    let lint = ndc_lint::lint_schedule(prog, &fsched);
    if !lint.accepted() {
        for e in &lint.errors {
            fail(&mut out.failures, "fuse", format!("lint rejected: {e}"));
        }
    }
    if lint.fusion_certificates.len() as u64 != frep.fused_chains {
        fail(
            &mut out.failures,
            "fuse",
            format!(
                "{} fused chains but {} certificates",
                frep.fused_chains,
                lint.fusion_certificates.len()
            ),
        );
    }
    if let Err(d) = chk::check_schedule(prog, &fsched) {
        fail(&mut out.failures, "fuse", format!("oracle diverged: {d}"));
    }
    let ftraces = match try_lower(prog, &opts, Some(&fsched)) {
        Ok(t) => t,
        Err(e) => {
            fail(&mut out.failures, "fuse", e.to_string());
            return out;
        }
    };
    let fsim = catch_unwind(AssertUnwindSafe(|| {
        chk::simulate_checked(*cfg, &ftraces, Scheme::Compiled)
    }));
    match fsim {
        Ok(o) => {
            for v in &chk::check_engine_output(&o).violations {
                fail(&mut out.failures, "fuse", v.to_string());
            }
        }
        Err(p) => fail(&mut out.failures, "fuse", panic_text(p)),
    }
    out
}

/// Fuzz `count` seeds starting at `base_seed` (seed `base + i`, so any
/// failure reproduces from a single u64). Deterministic input-order
/// results for any `NDC_THREADS`.
pub fn fuzz_batch(base_seed: u64, count: usize, cfg: &ArchConfig) -> Vec<FuzzOutcome> {
    let seeds: Vec<u64> = (0..count as u64)
        .map(|i| base_seed.wrapping_add(i))
        .collect();
    ndc_par::parallel_map(&seeds, |s| fuzz_one(*s, cfg))
}

/// Corpus coverage: outcome counts per (class, bottleneck) cell plus
/// per-class aggregates, ready for table printing.
#[derive(Debug, Clone, Default)]
pub struct CorpusTable {
    /// `cells[class_idx][bottleneck_idx]` — counts only simulated runs.
    pub cells: [[usize; 3]; 5],
    /// Programs per class (including ones that failed early).
    pub per_class: [usize; 5],
    pub total: usize,
    pub failed: usize,
}

impl CorpusTable {
    pub fn build(outcomes: &[FuzzOutcome]) -> CorpusTable {
        let mut t = CorpusTable::default();
        for o in outcomes {
            let ci = GenClass::ALL
                .iter()
                .position(|c| *c == o.class)
                .expect("class is from ALL");
            t.per_class[ci] += 1;
            t.total += 1;
            if !o.passed() {
                t.failed += 1;
            }
            if let Some(b) = o.bottleneck {
                let bi = BottleneckClass::ALL
                    .iter()
                    .position(|c| *c == b)
                    .expect("bottleneck is from ALL");
                t.cells[ci][bi] += 1;
            }
        }
        t
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_batch_runs_clean() {
        let cfg = ArchConfig::paper_default();
        let outcomes = fuzz_batch(0xF00D, 8, &cfg);
        assert_eq!(outcomes.len(), 8);
        for o in &outcomes {
            assert!(o.passed(), "seed {:#018x} failed: {:?}", o.seed, o.failures);
            assert!(
                o.bottleneck.is_some(),
                "seed {:#018x} never simulated",
                o.seed
            );
        }
    }

    #[test]
    fn outcomes_are_deterministic() {
        let cfg = ArchConfig::paper_default();
        let a = fuzz_batch(42, 4, &cfg);
        let b = fuzz_batch(42, 4, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn corpus_table_counts_every_outcome() {
        let cfg = ArchConfig::paper_default();
        let outcomes = fuzz_batch(7, 12, &cfg);
        let t = CorpusTable::build(&outcomes);
        assert_eq!(t.total, 12);
        assert_eq!(t.per_class.iter().sum::<usize>(), 12);
        let simulated: usize = t.cells.iter().flatten().sum();
        assert_eq!(
            simulated,
            outcomes.iter().filter(|o| o.bottleneck.is_some()).count()
        );
    }
}
