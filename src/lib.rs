//! # ndc — Compiler Support for Near Data Computing
//!
//! A from-scratch Rust reproduction of *"Compiler Support for Near Data
//! Computing"* (Kandemir, Ryoo, Tang, Karakoy — PPoPP '21): a
//! quantification of near-data-computing potential on a mesh manycore,
//! plus two compiler algorithms that restructure loop nests to create
//! and selectively exploit NDC opportunities in four hardware locations
//! (NoC link buffers, L2 cache controllers, memory controllers, DRAM
//! banks).
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`ndc_types`] | shared vocabulary: config (paper Table 1), ops, traces, stats buckets |
//! | [`ndc_noc`] | 2D-mesh NoC: XY routing, route signatures, contended links |
//! | [`ndc_mem`] | caches, sharer directory, FR-FCFS DRAM controllers |
//! | [`ndc_sim`] | the manycore simulator + NDC hardware + execution schemes |
//! | [`ndc_ir`] | loop-nest IR: affine accesses, dependences, transforms, lowering |
//! | [`ndc_lint`] | static legality: IR verifier, bounds prover, `T·D` certificates, race detector |
//! | [`ndc_cme`] | Cache Miss Equations estimator (paper §5.2) |
//! | [`ndc_reuse`] | static reuse/footprint analysis: `Exact`/`Bound` line & byte counts |
//! | [`ndc_compiler`] | **the paper's contribution**: Algorithms 1 & 2 |
//! | [`ndc_workloads`] | the 20 paper benchmarks as synthetic IR kernels |
//! | [`ndc_check`] | differential oracle, simulator invariants, fault injection |
//!
//! This facade crate re-exports the public API and hosts the
//! [`experiments`] harness that regenerates every table and figure of
//! the paper's evaluation (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for measured-vs-paper results).
//!
//! ## Quickstart
//!
//! ```
//! use ndc::prelude::*;
//!
//! // Build a benchmark, compile it with Algorithm 2, and compare
//! // against conventional execution.
//! let cfg = ArchConfig::paper_default();
//! let bench = ndc::workloads::by_name("kdtree").unwrap();
//! let program = bench.build(Scale::Test);
//!
//! let opts = LowerOptions { cores: cfg.nodes(), emit_busy: true };
//! let baseline = simulate(cfg, &lower(&program, &opts, None), Scheme::Baseline);
//!
//! let (schedule, report) =
//!     compile_algorithm2(&program, &cfg, cfg.nodes(), Algorithm2Options::default());
//! let compiled = simulate(cfg, &lower(&program, &opts, Some(&schedule)), Scheme::Compiled);
//!
//! let improvement = compiled.result.improvement_over(&baseline.result);
//! println!("{}: {improvement:.1}% faster, {} chains offloaded", program.name, report.planned);
//! ```

pub mod experiments;
pub mod fuzz;

/// Re-exports of the workspace crates under stable names.
pub use ndc_check as check;
pub use ndc_cme as cme;
pub use ndc_compiler as compiler;
pub use ndc_ir as ir;
pub use ndc_lint as lint;
pub use ndc_mem as mem;
pub use ndc_noc as noc;
pub use ndc_obs as obs;
pub use ndc_reuse as reuse;
pub use ndc_sim as sim;
pub use ndc_types as types;
pub use ndc_workloads as workloads;

/// The most common imports, in one place.
pub mod prelude {
    pub use ndc_compiler::{
        compile_algorithm1, compile_algorithm2, compile_coarse, Algorithm2Options, CompilerReport,
    };
    pub use ndc_ir::{lower, LowerOptions, Program, Schedule};
    pub use ndc_sim::engine::simulate;
    pub use ndc_sim::schemes::{Scheme, WaitBudget};
    pub use ndc_sim::SimResult;
    pub use ndc_types::{ArchConfig, NdcConfig, NdcLocation, Op, OpClass};
    pub use ndc_workloads::{all_benchmarks, by_name, Benchmark, Scale};
}
