//! A fast, deterministic hasher for the simulator's hot paths.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs
//! tens of cycles per key — measurable in the engine's inner loop where
//! per-PC and per-line tables are touched on every access. Keys here are
//! small integers produced by the simulator itself, so a multiply-xor
//! hash in the `FxHash` family is both sufficient and ~5× cheaper. It is
//! also *seed-free*: iteration order for a given insertion sequence is
//! identical across runs and across thread counts, which the
//! determinism guarantee of the experiment harness relies on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier derived from the golden ratio (2^64 / φ), the usual
/// choice for multiplicative hashing.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiply-xor hasher for small integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so `Default` maps
/// with this hasher can still be built with `HashMap::default()`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u8), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 3) as u8), i as u64 * 7);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&(i, (i % 3) as u8)], i as u64 * 7);
        }
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let build = |n: u64| {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..n {
                m.insert(i.wrapping_mul(0x2545_f491_4f6c_dd1d), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(500), build(500));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i * 64);
            seen.insert(h.finish());
        }
        // All 10k distinct cache-line addresses hash distinctly.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(b"near-data");
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(b"near-datb");
        assert_ne!(a, h.finish());
    }
}
