//! Shared vocabulary for the near-data-computing (NDC) reproduction.
//!
//! This crate defines the types every other crate in the workspace speaks:
//! cycle timestamps, physical addresses, mesh coordinates, arithmetic/logic
//! operations, the architecture configuration mirroring Table 1 of the
//! paper, the trace instruction set the simulator executes, and the
//! bucketed statistics (arrival-window CDFs) used throughout the
//! evaluation.
//!
//! Nothing here performs simulation or compilation; it is deliberately a
//! leaf crate with no workspace dependencies so that the NoC, memory,
//! simulator, and compiler crates can all share it without cycles.

pub mod config;
pub mod geom;
pub mod hash;
pub mod json;
pub mod op;
pub mod rng;
pub mod stats;
pub mod trace;

pub use config::{ArchConfig, CacheConfig, DramConfig, MemConfig, NdcConfig, NocConfig, OpClass};
pub use geom::{Coord, NodeId};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{Json, JsonError};
pub use op::{NdcLocation, Op, ALL_NDC_LOCATIONS};
pub use rng::SplitMix64;
pub use stats::{
    bucket_index, geomean_improvement, mean, Cdf, WindowHistogram, BUCKET_LABELS, NUM_BUCKETS,
};
pub use trace::{Inst, InstKind, Operand, Trace, TraceProgram, MAX_FUSED_OPS};

/// A simulation timestamp, measured in core clock cycles.
pub type Cycle = u64;

/// A physical byte address in the simulated machine.
pub type Addr = u64;

/// A static-instruction identifier ("program counter"). Each distinct
/// statement instance in a lowered program gets a stable `Pc`, so that
/// per-PC predictors (the paper's "Last Wait" scheme, Figure 5) can key
/// their history on it.
pub type Pc = u32;
