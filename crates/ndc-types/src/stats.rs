//! Bucketed statistics used throughout the paper's evaluation.
//!
//! Figures 2 and 3 report arrival windows and breakeven points as
//! distributions over the buckets `1, 10, 20, 50, 100, 500, 500+`
//! (cycles); the `500+` bucket also absorbs the "never arrives" case
//! (e.g., two operands whose NoC paths do not intersect). This module
//! provides the bucketing, histogram, and CDF machinery.

use crate::Cycle;

/// Upper bounds of the finite buckets, in cycles.
pub const BUCKET_BOUNDS: [Cycle; 6] = [1, 10, 20, 50, 100, 500];

/// Human-readable bucket labels matching the paper's figure legends.
pub const BUCKET_LABELS: [&str; 7] = ["1", "10", "20", "50", "100", "500", "500+"];

/// Number of buckets (six finite plus `500+`).
pub const NUM_BUCKETS: usize = 7;

/// Map a window length to its bucket index. `None` (the second operand
/// never arrives) lands in the `500+` bucket, as in the paper.
pub fn bucket_index(window: Option<Cycle>) -> usize {
    match window {
        None => NUM_BUCKETS - 1,
        Some(w) => BUCKET_BOUNDS
            .iter()
            .position(|&b| w <= b)
            .unwrap_or(NUM_BUCKETS - 1),
    }
}

/// A histogram over the paper's window buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowHistogram {
    counts: [u64; NUM_BUCKETS],
}

impl WindowHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. `None` means the co-location never
    /// happened.
    pub fn record(&mut self, window: Option<Cycle>) {
        self.counts[bucket_index(window)] += 1;
    }

    pub fn count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another histogram into this one (used when averaging over
    /// benchmarks, Figure 3).
    pub fn merge(&mut self, other: &WindowHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }

    /// Per-bucket fraction of observations, in percent.
    pub fn percentages(&self) -> [f64; NUM_BUCKETS] {
        let total = self.total();
        let mut out = [0.0; NUM_BUCKETS];
        if total == 0 {
            return out;
        }
        for (o, &c) in out.iter_mut().zip(self.counts.iter()) {
            *o = 100.0 * c as f64 / total as f64;
        }
        out
    }

    /// Cumulative distribution over the buckets, in percent.
    pub fn cdf(&self) -> Cdf {
        let pct = self.percentages();
        let mut cum = [0.0; NUM_BUCKETS];
        let mut acc = 0.0;
        for (c, p) in cum.iter_mut().zip(pct.iter()) {
            acc += p;
            *c = acc;
        }
        Cdf { cumulative: cum }
    }
}

/// A cumulative distribution over the window buckets, in percent.
///
/// Figure 2's plots are CDFs truncated at 50%; [`Cdf::truncated`]
/// reproduces that presentation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    cumulative: [f64; NUM_BUCKETS],
}

impl Cdf {
    pub fn at(&self, bucket: usize) -> f64 {
        self.cumulative[bucket]
    }

    pub fn values(&self) -> &[f64; NUM_BUCKETS] {
        &self.cumulative
    }

    /// The CDF with every value clamped to `cap` percent (Figure 2 plots
    /// are truncated to 50%).
    pub fn truncated(&self, cap: f64) -> [f64; NUM_BUCKETS] {
        let mut out = self.cumulative;
        for v in &mut out {
            if *v > cap {
                *v = cap;
            }
        }
        out
    }
}

/// Geometric mean of improvement percentages, the aggregation the paper
/// uses for its headline numbers ("average execution time improvement of
/// 29.3% (geometric mean)").
///
/// Improvements are expressed in percent; negative values (slowdowns)
/// are handled by operating on speedup ratios `1 / (1 - imp/100)` and
/// converting back.
pub fn geomean_improvement(improvements_pct: &[f64]) -> f64 {
    if improvements_pct.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &imp in improvements_pct {
        // Clamp to avoid a nonsensical >=100% improvement producing a
        // non-positive remaining-time ratio.
        let remaining = (1.0 - imp / 100.0).max(1e-9);
        log_sum += remaining.ln();
    }
    let mean_remaining = (log_sum / improvements_pct.len() as f64).exp();
    (1.0 - mean_remaining) * 100.0
}

/// Arithmetic mean helper for per-benchmark tables.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_match_paper_legend() {
        assert_eq!(bucket_index(Some(0)), 0);
        assert_eq!(bucket_index(Some(1)), 0);
        assert_eq!(bucket_index(Some(2)), 1);
        assert_eq!(bucket_index(Some(10)), 1);
        assert_eq!(bucket_index(Some(11)), 2);
        assert_eq!(bucket_index(Some(20)), 2);
        assert_eq!(bucket_index(Some(21)), 3);
        assert_eq!(bucket_index(Some(50)), 3);
        assert_eq!(bucket_index(Some(51)), 4);
        assert_eq!(bucket_index(Some(100)), 4);
        assert_eq!(bucket_index(Some(101)), 5);
        assert_eq!(bucket_index(Some(500)), 5);
        assert_eq!(bucket_index(Some(501)), 6);
        assert_eq!(bucket_index(None), 6);
    }

    #[test]
    fn histogram_percentages_and_cdf() {
        let mut h = WindowHistogram::new();
        for _ in 0..5 {
            h.record(Some(1));
        }
        for _ in 0..3 {
            h.record(Some(15));
        }
        for _ in 0..2 {
            h.record(None);
        }
        assert_eq!(h.total(), 10);
        let pct = h.percentages();
        assert!((pct[0] - 50.0).abs() < 1e-12);
        assert!((pct[2] - 30.0).abs() < 1e-12);
        assert!((pct[6] - 20.0).abs() < 1e-12);
        let cdf = h.cdf();
        assert!((cdf.at(0) - 50.0).abs() < 1e-12);
        assert!((cdf.at(2) - 80.0).abs() < 1e-12);
        assert!((cdf.at(6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_nondecreasing() {
        let mut h = WindowHistogram::new();
        for w in [0, 3, 14, 30, 77, 200, 900] {
            h.record(Some(w));
        }
        let cdf = h.cdf();
        for i in 1..NUM_BUCKETS {
            assert!(cdf.at(i) >= cdf.at(i - 1));
        }
    }

    #[test]
    fn truncation_caps_at_fifty_percent() {
        let mut h = WindowHistogram::new();
        for _ in 0..9 {
            h.record(Some(1));
        }
        h.record(Some(600));
        let t = h.cdf().truncated(50.0);
        assert_eq!(t[0], 50.0);
        assert_eq!(t[6], 50.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WindowHistogram::new();
        a.record(Some(1));
        let mut b = WindowHistogram::new();
        b.record(Some(1));
        b.record(None);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(6), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn merge_with_empty_operands_is_identity() {
        let mut full = WindowHistogram::new();
        full.record(Some(1));
        full.record(Some(30));
        full.record(None);
        let snapshot = full.clone();

        // empty.merge(full) yields full...
        let mut empty = WindowHistogram::new();
        empty.merge(&full);
        assert_eq!(empty, snapshot);
        // ...full.merge(empty) leaves full unchanged...
        full.merge(&WindowHistogram::new());
        assert_eq!(full, snapshot);
        // ...and empty.merge(empty) stays empty.
        let mut e2 = WindowHistogram::new();
        e2.merge(&WindowHistogram::new());
        assert_eq!(e2.total(), 0);
    }

    #[test]
    fn truncation_leaves_values_below_the_cap_alone() {
        let mut h = WindowHistogram::new();
        h.record(Some(1)); // 25% in bucket 0
        h.record(Some(15));
        h.record(Some(15));
        h.record(None);
        let cdf = h.cdf();
        let t = cdf.truncated(50.0);
        // Below-cap values pass through exactly...
        assert_eq!(t[0], cdf.at(0));
        assert!((t[0] - 25.0).abs() < 1e-12);
        // ...values at or above the cap clamp to it...
        assert_eq!(t[2], 50.0);
        assert_eq!(t[6], 50.0);
        // ...and the empty histogram's truncated CDF is all zeros.
        assert_eq!(
            WindowHistogram::new().cdf().truncated(50.0),
            [0.0; NUM_BUCKETS]
        );
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        let v = [20.0, 20.0, 20.0];
        assert!((geomean_improvement(&v) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_handles_slowdowns() {
        // One 50% improvement (ratio 0.5) and one 100% slowdown (ratio
        // 2.0) cancel: geomean remaining = 1.0 -> 0% improvement.
        let v = [50.0, -100.0];
        assert!(geomean_improvement(&v).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(geomean_improvement(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(WindowHistogram::new().total(), 0);
        assert_eq!(WindowHistogram::new().percentages(), [0.0; NUM_BUCKETS]);
    }
}
