//! Architecture configuration, mirroring Table 1 of the paper.
//!
//! [`ArchConfig::paper_default`] reproduces the simulated machine of the
//! evaluation: a 5×5 2D mesh, one core per node, 32 KB 2-way L1s with
//! 64 B lines, 512 KB 64-way line-interleaved L2 banks with 256 B lines,
//! 16 B links with a 3-cycle router pipeline and XY routing, 4 memory
//! controllers with 4 KB interleaving and FR-FCFS scheduling, and DDR2-800
//! style banked DRAM with 4 KB row buffers.

use crate::{Cycle, NdcLocation};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (per node for both L1 and L2 banks).
    pub size_bytes: u64,
    /// Cache line (block) size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles (hit latency; also the tag-check cost
    /// paid on a miss before the request is forwarded).
    pub latency: Cycle,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// On-chip network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh width (columns).
    pub width: u16,
    /// Mesh height (rows).
    pub height: u16,
    /// Link width in bytes; messages occupy a link for
    /// `ceil(message_bytes / link_bytes)` cycles.
    pub link_bytes: u64,
    /// Per-hop router pipeline depth in cycles.
    pub hop_cycles: Cycle,
}

impl NocConfig {
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

/// DRAM device timing, reduced to the quantities the simulator's
/// row-buffer model needs. Derived from the Micron DDR2-800 part in
/// Table 1 (tRCD/tRP/tCAS ≈ 5-5-5 at a 2:1 core:bus clock ratio).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per device (per memory controller).
    pub banks_per_device: u32,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Row buffer size in bytes (Table 1: 4 KB, same as the page size).
    pub row_bytes: u64,
    /// Cycles for a column access when the row is already open
    /// (row-buffer hit).
    pub row_hit_cycles: Cycle,
    /// Cycles to activate a closed row then access (row-buffer miss).
    pub row_miss_cycles: Cycle,
    /// Cycles to precharge + activate + access when a different row is
    /// open (row-buffer conflict).
    pub row_conflict_cycles: Cycle,
    /// Data-burst occupancy of the bank per request, bounding bank
    /// throughput.
    pub burst_cycles: Cycle,
}

/// Memory-system parameters: controller count, interleaving, and device
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of memory controllers (Table 1: 4, placed at the mesh
    /// corners as in Figure 1).
    pub num_controllers: u32,
    /// Address interleaving granularity across controllers (Table 1:
    /// 4 KB, same as the page size).
    pub interleave_bytes: u64,
    /// DRAM device timing.
    pub dram: DramConfig,
    /// Maximum requests the FR-FCFS queue considers for reordering.
    pub queue_depth: usize,
    /// Cap on how many younger row-hit requests may bypass the oldest
    /// request, bounding FR-FCFS starvation.
    pub starvation_cap: u32,
}

/// Which computation types may be offloaded (Figure 17's last
/// sensitivity experiment restricts this to `+`/`-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// All arithmetic and logic operations (the default in Table 1).
    All,
    /// Only additions and subtractions.
    AddSubOnly,
}

impl OpClass {
    pub fn allows(self, op: crate::Op) -> bool {
        match self {
            OpClass::All => true,
            OpClass::AddSubOnly => op.is_add_sub(),
        }
    }
}

/// NDC hardware parameters: which components have compute units enabled
/// (the "control register" ⓔ in Figure 1), time-out registers, and
/// service-table capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdcConfig {
    /// Bitmask over [`NdcLocation::index`]: which components are
    /// candidate NDC locations. Figure 14 isolates single components by
    /// setting a one-hot mask.
    pub enabled_mask: u8,
    /// Time-out register value: how long the first-arriving operand may
    /// wait at a component before NDC is aborted and the computation is
    /// performed at the original core. `None` disables the time-out
    /// (wait-forever, the paper's "Default" NDC bar in Figure 4).
    pub timeout: Option<Cycle>,
    /// Entries per per-component service table; a full table triggers
    /// the time-out path immediately (§2).
    pub service_table_entries: usize,
    /// Entries in the per-core LD/ST offload table; a full offload table
    /// stalls further offloads.
    pub offload_table_entries: usize,
    /// Which op types may be offloaded.
    pub op_class: OpClass,
}

impl NdcConfig {
    pub fn location_enabled(&self, loc: NdcLocation) -> bool {
        self.enabled_mask & (1 << loc.index()) != 0
    }

    /// Mask with all four locations enabled.
    pub const ALL_LOCATIONS: u8 = 0b1111;

    /// One-hot mask for a single location (Figure 14 isolation runs).
    pub fn only(loc: NdcLocation) -> u8 {
        1 << loc.index()
    }
}

/// The complete simulated-machine description, the "architecture
/// description" input of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    pub noc: NocConfig,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub mem: MemConfig,
    pub ndc: NdcConfig,
    /// Threads per core (Table 1: 1).
    pub threads_per_core: u32,
    /// Issue width of the in-order front end (Table 1: two-issue).
    pub issue_width: u32,
    /// Maximum outstanding misses per core (MSHR count), bounding
    /// memory-level parallelism.
    pub mshrs: u32,
}

impl ArchConfig {
    /// The paper's Table 1 configuration (5×5 mesh).
    ///
    /// Latencies are in core cycles: L1 2, L2 20, 3 cycles per NoC hop.
    /// DRAM timings approximate DDR2-800 (5-5-5) at a 2 GHz core:
    /// ~60-cycle row hit, ~90 activate, ~120 conflict.
    pub fn paper_default() -> Self {
        ArchConfig {
            noc: NocConfig {
                width: 5,
                height: 5,
                link_bytes: 16,
                hop_cycles: 3,
            },
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 2,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                line_bytes: 256,
                ways: 64,
                latency: 20,
            },
            mem: MemConfig {
                num_controllers: 4,
                interleave_bytes: 4096,
                dram: DramConfig {
                    banks_per_device: 4,
                    rows_per_bank: 16384,
                    row_bytes: 4096,
                    row_hit_cycles: 30,
                    row_miss_cycles: 60,
                    row_conflict_cycles: 90,
                    burst_cycles: 4,
                },
                queue_depth: 32,
                starvation_cap: 8,
            },
            ndc: NdcConfig {
                enabled_mask: NdcConfig::ALL_LOCATIONS,
                timeout: Some(500),
                service_table_entries: 16,
                offload_table_entries: 16,
                op_class: OpClass::All,
            },
            threads_per_core: 1,
            issue_width: 2,
            mshrs: 8,
        }
    }

    /// A scaled-down configuration for fast unit/integration tests:
    /// smaller caches so misses occur with small synthetic footprints,
    /// same structure as the paper machine.
    pub fn test_small() -> Self {
        let mut c = Self::paper_default();
        c.noc.width = 4;
        c.noc.height = 4;
        c.l1.size_bytes = 1024;
        c.l2.size_bytes = 8 * 1024;
        c.l2.ways = 8;
        c
    }

    /// The paper machine lifted onto a `width`×`height` mesh — the
    /// first-class mesh-size experiment axis. Everything else (link
    /// width, hop latency, cache geometry, the four corner memory
    /// controllers, DRAM timing) stays at Table 1 values so a sweep
    /// over mesh sizes isolates the topology term.
    pub fn with_mesh(width: u16, height: u16) -> Self {
        let mut c = Self::paper_default();
        c.noc.width = width;
        c.noc.height = height;
        c
    }

    /// Number of nodes (cores) on the mesh.
    pub fn nodes(&self) -> usize {
        self.noc.nodes()
    }

    /// Home L2 bank of an address under static NUCA, cache-line
    /// interleaved across banks (Table 1: "cache line interleaved").
    pub fn l2_home(&self, addr: crate::Addr) -> crate::NodeId {
        let line = addr / self.l2.line_bytes;
        crate::NodeId((line % self.nodes() as u64) as u16)
    }

    /// Memory controller owning an address (4 KB interleaving).
    pub fn mc_of(&self, addr: crate::Addr) -> u32 {
        ((addr / self.mem.interleave_bytes) % self.mem.num_controllers as u64) as u32
    }

    /// DRAM bank within the owning controller's device.
    pub fn dram_bank_of(&self, addr: crate::Addr) -> u32 {
        let frame = addr / self.mem.interleave_bytes;
        let per_mc_frame = frame / self.mem.num_controllers as u64;
        (per_mc_frame % self.mem.dram.banks_per_device as u64) as u32
    }

    /// DRAM row within the bank.
    pub fn dram_row_of(&self, addr: crate::Addr) -> u64 {
        let frame = addr / self.mem.interleave_bytes;
        let per_mc_frame = frame / self.mem.num_controllers as u64;
        (per_mc_frame / self.mem.dram.banks_per_device as u64) % self.mem.dram.rows_per_bank
    }

    /// Mesh coordinates of a memory controller. The four controllers sit
    /// at the mesh corners (Figure 1: MC1-MC4 with DDR4 channels at the
    /// corners); extra controllers beyond four (not used by the paper)
    /// are spread along the top edge.
    pub fn mc_coord(&self, mc: u32) -> crate::Coord {
        let w = self.noc.width;
        let h = self.noc.height;
        match mc {
            0 => crate::Coord::new(0, 0),
            1 => crate::Coord::new(w - 1, 0),
            2 => crate::Coord::new(0, h - 1),
            3 => crate::Coord::new(w - 1, h - 1),
            n => crate::Coord::new((n as u16) % w, 0),
        }
    }

    /// Node id hosting a memory controller.
    pub fn mc_node(&self, mc: u32) -> crate::NodeId {
        crate::NodeId::from_coord(self.mc_coord(mc), self.noc.width)
    }

    /// JSON echo of the configuration, used by the experiment and bench
    /// harnesses to stamp result files with the machine they ran on.
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        let cache = |c: &CacheConfig| {
            Json::obj()
                .with("size_bytes", c.size_bytes)
                .with("line_bytes", c.line_bytes)
                .with("ways", c.ways)
                .with("latency", c.latency)
        };
        Json::obj()
            .with(
                "noc",
                Json::obj()
                    .with("width", self.noc.width as u64)
                    .with("height", self.noc.height as u64)
                    .with("link_bytes", self.noc.link_bytes)
                    .with("hop_cycles", self.noc.hop_cycles),
            )
            .with("l1", cache(&self.l1))
            .with("l2", cache(&self.l2))
            .with(
                "mem",
                Json::obj()
                    .with("num_controllers", self.mem.num_controllers)
                    .with("interleave_bytes", self.mem.interleave_bytes)
                    .with("queue_depth", self.mem.queue_depth)
                    .with("starvation_cap", self.mem.starvation_cap)
                    .with(
                        "dram",
                        Json::obj()
                            .with("banks_per_device", self.mem.dram.banks_per_device)
                            .with("rows_per_bank", self.mem.dram.rows_per_bank)
                            .with("row_bytes", self.mem.dram.row_bytes)
                            .with("row_hit_cycles", self.mem.dram.row_hit_cycles)
                            .with("row_miss_cycles", self.mem.dram.row_miss_cycles)
                            .with("row_conflict_cycles", self.mem.dram.row_conflict_cycles)
                            .with("burst_cycles", self.mem.dram.burst_cycles),
                    ),
            )
            .with(
                "ndc",
                Json::obj()
                    .with("enabled_mask", self.ndc.enabled_mask as u64)
                    .with("timeout", self.ndc.timeout.map_or(Json::Null, Json::UInt))
                    .with("service_table_entries", self.ndc.service_table_entries)
                    .with("offload_table_entries", self.ndc.offload_table_entries)
                    .with(
                        "op_class",
                        match self.ndc.op_class {
                            OpClass::All => "all",
                            OpClass::AddSubOnly => "add_sub_only",
                        },
                    ),
            )
            .with("threads_per_core", self.threads_per_core)
            .with("issue_width", self.issue_width)
            .with("mshrs", self.mshrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NdcLocation;

    #[test]
    fn paper_default_matches_table1() {
        let c = ArchConfig::paper_default();
        assert_eq!(c.noc.width, 5);
        assert_eq!(c.noc.height, 5);
        assert_eq!(c.nodes(), 25);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.line_bytes, 64);
        assert_eq!(c.l1.ways, 2);
        assert_eq!(c.l1.latency, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.line_bytes, 256);
        assert_eq!(c.l2.ways, 64);
        assert_eq!(c.l2.latency, 20);
        assert_eq!(c.noc.link_bytes, 16);
        assert_eq!(c.noc.hop_cycles, 3);
        assert_eq!(c.mem.num_controllers, 4);
        assert_eq!(c.mem.interleave_bytes, 4096);
        assert_eq!(c.mem.dram.row_bytes, 4096);
        assert_eq!(c.mem.dram.banks_per_device, 4);
        assert_eq!(c.threads_per_core, 1);
        assert_eq!(c.issue_width, 2);
    }

    #[test]
    fn cache_geometry_derivations() {
        let c = ArchConfig::paper_default();
        // 32 KB / (64 B * 2 ways) = 256 sets.
        assert_eq!(c.l1.sets(), 256);
        assert_eq!(c.l1.lines(), 512);
        // 512 KB / (256 B * 64 ways) = 32 sets.
        assert_eq!(c.l2.sets(), 32);
        assert_eq!(c.l2.lines(), 2048);
    }

    #[test]
    fn l2_home_is_line_interleaved() {
        let c = ArchConfig::paper_default();
        let line = c.l2.line_bytes;
        // Consecutive L2 lines map to consecutive banks, wrapping at 25.
        for i in 0..50u64 {
            let home = c.l2_home(i * line);
            assert_eq!(home.0 as u64, i % 25);
        }
        // All addresses within one line share a home.
        assert_eq!(c.l2_home(0), c.l2_home(line - 1));
        assert_ne!(c.l2_home(0), c.l2_home(line));
    }

    #[test]
    fn mc_interleaving_is_page_granular() {
        let c = ArchConfig::paper_default();
        assert_eq!(c.mc_of(0), 0);
        assert_eq!(c.mc_of(4095), 0);
        assert_eq!(c.mc_of(4096), 1);
        assert_eq!(c.mc_of(3 * 4096), 3);
        assert_eq!(c.mc_of(4 * 4096), 0);
    }

    #[test]
    fn mc_nodes_sit_at_corners() {
        let c = ArchConfig::paper_default();
        assert_eq!(c.mc_coord(0), crate::Coord::new(0, 0));
        assert_eq!(c.mc_coord(1), crate::Coord::new(4, 0));
        assert_eq!(c.mc_coord(2), crate::Coord::new(0, 4));
        assert_eq!(c.mc_coord(3), crate::Coord::new(4, 4));
    }

    #[test]
    fn dram_mapping_spreads_rows_and_banks() {
        let c = ArchConfig::paper_default();
        // Consecutive 4 KB frames on the same MC hit different banks.
        let a0 = 0u64; // frame 0 -> MC0, per-MC frame 0 -> bank 0
        let a1 = 4 * 4096; // frame 4 -> MC0, per-MC frame 1 -> bank 1
        assert_eq!(c.mc_of(a0), c.mc_of(a1));
        assert_ne!(c.dram_bank_of(a0), c.dram_bank_of(a1));
        // 16 frames later we wrap banks and advance the row.
        let a16 = 16 * 4096;
        assert_eq!(c.dram_bank_of(a16), c.dram_bank_of(a0));
        assert_eq!(c.dram_row_of(a16), c.dram_row_of(a0) + 1);
    }

    #[test]
    fn ndc_control_register_masks() {
        let mut ndc = ArchConfig::paper_default().ndc;
        assert!(ndc.location_enabled(NdcLocation::LinkBuffer));
        assert!(ndc.location_enabled(NdcLocation::MemoryBank));
        ndc.enabled_mask = NdcConfig::only(NdcLocation::CacheController);
        assert!(ndc.location_enabled(NdcLocation::CacheController));
        assert!(!ndc.location_enabled(NdcLocation::LinkBuffer));
        assert!(!ndc.location_enabled(NdcLocation::MemoryController));
        assert!(!ndc.location_enabled(NdcLocation::MemoryBank));
    }

    #[test]
    fn op_class_restriction() {
        assert!(OpClass::All.allows(crate::Op::Mul));
        assert!(OpClass::AddSubOnly.allows(crate::Op::Add));
        assert!(OpClass::AddSubOnly.allows(crate::Op::Sub));
        assert!(!OpClass::AddSubOnly.allows(crate::Op::Mul));
        assert!(!OpClass::AddSubOnly.allows(crate::Op::Div));
    }

    #[test]
    fn config_json_echo_carries_table1() {
        let c = ArchConfig::paper_default();
        let json = c.to_json().render();
        // Spot-check the Table 1 numbers survive into the emitted JSON.
        assert!(json.contains(r#""noc":{"width":5,"height":5"#), "{json}");
        assert!(json.contains(r#""size_bytes":32768"#), "{json}");
        assert!(json.contains(r#""timeout":500"#), "{json}");
        assert!(json.contains(r#""op_class":"all""#), "{json}");
        // Deterministic emission: rendering twice gives identical text.
        assert_eq!(json, c.to_json().render());
    }
}
