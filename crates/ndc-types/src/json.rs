//! Minimal JSON emission and parsing.
//!
//! The workspace mostly serializes — bench reports, experiment dumps,
//! config echoes — so instead of `serde`/`serde_json` we carry a tiny
//! value tree and a writer. Numbers use Rust's shortest-roundtrip
//! float formatting; non-finite floats become `null` (matching what
//! `serde_json` does by default for JSON's number grammar).
//!
//! [`Json::parse`] is the read side, added for the perf-regression
//! gate, which re-reads its own committed `BENCH_*.json` baselines. It
//! accepts exactly the JSON grammar (objects, arrays, strings with the
//! escapes [`Json::render`] emits plus `\u` escapes, numbers, bools,
//! null) and keeps object field order, so `parse(render(x)) == x` for
//! every tree the writer produces.

use std::fmt::Write as _;

/// A JSON value tree. Object fields keep insertion order so emitted
/// documents are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects — a usage
    /// bug, not a data condition).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse a JSON document. Integers that fit `u64`/`i64` come back
    /// as [`Json::UInt`]/[`Json::Int`]; everything else numeric becomes
    /// [`Json::Num`]. Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer-valued number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Rust's Display prints the shortest string that
                    // round-trips, but omits a decimal point for whole
                    // numbers; keep it — JSON accepts integer syntax.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(self.err(format!("bad escape '\\{}'", c as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        let v = 0.1f64 + 0.2f64;
        let s = Json::Num(v).render();
        assert_eq!(s.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let doc = Json::obj()
            .with("name", "fig4")
            .with("neg", Json::Int(-3))
            .with("big", Json::UInt(u64::MAX))
            .with("samples", vec![1u64, 2, 3])
            .with("text", "a\"b\\c\nd\u{1}é")
            .with("none", Json::Null)
            .with(
                "stats",
                Json::obj().with("median_ns", 125.5).with("ok", true),
            );
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accepts_whitespace_and_accessors_work() {
        let v = Json::parse(" {\n\t\"a\" : [ 1 , -2.5 , \"x\" ] , \"b\" : 7 }\n").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(7));
        let Some(Json::Arr(items)) = v.get("a") else {
            panic!("expected array, got {v:?}");
        };
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage_with_offsets() {
        for (text, offset) in [
            ("{", 1),
            ("[1,]", 3),
            ("{\"a\":1,}", 7),
            ("tru", 0),
            ("1 2", 2),
            ("\"unterminated", 13),
        ] {
            let e = Json::parse(text).unwrap_err();
            assert_eq!(e.offset, offset, "{text}: {e}");
        }
    }

    #[test]
    fn nesting_renders_in_order() {
        let doc = Json::obj()
            .with("name", "fig4")
            .with("samples", vec![1u64, 2, 3])
            .with(
                "stats",
                Json::obj().with("median_ns", 125.0).with("ok", true),
            );
        assert_eq!(
            doc.render(),
            r#"{"name":"fig4","samples":[1,2,3],"stats":{"median_ns":125,"ok":true}}"#
        );
    }
}
