//! Minimal JSON *emission* (no parsing).
//!
//! The workspace only ever serializes — bench reports, experiment
//! dumps, config echoes — so instead of `serde`/`serde_json` we carry a
//! tiny value tree and a writer. Numbers use Rust's shortest-roundtrip
//! float formatting; non-finite floats become `null` (matching what
//! `serde_json` does by default for JSON's number grammar).

use std::fmt::Write as _;

/// A JSON value tree. Object fields keep insertion order so emitted
/// documents are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects — a usage
    /// bug, not a data condition).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Rust's Display prints the shortest string that
                    // round-trips, but omits a decimal point for whole
                    // numbers; keep it — JSON accepts integer syntax.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        let v = 0.1f64 + 0.2f64;
        let s = Json::Num(v).render();
        assert_eq!(s.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn nesting_renders_in_order() {
        let doc = Json::obj()
            .with("name", "fig4")
            .with("samples", vec![1u64, 2, 3])
            .with(
                "stats",
                Json::obj().with("median_ns", 125.0).with("ok", true),
            );
        assert_eq!(
            doc.render(),
            r#"{"name":"fig4","samples":[1,2,3],"stats":{"median_ns":125,"ok":true}}"#
        );
    }
}
