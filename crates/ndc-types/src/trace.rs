//! The lowered instruction stream the simulator executes.
//!
//! Workloads are written in the compiler IR (`ndc-ir`); lowering turns
//! each thread's iteration-space walk into a [`Trace`] of instructions
//! with concrete physical addresses. The compiler's output differs from
//! the baseline only in instruction order and in the presence of
//! [`InstKind::PreCompute`] instructions — the paper's new ISA
//! instruction that offloads an operation to a near-data compute unit.

use crate::{Addr, NodeId, Op, Pc};

/// Identifier linking a `PreCompute` to the later `Compute` that
/// consumes its result (the paper's offload-table entry tag).
pub type PrecomputeId = u32;

/// Maximum number of element-wise operations a single fused precompute
/// packet may carry. Bounded so the packet fits fixed-size arrays (and a
/// plausible NDC package format); the compiler never fuses longer
/// chains.
pub const MAX_FUSED_OPS: usize = 4;

/// An operand of a two-input computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A value read from memory at the given address. The access walks
    /// the full L1 → NoC → L2 → NoC → MC → DRAM path as needed.
    Mem(Addr),
    /// An immediate / register value, available at issue with no memory
    /// access. Offloaded instructions with register operands transfer
    /// the value inside the NDC package (§2).
    Imm(f64),
}

impl Operand {
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Operand::Mem(a) => Some(*a),
            Operand::Imm(_) => None,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inst {
    /// Static-instruction identity; stable across dynamic instances so
    /// per-PC predictors and Figure 5's time series can key on it.
    pub pc: Pc,
    pub kind: InstKind,
}

/// Instruction kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstKind {
    /// A plain load (data brought to the core; fills L1).
    Load { addr: Addr },
    /// A plain store (write-allocate into L1; invalidates remote
    /// sharers).
    Store { addr: Addr },
    /// A two-operand arithmetic/logic computation performed at the core
    /// under conventional execution, or consumed from a near-data
    /// pre-computation when `precomputed` names a prior `PreCompute`
    /// that the hardware managed to execute near data.
    Compute {
        op: Op,
        a: Operand,
        b: Operand,
        /// Optional store of the result.
        store_to: Option<Addr>,
        /// Set by the compiler when a matching `PreCompute` was
        /// inserted earlier in the stream.
        precomputed: Option<PrecomputeId>,
    },
    /// The paper's new ISA instruction (§5.2.1): request that
    /// `Mem[a] op Mem[b]` be performed in a near-data component. The
    /// LD/ST unit records it in the offload table, probes the local L1
    /// (if an operand is local the offload is skipped and the
    /// computation runs at the core), and otherwise injects an NDC
    /// compute package.
    PreCompute {
        id: PrecomputeId,
        op: Op,
        a: Addr,
        b: Addr,
        /// Optional store target for the result (performed at the NDC
        /// location's side, with the result also fed back to the CPU via
        /// the "CPU-feed" signal).
        store_to: Option<Addr>,
        /// Compiler-chosen issue stagger in cycles between the two
        /// operand requests: positive delays `b`'s request, negative
        /// delays `a`'s. This is how the code-motion of Figures 8/9
        /// manifests at the ISA level — the moved access starts earlier
        /// or later so both operands reach the target component "around
        /// the same time".
        stagger: i32,
        /// When set, the operands' NoC messages use the compiler-selected
        /// minimal routes maximizing common links (`Sx ∩ Sy`, §5.2.1)
        /// instead of plain XY routes.
        reshape_routes: bool,
    },
    /// A fused chain of 2..=[`MAX_FUSED_OPS`] element-wise operations
    /// offloaded as a single NDC package: one gather of the union
    /// operand footprint, one execution visit at the chosen component,
    /// one result feed. The packet defines `n_ops` consecutive
    /// precompute ids `id .. id + n_ops` — one per chain member in
    /// chain order — each consumed by the corresponding later
    /// `Compute`.
    ///
    /// Operand layout: `addrs[0]`/`addrs[1]` are the two gathered
    /// operands of `ops[0]` (the chain head); for each tail member
    /// `k >= 1`, `addrs[k + 1]` is its single gathered operand and its
    /// other input is the forwarded result of member `k - 1`.
    FusedPreCompute {
        /// Base id; the packet defines `id .. id + n_ops`.
        id: PrecomputeId,
        /// Chain length (2..=[`MAX_FUSED_OPS`]); only `ops[..n_ops]`
        /// and `addrs[..n_ops + 1]` are meaningful.
        n_ops: u8,
        ops: [Op; MAX_FUSED_OPS],
        addrs: [Addr; MAX_FUSED_OPS + 1],
        /// Issue stagger between the head's two operand requests, as in
        /// [`InstKind::PreCompute`]. Tail gathers issue unstaggered.
        stagger: i32,
        /// Route reshaping for the gather messages, as in
        /// [`InstKind::PreCompute`].
        reshape_routes: bool,
    },
    /// Non-memory work: occupies the core's issue slots for the given
    /// number of cycles. Lowering inserts these to model the
    /// computation between memory references, and the compiler's
    /// statement movement shifts accesses across them.
    Busy { cycles: u32 },
}

impl Inst {
    pub fn load(pc: Pc, addr: Addr) -> Self {
        Inst {
            pc,
            kind: InstKind::Load { addr },
        }
    }

    pub fn store(pc: Pc, addr: Addr) -> Self {
        Inst {
            pc,
            kind: InstKind::Store { addr },
        }
    }

    pub fn compute(pc: Pc, op: Op, a: Operand, b: Operand, store_to: Option<Addr>) -> Self {
        Inst {
            pc,
            kind: InstKind::Compute {
                op,
                a,
                b,
                store_to,
                precomputed: None,
            },
        }
    }

    pub fn busy(pc: Pc, cycles: u32) -> Self {
        Inst {
            pc,
            kind: InstKind::Busy { cycles },
        }
    }

    /// Memory addresses this instruction touches (0 to
    /// `MAX_FUSED_OPS + 1`).
    pub fn touched_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        let mut slots: [Option<Addr>; MAX_FUSED_OPS + 1] = [None; MAX_FUSED_OPS + 1];
        match &self.kind {
            InstKind::Load { addr } => slots[0] = Some(*addr),
            InstKind::Store { addr } => slots[0] = Some(*addr),
            InstKind::Compute { a, b, store_to, .. } => {
                slots[0] = a.addr();
                slots[1] = b.addr();
                slots[2] = *store_to;
            }
            InstKind::PreCompute { a, b, store_to, .. } => {
                slots[0] = Some(*a);
                slots[1] = Some(*b);
                slots[2] = *store_to;
            }
            InstKind::FusedPreCompute { n_ops, addrs, .. } => {
                for (k, slot) in slots.iter_mut().take(*n_ops as usize + 1).enumerate() {
                    *slot = Some(addrs[k]);
                }
            }
            InstKind::Busy { .. } => {}
        }
        slots.into_iter().flatten()
    }
}

/// The instruction stream of one hardware thread, pinned to one core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The core this thread runs on.
    pub core: NodeId,
    pub insts: Vec<Inst>,
}

impl Trace {
    pub fn new(core: NodeId) -> Self {
        Trace {
            core,
            insts: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.insts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Count of two-operand arithmetic/logic computations (the
    /// denominator for the paper's "32% of arithmetic and logical
    /// instructions executed as NDC" footnote).
    pub fn compute_count(&self) -> u64 {
        self.insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Compute { .. }))
            .count() as u64
    }

    /// Count of pre-compute (offload request) instructions. A fused
    /// packet counts as one instruction; see [`Trace::precompute_ids`]
    /// for the number of ids defined.
    pub fn precompute_count(&self) -> u64 {
        self.insts
            .iter()
            .filter(|i| {
                matches!(
                    i.kind,
                    InstKind::PreCompute { .. } | InstKind::FusedPreCompute { .. }
                )
            })
            .count() as u64
    }

    /// Total precompute *ids* defined by this trace: 1 per `PreCompute`
    /// and `n_ops` per `FusedPreCompute`. This is the right base when
    /// allocating fresh ids or sizing per-id tables.
    pub fn precompute_ids(&self) -> u64 {
        self.insts
            .iter()
            .map(|i| match i.kind {
                InstKind::PreCompute { .. } => 1,
                InstKind::FusedPreCompute { n_ops, .. } => n_ops as u64,
                _ => 0,
            })
            .sum()
    }
}

/// A whole multithreaded program, lowered: one trace per core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceProgram {
    pub name: String,
    pub traces: Vec<Trace>,
}

impl TraceProgram {
    pub fn new(name: impl Into<String>) -> Self {
        TraceProgram {
            name: name.into(),
            traces: Vec::new(),
        }
    }

    pub fn total_insts(&self) -> u64 {
        self.traces.iter().map(|t| t.insts.len() as u64).sum()
    }

    pub fn total_computes(&self) -> u64 {
        self.traces.iter().map(|t| t.compute_count()).sum()
    }

    pub fn total_precomputes(&self) -> u64 {
        self.traces.iter().map(|t| t.precompute_count()).sum()
    }

    /// Sanity check used by tests and the harness: every
    /// `Compute { precomputed: Some(id) }` must be preceded in the same
    /// trace by a `PreCompute` with that id, and ids must be unique per
    /// trace.
    pub fn validate_precompute_links(&self) -> Result<(), String> {
        for (ti, trace) in self.traces.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for (ii, inst) in trace.insts.iter().enumerate() {
                match inst.kind {
                    InstKind::PreCompute { id, .. } if !seen.insert(id) => {
                        return Err(format!(
                            "trace {ti}: duplicate precompute id {id} at inst {ii}"
                        ));
                    }
                    InstKind::FusedPreCompute { id, n_ops, .. } => {
                        if !(2..=MAX_FUSED_OPS as u8).contains(&n_ops) {
                            return Err(format!(
                                "trace {ti}: fused precompute at inst {ii} has n_ops {n_ops} \
                                 outside 2..={MAX_FUSED_OPS}"
                            ));
                        }
                        for k in 0..n_ops as u32 {
                            if !seen.insert(id + k) {
                                return Err(format!(
                                    "trace {ti}: duplicate precompute id {} at inst {ii}",
                                    id + k
                                ));
                            }
                        }
                    }
                    InstKind::Compute {
                        precomputed: Some(id),
                        ..
                    } if !seen.contains(&id) => {
                        return Err(format!(
                            "trace {ti}: compute at inst {ii} consumes precompute {id} \
                             which does not precede it"
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_linked_trace(ok: bool) -> TraceProgram {
        let mut t = Trace::new(NodeId(0));
        if ok {
            t.insts.push(Inst {
                pc: 0,
                kind: InstKind::PreCompute {
                    id: 7,
                    op: Op::Add,
                    a: 0,
                    b: 64,
                    store_to: None,
                    stagger: 0,
                    reshape_routes: false,
                },
            });
        }
        t.insts.push(Inst {
            pc: 1,
            kind: InstKind::Compute {
                op: Op::Add,
                a: Operand::Mem(0),
                b: Operand::Mem(64),
                store_to: None,
                precomputed: Some(7),
            },
        });
        let mut p = TraceProgram::new("t");
        p.traces.push(t);
        p
    }

    #[test]
    fn precompute_links_validate() {
        assert!(mk_linked_trace(true).validate_precompute_links().is_ok());
        assert!(mk_linked_trace(false).validate_precompute_links().is_err());
    }

    #[test]
    fn duplicate_precompute_ids_rejected() {
        let mut t = Trace::new(NodeId(0));
        for _ in 0..2 {
            t.insts.push(Inst {
                pc: 0,
                kind: InstKind::PreCompute {
                    id: 1,
                    op: Op::Add,
                    a: 0,
                    b: 64,
                    store_to: None,
                    stagger: 0,
                    reshape_routes: false,
                },
            });
        }
        let mut p = TraceProgram::new("dup");
        p.traces.push(t);
        assert!(p.validate_precompute_links().is_err());
    }

    #[test]
    fn touched_addrs_cover_all_operands() {
        let i = Inst::compute(0, Op::Add, Operand::Mem(100), Operand::Mem(200), Some(300));
        let addrs: Vec<Addr> = i.touched_addrs().collect();
        assert_eq!(addrs, vec![100, 200, 300]);

        let i = Inst::compute(0, Op::Add, Operand::Imm(1.0), Operand::Mem(200), None);
        let addrs: Vec<Addr> = i.touched_addrs().collect();
        assert_eq!(addrs, vec![200]);

        let i = Inst::busy(0, 5);
        assert_eq!(i.touched_addrs().count(), 0);
    }

    #[test]
    fn counts() {
        let p = mk_linked_trace(true);
        assert_eq!(p.total_insts(), 2);
        assert_eq!(p.total_computes(), 1);
        assert_eq!(p.total_precomputes(), 1);
    }

    fn fused_inst(id: PrecomputeId, n_ops: u8) -> Inst {
        Inst {
            pc: 0,
            kind: InstKind::FusedPreCompute {
                id,
                n_ops,
                ops: [Op::Add; MAX_FUSED_OPS],
                addrs: [0, 64, 128, 192, 256],
                stagger: 0,
                reshape_routes: false,
            },
        }
    }

    #[test]
    fn fused_packet_defines_consecutive_ids() {
        let mut t = Trace::new(NodeId(0));
        t.insts.push(fused_inst(3, 2));
        for id in [3u32, 4] {
            t.insts.push(Inst {
                pc: 1,
                kind: InstKind::Compute {
                    op: Op::Add,
                    a: Operand::Mem(0),
                    b: Operand::Mem(64),
                    store_to: None,
                    precomputed: Some(id),
                },
            });
        }
        assert_eq!(t.precompute_count(), 1);
        assert_eq!(t.precompute_ids(), 2);
        let mut p = TraceProgram::new("fused");
        p.traces.push(t);
        assert!(p.validate_precompute_links().is_ok());

        // Consuming the one-past-the-end id must fail.
        let mut bad = p.clone();
        bad.traces[0].insts.push(Inst {
            pc: 2,
            kind: InstKind::Compute {
                op: Op::Add,
                a: Operand::Mem(0),
                b: Operand::Mem(64),
                store_to: None,
                precomputed: Some(5),
            },
        });
        assert!(bad.validate_precompute_links().is_err());
    }

    #[test]
    fn fused_packet_rejects_bad_arity_and_id_overlap() {
        let mut t = Trace::new(NodeId(0));
        t.insts.push(fused_inst(0, 1)); // n_ops below 2
        let mut p = TraceProgram::new("arity");
        p.traces.push(t);
        assert!(p.validate_precompute_links().is_err());

        let mut t = Trace::new(NodeId(0));
        t.insts.push(fused_inst(0, 3)); // defines 0, 1, 2
        t.insts.push(fused_inst(2, 2)); // 2 collides
        let mut p = TraceProgram::new("overlap");
        p.traces.push(t);
        assert!(p.validate_precompute_links().is_err());
    }

    #[test]
    fn fused_touched_addrs_cover_gathered_operands() {
        let addrs: Vec<Addr> = fused_inst(0, 3).touched_addrs().collect();
        assert_eq!(addrs, vec![0, 64, 128, 192]);
    }
}
