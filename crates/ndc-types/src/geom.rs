//! Mesh coordinates and node identifiers.

/// A node's (column, row) position on the 2D mesh.
///
/// `x` grows to the east, `y` grows to the south. The paper's default
/// machine is a 5×5 mesh (Table 1), so coordinates comfortably fit in a
/// byte; we keep `u16` to allow the 6×6 and larger sensitivity sweeps
/// (Figure 17) and synthetic stress tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

impl Coord {
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates — the minimal hop count
    /// on a 2D mesh.
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A dense node index: `id = y * width + x`, assigned row-major.
///
/// Used as the index into per-node state vectors (cores, L1s, L2 banks,
/// routers) everywhere in the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Convert a node id back to mesh coordinates for a mesh of the given
    /// width.
    pub fn coord(self, width: u16) -> Coord {
        Coord::new(self.0 % width, self.0 / width)
    }

    /// Build a node id from coordinates on a mesh of the given width.
    pub fn from_coord(c: Coord, width: u16) -> Self {
        NodeId(c.y * width + c.x)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip_through_node_id() {
        let width = 5;
        for y in 0..5u16 {
            for x in 0..width {
                let c = Coord::new(x, y);
                let id = NodeId::from_coord(c, width);
                assert_eq!(id.coord(width), c);
            }
        }
    }

    #[test]
    fn node_ids_are_row_major() {
        assert_eq!(NodeId::from_coord(Coord::new(0, 0), 5), NodeId(0));
        assert_eq!(NodeId::from_coord(Coord::new(4, 0), 5), NodeId(4));
        assert_eq!(NodeId::from_coord(Coord::new(0, 1), 5), NodeId(5));
        assert_eq!(NodeId::from_coord(Coord::new(4, 4), 5), NodeId(24));
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(4, 4);
        assert_eq!(a.manhattan(b), 8);
        assert_eq!(b.manhattan(a), 8);
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(Coord::new(2, 3).manhattan(Coord::new(3, 1)), 3);
    }
}
