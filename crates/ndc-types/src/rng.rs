//! A small deterministic PRNG for trace generation and property tests.
//!
//! The workspace is dependency-free, so instead of `rand` we carry
//! Steele et al.'s SplitMix64: one 64-bit state word, a Weyl increment,
//! and a finalizer. It passes BigCrush for this state size, is trivially
//! seedable, and — crucially for reproducing the paper's figures — two
//! runs from the same seed produce the same stream on every platform.

/// Fixed default seed so unseeded generators are reproducible run to
/// run (workload synthesis and the experiment harness rely on this).
pub const DEFAULT_SEED: u64 = 0x005e_ed0f_9a9e_2021;

/// SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(DEFAULT_SEED)
    }
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`; `n` must be non-zero. Uses Lemire's
    /// multiply-shift reduction (bias is < 2^-64, irrelevant here).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in the half-open range `[lo, hi)` (`lo < hi`).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Uniform signed integer in `[lo, hi)`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform float in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniformly choose an element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Derive an independent generator for subtask `i` (used to give
    /// each property-test case its own stream).
    pub fn fork(&self, i: u64) -> SplitMix64 {
        let mut g = SplitMix64::new(self.state ^ i.wrapping_mul(0xa076_1d64_78bd_642f));
        g.next_u64(); // decorrelate adjacent forks
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_matches_splitmix64() {
        // First outputs for seed 1234567, from the published reference
        // implementation.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn default_seed_is_stable() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::default();
            (0..8).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(DEFAULT_SEED);
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = g.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let s = g.range_i64(-5, 6);
            assert!((-5..6).contains(&s));
            let f = g.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut g = SplitMix64::new(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[g.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let g = SplitMix64::new(99);
        let mut a = g.fork(0);
        let mut b = g.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
