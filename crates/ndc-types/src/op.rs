//! Arithmetic/logic operations and NDC hardware locations.

/// The arithmetic and logic operations that can be offloaded near data.
///
/// The paper writes `A + B` throughout but states the approach handles
/// "any arithmetic or logic operation implemented in a given location of
/// interest" (§2). The Figure 17 sensitivity study restricts the
/// offloadable set to `{+, -}`, which [`Op::is_add_sub`] supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Min,
    Max,
    /// Compare, producing 0 or 1. Used by the tree-walk style workloads
    /// (kdtree, barnes) whose inner computations are key comparisons.
    CmpLt,
}

impl Op {
    /// True for the `{+, -}` subset used by the restricted-ops
    /// sensitivity experiment (Figure 17, last pair of bars).
    pub fn is_add_sub(self) -> bool {
        matches!(self, Op::Add | Op::Sub)
    }

    /// Evaluate the operation on two `f64` values. The simulator carries
    /// real values so that semantics-preservation of compiler transforms
    /// can be checked end-to-end (transformed program ⇒ identical
    /// results).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            Op::Add => a + b,
            Op::Sub => a - b,
            Op::Mul => a * b,
            // Guard against division by zero in synthetic data; the
            // workloads avoid zero divisors, but property tests do not.
            Op::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            Op::And => ((a as i64) & (b as i64)) as f64,
            Op::Or => ((a as i64) | (b as i64)) as f64,
            Op::Xor => ((a as i64) ^ (b as i64)) as f64,
            Op::Min => a.min(b),
            Op::Max => a.max(b),
            Op::CmpLt => {
                if a < b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// All operations, for exhaustive tests.
    pub const ALL: [Op; 10] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Min,
        Op::Max,
        Op::CmpLt,
    ];
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::And => "&",
            Op::Or => "|",
            Op::Xor => "^",
            Op::Min => "min",
            Op::Max => "max",
            Op::CmpLt => "<",
        };
        f.write_str(s)
    }
}

/// The four hardware locations the paper considers for near-data
/// computation (Figure 1: ⓐ link buffers/routers, ⓑ cache controllers,
/// ⓒ memory controllers, ⓓ main memory banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NdcLocation {
    /// An ALU attached to a NoC router's link buffer.
    LinkBuffer,
    /// An ALU attached to an L2 bank's cache controller.
    CacheController,
    /// An ALU attached to a memory controller's request queue.
    MemoryController,
    /// A compute unit inside a DRAM bank.
    MemoryBank,
}

/// All four locations in the order the paper's figures report them
/// (cache, network, MC, memory in the breakdown plots; we keep the
/// canonical enum order here and let presentation code reorder).
pub const ALL_NDC_LOCATIONS: [NdcLocation; 4] = [
    NdcLocation::LinkBuffer,
    NdcLocation::CacheController,
    NdcLocation::MemoryController,
    NdcLocation::MemoryBank,
];

impl NdcLocation {
    /// Stable dense index for per-location arrays.
    pub fn index(self) -> usize {
        match self {
            NdcLocation::LinkBuffer => 0,
            NdcLocation::CacheController => 1,
            NdcLocation::MemoryController => 2,
            NdcLocation::MemoryBank => 3,
        }
    }

    /// The label the paper's breakdown figures use for this location.
    pub fn paper_label(self) -> &'static str {
        match self {
            NdcLocation::LinkBuffer => "network",
            NdcLocation::CacheController => "cache",
            NdcLocation::MemoryController => "MC",
            NdcLocation::MemoryBank => "memory",
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        ALL_NDC_LOCATIONS.get(i).copied()
    }
}

impl std::fmt::Display for NdcLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NdcLocation::LinkBuffer => "link buffer",
            NdcLocation::CacheController => "cache controller",
            NdcLocation::MemoryController => "memory controller",
            NdcLocation::MemoryBank => "main memory",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_apply_basics() {
        assert_eq!(Op::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(Op::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(Op::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(Op::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(Op::Div.apply(6.0, 0.0), 0.0);
        assert_eq!(Op::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(Op::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(Op::CmpLt.apply(2.0, 3.0), 1.0);
        assert_eq!(Op::CmpLt.apply(3.0, 2.0), 0.0);
    }

    #[test]
    fn op_bitwise_on_integral_values() {
        assert_eq!(Op::And.apply(6.0, 3.0), 2.0);
        assert_eq!(Op::Or.apply(6.0, 3.0), 7.0);
        assert_eq!(Op::Xor.apply(6.0, 3.0), 5.0);
    }

    #[test]
    fn add_sub_restriction_matches_fig17() {
        let restricted: Vec<Op> = Op::ALL.iter().copied().filter(|o| o.is_add_sub()).collect();
        assert_eq!(restricted, vec![Op::Add, Op::Sub]);
    }

    #[test]
    fn location_indices_are_dense_and_stable() {
        for (i, loc) in ALL_NDC_LOCATIONS.iter().enumerate() {
            assert_eq!(loc.index(), i);
            assert_eq!(NdcLocation::from_index(i), Some(*loc));
        }
        assert_eq!(NdcLocation::from_index(4), None);
    }
}
