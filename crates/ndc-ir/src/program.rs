//! Arrays, affine references, statements, loop nests, programs.
//!
//! A reference is `X(F·I + f)` exactly as in §5.2.1: `F` an `m×n`
//! integer matrix over the nest's iteration vector `I`, `f` an `m`-entry
//! offset vector. A statement computes `dst = a op b` (or a plain copy),
//! with an attached `work` cost modelling the surrounding non-memory
//! computation.

use crate::matrix::{IMat, IVec};
use ndc_types::{Addr, Op};

/// Index of an array within its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Index of a loop nest within its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NestId(pub u32);

/// Statement identity, unique within a nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// An array declaration: shape, element size, and (after layout) its
/// base physical address. Row-major layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    pub dims: Vec<u64>,
    pub elem_bytes: u64,
    pub base: Addr,
}

impl ArrayDecl {
    pub fn new(name: impl Into<String>, dims: Vec<u64>, elem_bytes: u64) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0));
        ArrayDecl {
            name: name.into(),
            dims,
            elem_bytes,
            base: 0,
        }
    }

    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }

    pub fn size_bytes(&self) -> u64 {
        self.elements() * self.elem_bytes
    }

    /// Row-major linear index of a (validated, in-bounds) index vector.
    pub fn linearize(&self, idx: &[i64]) -> Option<u64> {
        if idx.len() != self.dims.len() {
            return None;
        }
        let mut lin: u64 = 0;
        for (&i, &d) in idx.iter().zip(self.dims.iter()) {
            if i < 0 || i as u64 >= d {
                return None;
            }
            lin = lin * d + i as u64;
        }
        Some(lin)
    }

    /// Physical address of an element, `None` if out of bounds.
    pub fn addr_of(&self, idx: &[i64]) -> Option<Addr> {
        self.linearize(idx).map(|l| self.base + l * self.elem_bytes)
    }
}

/// An affine array reference `X(F·I + f)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    pub array: ArrayId,
    /// `m×n` coefficient matrix (`m` = array rank, `n` = nest depth).
    pub coeffs: IMat,
    /// `m`-entry constant offset.
    pub offsets: IVec,
}

impl ArrayRef {
    /// The common case: rank equals depth and `F` is the identity with
    /// constant offsets, e.g. `X[i-1][j+1]` → offsets `[-1, 1]`.
    pub fn identity(array: ArrayId, depth: usize, offsets: IVec) -> Self {
        assert_eq!(offsets.len(), depth);
        ArrayRef {
            array,
            coeffs: IMat::identity(depth),
            offsets,
        }
    }

    /// General affine reference.
    pub fn affine(array: ArrayId, coeffs: IMat, offsets: IVec) -> Self {
        assert_eq!(coeffs.rows, offsets.len());
        ArrayRef {
            array,
            coeffs,
            offsets,
        }
    }

    /// The index vector this reference touches at iteration `iter`.
    pub fn index_at(&self, iter: &[i64]) -> IVec {
        let mut idx = self.coeffs.mul_vec(iter);
        for (i, o) in idx.iter_mut().zip(self.offsets.iter()) {
            *i += o;
        }
        idx
    }
}

/// A right-hand-side operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Ref {
    Array(ArrayRef),
    Const(f64),
}

impl Ref {
    pub fn as_array(&self) -> Option<&ArrayRef> {
        match self {
            Ref::Array(a) => Some(a),
            Ref::Const(_) => None,
        }
    }
}

/// One statement: `dst = a op b`, or a copy `dst = a` when `op`/`b` are
/// absent. `work` models the non-memory computation around the accesses
/// (lowered to `Busy` cycles), giving the instruction stream realistic
/// time texture for the compiler's Δ estimation to work against.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub id: StmtId,
    pub dst: ArrayRef,
    pub op: Option<Op>,
    pub a: Ref,
    pub b: Option<Ref>,
    pub work: u32,
}

impl Stmt {
    /// A two-operand computation `dst = a op b`.
    pub fn binary(id: u32, dst: ArrayRef, op: Op, a: Ref, b: Ref, work: u32) -> Self {
        Stmt {
            id: StmtId(id),
            dst,
            op: Some(op),
            a,
            b: Some(b),
            work,
        }
    }

    /// A copy `dst = a`.
    pub fn copy(id: u32, dst: ArrayRef, a: Ref, work: u32) -> Self {
        Stmt {
            id: StmtId(id),
            dst,
            op: None,
            a,
            b: None,
            work,
        }
    }

    /// Both operands as array references, if this is a two-memory-operand
    /// computation — the NDC candidates (`x + y` with `x`, `y` in
    /// memory).
    pub fn memory_operand_pair(&self) -> Option<(&ArrayRef, &ArrayRef)> {
        match (
            self.op,
            self.a.as_array(),
            self.b.as_ref().and_then(|b| b.as_array()),
        ) {
            (Some(_), Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// All array references in the statement (reads then write).
    pub fn array_refs(&self) -> Vec<(&ArrayRef, bool)> {
        let mut v = Vec::with_capacity(3);
        if let Some(a) = self.a.as_array() {
            v.push((a, false));
        }
        if let Some(b) = self.b.as_ref().and_then(|b| b.as_array()) {
            v.push((b, false));
        }
        v.push((&self.dst, true));
        v
    }
}

/// A rectangular loop nest of depth `n` with body statements executed in
/// order per iteration. Bounds are `lo[k] <= i_k < hi[k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    pub id: NestId,
    pub lo: IVec,
    pub hi: IVec,
    pub body: Vec<Stmt>,
    /// The loop level partitioned across threads (usually 0, the
    /// outermost). `None` means the nest runs on thread 0 only.
    pub parallel_level: Option<usize>,
}

impl LoopNest {
    /// Zero-trip dimensions (`lo[k] == hi[k]`) are legal and make the
    /// nest empty; inverted bounds (`lo[k] > hi[k]`) are rejected here
    /// (and by the `ndc-lint` IR verifier for hand-built nests).
    pub fn new(id: u32, lo: IVec, hi: IVec, body: Vec<Stmt>) -> Self {
        assert_eq!(lo.len(), hi.len());
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "inverted nest bounds"
        );
        LoopNest {
            id: NestId(id),
            lo,
            hi,
            body,
            parallel_level: Some(0),
        }
    }

    pub fn depth(&self) -> usize {
        self.lo.len()
    }

    /// Total iteration count. Zero when any dimension is zero-trip or
    /// inverted.
    pub fn points(&self) -> u64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| (h - l).max(0) as u64)
            .product()
    }

    /// True when the nest executes no iterations at all.
    pub fn is_empty(&self) -> bool {
        self.points() == 0
    }

    /// Enumerate all iteration vectors in lexicographic order. Yields
    /// nothing for an empty (zero-trip or inverted) nest.
    pub fn iter_points(&self) -> IterPoints<'_> {
        IterPoints {
            nest: self,
            cur: if self.is_empty() {
                None
            } else {
                Some(self.lo.clone())
            },
        }
    }

    pub fn stmt(&self, id: StmtId) -> Option<&Stmt> {
        self.body.iter().find(|s| s.id == id)
    }

    /// Position of a statement in body order.
    pub fn stmt_pos(&self, id: StmtId) -> Option<usize> {
        self.body.iter().position(|s| s.id == id)
    }
}

/// Iterator over a nest's iteration space in lexicographic order.
pub struct IterPoints<'a> {
    nest: &'a LoopNest,
    cur: Option<IVec>,
}

impl Iterator for IterPoints<'_> {
    type Item = IVec;

    fn next(&mut self) -> Option<IVec> {
        let cur = self.cur.take()?;
        let mut next = cur.clone();
        // Odometer increment from the innermost dimension.
        for k in (0..next.len()).rev() {
            next[k] += 1;
            if next[k] < self.nest.hi[k] {
                self.cur = Some(next);
                return Some(cur);
            }
            next[k] = self.nest.lo[k];
        }
        // Wrapped past the end: this was the last point.
        self.cur = None;
        Some(cur)
    }
}

/// A whole program: arrays plus loop nests executed in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub name: String,
    pub arrays: Vec<ArrayDecl>,
    pub nests: Vec<LoopNest>,
}

impl Program {
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            arrays: Vec::new(),
            nests: Vec::new(),
        }
    }

    pub fn add_array(&mut self, decl: ArrayDecl) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(decl);
        id
    }

    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    pub fn nest(&self, id: NestId) -> &LoopNest {
        self.nests
            .iter()
            .find(|n| n.id == id)
            .expect("unknown nest id")
    }

    /// Assign base addresses: arrays laid out back-to-back from `base`,
    /// each aligned to `align` bytes. The layout determines every
    /// address-derived property downstream (L2 home bank, MC, DRAM
    /// bank), so it is part of the program's identity.
    pub fn assign_layout(&mut self, base: Addr, align: u64) {
        let mut at = base;
        for a in &mut self.arrays {
            at = at.div_ceil(align) * align;
            a.base = at;
            at += a.size_bytes();
        }
    }

    /// Total data footprint in bytes (after layout).
    pub fn footprint(&self) -> u64 {
        self.arrays.iter().map(|a| a.size_bytes()).sum()
    }

    /// Physical address touched by `aref` at iteration `iter`, `None`
    /// if out of the array's bounds.
    pub fn addr_of(&self, aref: &ArrayRef, iter: &[i64]) -> Option<Addr> {
        let idx = aref.index_at(iter);
        self.array(aref.array).addr_of(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_prog() -> (Program, ArrayId, ArrayId) {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8, 8], 8));
        p.assign_layout(0x1000, 256);
        (p, x, y)
    }

    #[test]
    fn layout_is_aligned_and_disjoint() {
        let (p, x, y) = simple_prog();
        let xd = p.array(x);
        let yd = p.array(y);
        assert_eq!(xd.base % 256, 0);
        assert_eq!(yd.base % 256, 0);
        assert!(yd.base >= xd.base + xd.size_bytes());
        assert_eq!(p.footprint(), 2 * 8 * 8 * 8);
    }

    #[test]
    fn row_major_addressing() {
        let (p, x, _) = simple_prog();
        let xd = p.array(x);
        assert_eq!(xd.addr_of(&[0, 0]), Some(xd.base));
        assert_eq!(xd.addr_of(&[0, 1]), Some(xd.base + 8));
        assert_eq!(xd.addr_of(&[1, 0]), Some(xd.base + 64));
        assert_eq!(xd.addr_of(&[7, 7]), Some(xd.base + 8 * 63));
        assert_eq!(xd.addr_of(&[8, 0]), None);
        assert_eq!(xd.addr_of(&[-1, 0]), None);
        assert_eq!(xd.addr_of(&[0]), None);
    }

    #[test]
    fn reference_index_evaluation() {
        let (_, x, _) = simple_prog();
        // X[i-1][j+1] over (i, j).
        let r = ArrayRef::identity(x, 2, vec![-1, 1]);
        assert_eq!(r.index_at(&[5, 4]), vec![4, 5]);
        // X[j][i] — transposed access (Figure 10 style).
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[0, 1], &[1, 0]]), vec![0, 0]);
        assert_eq!(r.index_at(&[5, 4]), vec![4, 5]);
    }

    #[test]
    fn iteration_order_is_lexicographic() {
        let nest = LoopNest::new(0, vec![0, 0], vec![2, 3], vec![]);
        let pts: Vec<IVec> = nest.iter_points().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        assert_eq!(nest.points(), 6);
    }

    #[test]
    fn nonzero_lower_bounds() {
        let nest = LoopNest::new(0, vec![1, 2], vec![3, 4], vec![]);
        let pts: Vec<IVec> = nest.iter_points().collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], vec![1, 2]);
        assert_eq!(pts[3], vec![2, 3]);
    }

    #[test]
    fn memory_operand_pair_detection() {
        let (_, x, y) = simple_prog();
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(y, 2, vec![0, 0])),
            2,
        );
        assert!(s.memory_operand_pair().is_some());
        let s2 = Stmt::binary(
            1,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Const(3.0),
            2,
        );
        assert!(s2.memory_operand_pair().is_none());
        let s3 = Stmt::copy(2, ArrayRef::identity(x, 2, vec![0, 0]), Ref::Const(0.0), 0);
        assert!(s3.memory_operand_pair().is_none());
        assert_eq!(s3.array_refs().len(), 1);
    }

    #[test]
    fn zero_trip_nest_is_empty() {
        let nest = LoopNest::new(0, vec![0], vec![0], vec![]);
        assert_eq!(nest.points(), 0);
        assert!(nest.is_empty());
        assert_eq!(nest.iter_points().count(), 0);
        // A single zero-trip dimension empties the whole space.
        let nest = LoopNest::new(1, vec![0, 4], vec![8, 4], vec![]);
        assert_eq!(nest.points(), 0);
        assert_eq!(nest.iter_points().count(), 0);
    }

    #[test]
    fn single_trip_nest_yields_one_point() {
        let nest = LoopNest::new(0, vec![3, 0], vec![4, 2], vec![]);
        assert_eq!(nest.points(), 2);
        let pts: Vec<IVec> = nest.iter_points().collect();
        assert_eq!(pts, vec![vec![3, 0], vec![3, 1]]);
    }

    #[test]
    #[should_panic(expected = "inverted nest bounds")]
    fn inverted_nest_rejected() {
        LoopNest::new(0, vec![4], vec![0], vec![]);
    }
}
