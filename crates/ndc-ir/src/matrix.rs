//! Small integer vector/matrix algebra for loop-transformation theory.
//!
//! Loop nests of depth `n` use `n`-entry iteration vectors and `n×n`
//! transformation matrices. Everything here is exact `i64` arithmetic:
//! transformation legality (`T·D ≻ 0` column-wise) must not suffer
//! rounding.

/// An integer (iteration/distance) vector.
pub type IVec = Vec<i64>;

/// A dense row-major integer matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    pub rows: usize,
    pub cols: usize,
    data: Vec<i64>,
}

impl IMat {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Matrix × vector.
    pub fn mul_vec(&self, v: &[i64]) -> IVec {
        assert_eq!(self.cols, v.len());
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Matrix × matrix.
    pub fn mul(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.rows);
        let mut out = IMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Determinant by fraction-free Gaussian elimination (Bareiss),
    /// exact in `i128`. The `i64`-facing wrappers below convert with a
    /// check instead of truncating.
    fn det_i128(&self) -> i128 {
        assert_eq!(self.rows, self.cols, "det of non-square");
        let n = self.rows;
        if n == 0 {
            return 1;
        }
        let mut a: Vec<i128> = self.data.iter().map(|&x| x as i128).collect();
        let idx = |i: usize, j: usize| i * n + j;
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n - 1 {
            // Pivot.
            if a[idx(k, k)] == 0 {
                let swap = (k + 1..n).find(|&i| a[idx(i, k)] != 0);
                match swap {
                    Some(i) => {
                        for j in 0..n {
                            a.swap(idx(k, j), idx(i, j));
                        }
                        sign = -sign;
                    }
                    None => return 0,
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    a[idx(i, j)] =
                        (a[idx(i, j)] * a[idx(k, k)] - a[idx(i, k)] * a[idx(k, j)]) / prev;
                }
                a[idx(i, k)] = 0;
            }
            prev = a[idx(k, k)];
        }
        sign * a[idx(n - 1, n - 1)]
    }

    /// Determinant. Panics if the exact value does not fit in `i64`
    /// (use [`IMat::checked_det`] to handle that case); silently
    /// truncating here would mislabel huge-determinant matrices as
    /// unimodular.
    pub fn det(&self) -> i64 {
        let d = self.det_i128();
        i64::try_from(d).unwrap_or_else(|_| panic!("determinant {d} overflows i64"))
    }

    /// Determinant, or `None` when the exact value overflows `i64`.
    pub fn checked_det(&self) -> Option<i64> {
        i64::try_from(self.det_i128()).ok()
    }

    /// A transformation is unimodular iff `|det| == 1`; unimodular
    /// transformations map the integer lattice bijectively, which is
    /// what makes them legal loop transformations (Wolfe's condition).
    /// Decided on the exact `i128` determinant, so an overflowing
    /// determinant is never mistaken for ±1.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && {
            let d = self.det_i128();
            d == 1 || d == -1
        }
    }

    /// Exact inverse of a unimodular matrix (adjugate divided by the
    /// ±1 determinant). Panics if the matrix is not unimodular — the
    /// compiler only inverts transformation matrices drawn from
    /// [`candidate_transforms`].
    pub fn inverse_unimodular(&self) -> IMat {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let det128 = self.det_i128();
        assert!(
            det128 == 1 || det128 == -1,
            "inverse_unimodular on non-unimodular matrix"
        );
        let det = det128 as i64;
        let mut inv = IMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // Cofactor C_ji (note the transpose for the adjugate).
                let minor = self.minor(j, i);
                let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
                inv[(i, j)] = sign * minor.det() * det;
            }
        }
        inv
    }

    fn minor(&self, drop_row: usize, drop_col: usize) -> IMat {
        let n = self.rows;
        if n == 1 {
            return IMat::identity(0);
        }
        let mut m = IMat::zeros(n - 1, n - 1);
        let mut ii = 0;
        for i in 0..n {
            if i == drop_row {
                continue;
            }
            let mut jj = 0;
            for j in 0..n {
                if j == drop_col {
                    continue;
                }
                m[(ii, jj)] = self[(i, j)];
                jj += 1;
            }
            ii += 1;
        }
        m
    }

    /// Column `j` as a vector.
    pub fn col(&self, j: usize) -> IVec {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Lexicographic comparison of two equal-length vectors.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// A vector is lexicographically positive if its first nonzero entry is
/// positive. The all-zero vector is *not* positive (a zero distance is a
/// loop-independent dependence, always preserved by statement order).
pub fn lex_positive(v: &[i64]) -> bool {
    for &x in v {
        if x > 0 {
            return true;
        }
        if x < 0 {
            return false;
        }
    }
    false
}

/// Legality of applying transformation `T` to a nest with dependence
/// distance vectors `dists`: every transformed distance `T·d` must stay
/// lexicographically positive (§5.2.1: "each column of T·D should be
/// lexicographically positive"). Zero vectors (loop-independent
/// dependences) are exempt — they are ordered by statement position.
pub fn transformation_legal(t: &IMat, dists: &[IVec]) -> bool {
    dists.iter().all(|d| {
        if d.iter().all(|&x| x == 0) {
            return true;
        }
        lex_positive(&t.mul_vec(d))
    })
}

/// Enumerate candidate unimodular transformations for a nest of depth
/// `n`: all loop permutations, each with every sign-reversal pattern,
/// plus single-skew variants (`i_j += s·i_k` for small `s`). This is the
/// search space Algorithm 1 draws `T` from ("with all available
/// strides").
pub fn candidate_transforms(n: usize, max_skew: i64) -> Vec<IMat> {
    let mut out = Vec::new();
    let perms = permutations(n);
    for perm in &perms {
        for signs in 0..(1u32 << n) {
            let mut m = IMat::zeros(n, n);
            for (i, &p) in perm.iter().enumerate() {
                m[(i, p)] = if signs & (1 << i) != 0 { -1 } else { 1 };
            }
            out.push(m);
        }
    }
    // Single skews applied to the identity permutation (skewing a
    // permuted nest is reachable by composing; we bound the space to
    // keep compilation fast, as the paper's implementation does by
    // trying strategies "in order").
    for j in 0..n {
        for k in 0..n {
            if j == k {
                continue;
            }
            for s in 1..=max_skew {
                for &sgn in &[s, -s] {
                    let mut m = IMat::identity(n);
                    m[(j, k)] = sgn;
                    out.push(m);
                }
            }
        }
    }
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_types::SplitMix64;

    #[test]
    fn identity_and_mul() {
        let i3 = IMat::identity(3);
        let v = vec![4, -5, 6];
        assert_eq!(i3.mul_vec(&v), v);
        let m = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.mul_vec(&[1, 1]), vec![3, 7]);
        let mm = m.mul(&IMat::identity(2));
        assert_eq!(mm, m);
    }

    #[test]
    fn determinants() {
        assert_eq!(IMat::identity(4).det(), 1);
        let m = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.det(), -2);
        let m = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(m.det(), -1);
        assert!(m.is_unimodular());
        let m = IMat::from_rows(&[&[2, 0], &[0, 1]]);
        assert!(!m.is_unimodular());
        let singular = IMat::from_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(singular.det(), 0);
    }

    #[test]
    fn det_three_by_three_with_pivoting() {
        let m = IMat::from_rows(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]]);
        assert_eq!(m.det(), -1);
        let m = IMat::from_rows(&[&[2, 1, 3], &[0, 0, 2], &[1, 4, 0]]);
        // det = 2*(0*0-2*4) - 1*(0*0-2*1) + 3*(0*4-0*1) = -16 + 2 = -14.
        assert_eq!(m.det(), -14);
    }

    #[test]
    fn lex_order() {
        assert!(lex_positive(&[1, -5]));
        assert!(lex_positive(&[0, 0, 2]));
        assert!(!lex_positive(&[0, 0, 0]));
        assert!(!lex_positive(&[-1, 100]));
        assert_eq!(lex_cmp(&[1, 2], &[1, 3]), std::cmp::Ordering::Less);
        assert_eq!(lex_cmp(&[2, 0], &[1, 9]), std::cmp::Ordering::Greater);
        assert_eq!(lex_cmp(&[1, 1], &[1, 1]), std::cmp::Ordering::Equal);
    }

    #[test]
    fn interchange_legality_textbook_case() {
        // Distance (1, -1): legal as-is, illegal after interchange —
        // the classic example (paper's Figure 10 access pattern).
        let d = vec![vec![1, -1]];
        let id = IMat::identity(2);
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert!(transformation_legal(&id, &d));
        assert!(!transformation_legal(&swap, &d));
        // Skewing by one (i2' = i2 + i1) makes the interchange legal:
        // T = swap * skew.
        let skew = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let t = swap.mul(&skew);
        assert!(transformation_legal(&t, &d));
    }

    #[test]
    fn zero_distance_is_always_legal() {
        let d = vec![vec![0, 0]];
        let rev = IMat::from_rows(&[&[-1, 0], &[0, -1]]);
        assert!(transformation_legal(&rev, &d));
    }

    #[test]
    fn candidate_space_contents() {
        let cands = candidate_transforms(2, 1);
        // 2 perms * 4 sign patterns + 2*1*2 skews = 12.
        assert_eq!(cands.len(), 12);
        for t in &cands {
            assert!(t.is_unimodular(), "{t:?} not unimodular");
        }
        assert!(cands.contains(&IMat::identity(2)));
        assert!(cands.contains(&IMat::from_rows(&[&[0, 1], &[1, 0]])));
        assert!(cands.contains(&IMat::from_rows(&[&[1, 1], &[0, 1]])));
    }

    #[test]
    fn unimodular_inverse_roundtrip() {
        for t in candidate_transforms(3, 2) {
            let inv = t.inverse_unimodular();
            assert_eq!(t.mul(&inv), IMat::identity(3), "{t:?}");
            assert_eq!(inv.mul(&t), IMat::identity(3), "{t:?}");
        }
        let one = IMat::from_rows(&[&[-1]]);
        assert_eq!(one.inverse_unimodular(), one);
    }

    #[test]
    #[should_panic(expected = "non-unimodular")]
    fn inverse_rejects_non_unimodular() {
        IMat::from_rows(&[&[2, 0], &[0, 1]]).inverse_unimodular();
    }

    /// A determinant whose exact value exceeds `i64::MAX` must not be
    /// silently truncated: before the checked conversion, this matrix's
    /// det (≈ 9.22e18, just over `i64::MAX`) wrapped to a *negative*
    /// value and could alias ±1 for other inputs.
    #[test]
    fn det_overflow_is_detected_not_truncated() {
        // 3037000500^2 = 9223372037000250000 > i64::MAX (9223372036854775807).
        let big = IMat::from_rows(&[&[3_037_000_500, 0], &[0, 3_037_000_500]]);
        assert_eq!(big.checked_det(), None);
        assert!(!big.is_unimodular());
        // A matrix with a large but representable det still round-trips.
        let ok = IMat::from_rows(&[&[3_000_000_000, 0], &[0, 3_000_000_000]]);
        assert_eq!(ok.checked_det(), Some(9_000_000_000_000_000_000));
        assert_eq!(ok.det(), 9_000_000_000_000_000_000);
    }

    #[test]
    #[should_panic(expected = "overflows i64")]
    fn det_panics_on_overflow() {
        IMat::from_rows(&[&[3_037_000_500, 0], &[0, 3_037_000_500]]).det();
    }

    #[test]
    #[should_panic(expected = "non-unimodular")]
    fn inverse_rejects_overflowing_determinant() {
        // Must hit the unimodularity assert, not a truncation artifact.
        IMat::from_rows(&[&[3_037_000_500, 0], &[0, 3_037_000_500]]).inverse_unimodular();
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    /// det(A·B) == det(A)·det(B) for small random matrices
    /// (seeded-loop property test, 256 cases).
    #[test]
    fn det_is_multiplicative() {
        let mut g = SplitMix64::new(0x3a71);
        for _ in 0..256 {
            let a: Vec<i64> = (0..9).map(|_| g.range_i64(-3, 4)).collect();
            let b: Vec<i64> = (0..9).map(|_| g.range_i64(-3, 4)).collect();
            let ma = IMat {
                rows: 3,
                cols: 3,
                data: a,
            };
            let mb = IMat {
                rows: 3,
                cols: 3,
                data: b,
            };
            assert_eq!(ma.mul(&mb).det(), ma.det() * mb.det(), "{ma:?} {mb:?}");
        }
    }

    /// Candidate transforms are all unimodular, hence invertible on
    /// the lattice. Exhaustive over the dimensions the compiler uses.
    #[test]
    fn candidates_unimodular() {
        for n in 1usize..4 {
            for t in candidate_transforms(n, 2) {
                assert!(t.is_unimodular(), "{t:?}");
            }
        }
    }

    /// lex_cmp is a total order consistent with lex_positive on
    /// differences (seeded-loop property test, 256 cases).
    #[test]
    fn lex_cmp_consistent() {
        let mut g = SplitMix64::new(0x3a72);
        for _ in 0..256 {
            let a: Vec<i64> = (0..4).map(|_| g.range_i64(-5, 6)).collect();
            let b: Vec<i64> = (0..4).map(|_| g.range_i64(-5, 6)).collect();
            let diff: Vec<i64> = a.iter().zip(b.iter()).map(|(x, y)| x - y).collect();
            match lex_cmp(&a, &b) {
                std::cmp::Ordering::Greater => assert!(lex_positive(&diff), "{a:?} {b:?}"),
                std::cmp::Ordering::Less => {
                    let neg: Vec<i64> = diff.iter().map(|x| -x).collect();
                    assert!(lex_positive(&neg), "{a:?} {b:?}");
                }
                std::cmp::Ordering::Equal => assert!(diff.iter().all(|&x| x == 0)),
            }
        }
    }
}
