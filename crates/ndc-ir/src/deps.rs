//! Dependence analysis: distance vectors and the statement dependence
//! graph (`extract_use-use_chains` / `dependency_analysis` of
//! Algorithm 1).
//!
//! For two affine references `r1 = X(F1·I + f1)` and `r2 = X(F2·I + f2)`
//! in the same nest, a dependence exists between iterations `I1`, `I2`
//! when `F1·I1 + f1 = F2·I2 + f2`. When `F1 = F2 = F` and `F` is square
//! and non-singular, the distance `d = I2 − I1` is the unique solution
//! of `F·d = f1 − f2` (constant distance). Non-matching or singular
//! coefficient matrices yield an *unknown* distance, treated
//! conservatively (blocks transformation).

use crate::matrix::{lex_positive, IMat, IVec};
use crate::program::{ArrayId, LoopNest, StmtId};

/// Classification of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceKind {
    /// Write → read (true/flow dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
    /// Read → read: not a real dependence, but exactly the *reuse*
    /// Algorithm 2 inspects ("is the operand reused beyond the
    /// computation?").
    Input,
}

impl DependenceKind {
    /// Does this edge constrain legality of reordering?
    pub fn constrains(&self) -> bool {
        !matches!(self, DependenceKind::Input)
    }
}

/// A dependence distance: constant vector or statically unknown.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DistanceVector {
    Constant(IVec),
    Unknown,
}

impl DistanceVector {
    pub fn as_constant(&self) -> Option<&IVec> {
        match self {
            DistanceVector::Constant(v) => Some(v),
            DistanceVector::Unknown => None,
        }
    }
}

/// One dependence edge between two statements of a nest.
#[derive(Debug, Clone, PartialEq)]
pub struct DependenceEdge {
    pub src: StmtId,
    pub dst: StmtId,
    /// Slot of the source reference in `src`'s `array_refs()` order
    /// (reads then write) — lets a consumer recover the exact
    /// access function behind this edge, e.g. to sharpen an `Unknown`
    /// distance with a GCD/Banerjee test.
    pub src_slot: u8,
    /// Operand slot of the sink reference (0 = `a`, 1 = `b`, 2 = the
    /// written destination) — which access of `dst` depends on `src`.
    pub dst_slot: u8,
    /// The array both references touch.
    pub array: ArrayId,
    pub kind: DependenceKind,
    pub distance: DistanceVector,
}

/// The dependence graph of one loop nest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DependenceGraph {
    pub edges: Vec<DependenceEdge>,
    /// True when any reference pair could not be analyzed precisely
    /// (unknown distance on a constraining edge).
    pub has_unknown: bool,
}

impl DependenceGraph {
    /// Analyze one loop nest.
    pub fn analyze(nest: &LoopNest) -> Self {
        let mut g = DependenceGraph::default();
        let stmts = &nest.body;
        for (pi, s1) in stmts.iter().enumerate() {
            for (pj, s2) in stmts.iter().enumerate() {
                for (slot1, (r1, w1)) in s1.array_refs().into_iter().enumerate() {
                    for (slot2, (r2, w2)) in s2.array_refs().into_iter().enumerate() {
                        if r1.array != r2.array {
                            continue;
                        }
                        let kind = match (w1, w2) {
                            (true, false) => DependenceKind::Flow,
                            (false, true) => DependenceKind::Anti,
                            (true, true) => DependenceKind::Output,
                            (false, false) => DependenceKind::Input,
                        };
                        // Self-pairs of the same reference occurrence:
                        // a read against itself is Input (never
                        // constrains), and an *injective* write against
                        // itself touches each element once. But a
                        // rank-deficient write subscript (e.g. C[i,j]
                        // written inside an i,j,k nest) stores to the
                        // same element from every iteration along the
                        // kernel of F — an output dependence carried by
                        // the unused dimensions, and reordering them
                        // changes which write lands last.
                        let same_occurrence = pi == pj && std::ptr::eq(r1, r2);
                        if same_occurrence {
                            if w1 {
                                for edge in self_output_edges(r1, s1.id, slot1 as u8, nest.depth())
                                {
                                    if matches!(edge.distance, DistanceVector::Unknown) {
                                        g.has_unknown = true;
                                    }
                                    g.edges.push(edge);
                                }
                            }
                            continue;
                        }
                        if let Some(edge) = dependence_between(
                            r1,
                            r2,
                            s1.id,
                            s2.id,
                            pi,
                            pj,
                            slot1 as u8,
                            slot2 as u8,
                            kind,
                            nest.depth(),
                        ) {
                            if matches!(edge.distance, DistanceVector::Unknown)
                                && edge.kind.constrains()
                            {
                                g.has_unknown = true;
                            }
                            g.edges.push(edge);
                        }
                    }
                }
            }
        }
        g
    }

    /// The constant distance vectors of all constraining edges — the
    /// columns of the dependence matrix `D` used for `T·D` legality.
    pub fn distance_vectors(&self) -> Vec<IVec> {
        self.edges
            .iter()
            .filter(|e| e.kind.constrains())
            .filter_map(|e| e.distance.as_constant().cloned())
            .collect()
    }

    /// Whether a transformation `t` is legal for this nest: no unknown
    /// constraining distances, and all constant constraining distances
    /// stay lexicographically positive under `t`.
    pub fn transformation_legal(&self, t: &IMat) -> bool {
        if self.has_unknown {
            return false;
        }
        crate::matrix::transformation_legal(t, &self.distance_vectors())
    }

    /// Does the value read by `stmt`'s operand reference get *reused*
    /// (read again, by any statement) at a lexicographically later
    /// iteration? This is Algorithm 2's check for the existence of
    /// `I_m` with `I_e > I_m > I_c` and `f(I_x) = p(I_m)` — with
    /// constant distances, such an `I_m` exists iff some Input/Flow
    /// edge out of this reference has a lex-positive distance (or an
    /// unknown one, handled conservatively as "reused").
    pub fn has_future_reuse(&self, stmt: StmtId) -> bool {
        self.edges.iter().any(|e| {
            e.src == stmt
                && matches!(e.kind, DependenceKind::Input | DependenceKind::Anti)
                && match &e.distance {
                    DistanceVector::Constant(d) => lex_positive(d),
                    DistanceVector::Unknown => true,
                }
        })
    }

    /// Edges out of a statement.
    pub fn edges_from(&self, s: StmtId) -> impl Iterator<Item = &DependenceEdge> {
        self.edges.iter().filter(move |e| e.src == s)
    }
}

/// Compute the dependence (if any) from `r1` (in `s1` at body position
/// `p1`) to `r2` (in `s2` at `p2`).
#[allow(clippy::too_many_arguments)]
fn dependence_between(
    r1: &crate::program::ArrayRef,
    r2: &crate::program::ArrayRef,
    s1: StmtId,
    s2: StmtId,
    p1: usize,
    p2: usize,
    src_slot: u8,
    dst_slot: u8,
    kind: DependenceKind,
    depth: usize,
) -> Option<DependenceEdge> {
    let edge = |distance| DependenceEdge {
        src: s1,
        dst: s2,
        src_slot,
        dst_slot,
        array: r1.array,
        kind,
        distance,
    };
    if r1.coeffs != r2.coeffs {
        // Different access matrices (e.g. X[i][j] vs X[j][i]): distances
        // vary per iteration. Conservative.
        return Some(edge(DistanceVector::Unknown));
    }
    // F·(I2 - I1) = f1 - f2  =>  solve F·d = c.
    let c: IVec = r1
        .offsets
        .iter()
        .zip(r2.offsets.iter())
        .map(|(a, b)| a - b)
        .collect();
    match solve_square(&r1.coeffs, &c, depth) {
        Solve::Unique(d) => {
            // Orientation: the dependence runs from the earlier access
            // to the later one. A lex-positive d means s2's iteration
            // trails s1's by d (source = s1). A lex-negative d means the
            // roles flip; we only record the forward direction once (the
            // symmetric pair enumeration visits (r2, r1) too).
            if lex_positive(&d) {
                Some(edge(DistanceVector::Constant(d)))
            } else if d.iter().all(|&x| x == 0) {
                // Loop-independent: ordered by body position.
                if p1 < p2 || (p1 == p2 && kind.constrains()) {
                    Some(edge(DistanceVector::Constant(d)))
                } else {
                    None
                }
            } else {
                None
            }
        }
        Solve::None => None,
        Solve::Many => Some(edge(DistanceVector::Unknown)),
    }
}

/// Output self-dependences of one write occurrence: the distances along
/// which the access revisits the same element, i.e. the integer kernel
/// of `F`. Injective accesses yield none. When the kernel is exactly
/// the span of `F`'s zero columns (the subscript simply ignores those
/// iterators, the common case) each basis vector becomes a precise
/// constant distance `e_j`; any other deficiency is conservatively one
/// `Unknown` edge, which blocks transformation of the nest.
fn self_output_edges(
    r: &crate::program::ArrayRef,
    s: StmtId,
    slot: u8,
    depth: usize,
) -> Vec<DependenceEdge> {
    let f = &r.coeffs;
    let zero = vec![0i64; f.rows];
    if matches!(solve_square(f, &zero, depth), Solve::Unique(_)) {
        // Square non-singular: F·d = 0 only at d = 0 — injective.
        return Vec::new();
    }
    let edge = |distance| DependenceEdge {
        src: s,
        dst: s,
        src_slot: slot,
        dst_slot: slot,
        array: r.array,
        kind: DependenceKind::Output,
        distance,
    };
    let zero_cols: Vec<usize> = (0..f.cols)
        .filter(|&j| (0..f.rows).all(|i| f[(i, j)] == 0))
        .collect();
    if !zero_cols.is_empty() && f.cols - zero_cols.len() == f.rows {
        // Dropping the zero columns leaves a square system; if it is
        // non-singular the kernel is exactly span{e_j : column j zero}.
        let kept: Vec<usize> = (0..f.cols).filter(|j| !zero_cols.contains(j)).collect();
        let mut sub = IMat::zeros(f.rows, kept.len());
        for (cj, &j) in kept.iter().enumerate() {
            for i in 0..f.rows {
                sub[(i, cj)] = f[(i, j)];
            }
        }
        if sub.det() != 0 {
            return zero_cols
                .iter()
                .map(|&j| {
                    let mut d = vec![0i64; depth];
                    d[j] = 1;
                    edge(DistanceVector::Constant(d))
                })
                .collect();
        }
    }
    vec![edge(DistanceVector::Unknown)]
}

enum Solve {
    Unique(IVec),
    None,
    Many,
}

/// Solve `F·d = c` for integer `d` where `F` is `m×n`. Exact for square
/// non-singular `F` (Cramer with exact integer division); `m < n` or
/// singular square systems report `Many` (conservative); inconsistent
/// systems report `None` (no dependence).
fn solve_square(f: &IMat, c: &IVec, depth: usize) -> Solve {
    if f.rows != f.cols || f.rows != depth {
        // Rank-deficient access (e.g. 1-D access in a 2-D nest):
        // distances underdetermined.
        return Solve::Many;
    }
    let det = f.det();
    if det == 0 {
        return Solve::Many;
    }
    let n = f.rows;
    let mut d = vec![0i64; n];
    for j in 0..n {
        // Cramer: replace column j with c.
        let mut fj = f.clone();
        for i in 0..n {
            fj[(i, j)] = c[i];
        }
        let dj = fj.det();
        if dj % det != 0 {
            // Non-integer solution: the accesses never touch the same
            // element.
            return Solve::None;
        }
        d[j] = dj / det;
    }
    Solve::Unique(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    /// Figure 10: X[i,j] = X[i-1, j+1] — flow dependence with distance
    /// (1, -1).
    fn fig10_nest() -> (Program, LoopNest) {
        let mut p = Program::new("fig10");
        let x = p.add_array(ArrayDecl::new("X", vec![16, 16], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 1])),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![1, 0], vec![16, 15], vec![s]);
        (p, nest)
    }

    #[test]
    fn fig10_distance_is_one_minus_one() {
        let (_, nest) = fig10_nest();
        let g = DependenceGraph::analyze(&nest);
        let dists = g.distance_vectors();
        assert!(dists.contains(&vec![1, -1]), "expected (1,-1) in {dists:?}");
        assert!(!g.has_unknown);
    }

    #[test]
    fn fig10_legality() {
        let (_, nest) = fig10_nest();
        let g = DependenceGraph::analyze(&nest);
        assert!(g.transformation_legal(&IMat::identity(2)));
        // Interchange alone is illegal; skew-then-interchange is legal.
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert!(!g.transformation_legal(&swap));
        let skew = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        assert!(g.transformation_legal(&swap.mul(&skew)));
    }

    #[test]
    fn independent_statements_have_no_constraining_edges() {
        let mut p = Program::new("ind");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![8], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.distance_vectors().is_empty());
        assert!(!g.has_unknown);
    }

    #[test]
    fn reads_of_shifted_elements_are_input_reuse() {
        // X[i] and X[i-2] read in the same statement: the element read
        // at iteration i is re-read at i+2 → future reuse.
        let mut p = Program::new("reuse");
        let x = p.add_array(ArrayDecl::new("X", vec![32], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![32], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![-2])),
            1,
        );
        let nest = LoopNest::new(0, vec![2], vec![32], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.has_future_reuse(StmtId(0)));
    }

    #[test]
    fn streaming_access_has_no_future_reuse() {
        let mut p = Program::new("stream");
        let x = p.add_array(ArrayDecl::new("X", vec![32], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![32], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![32], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![32], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(!g.has_future_reuse(StmtId(0)));
    }

    #[test]
    fn transposed_access_is_unknown() {
        let mut p = Program::new("transpose");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let transposed = ArrayRef::affine(x, IMat::from_rows(&[&[0, 1], &[1, 0]]), vec![0, 0]);
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(transposed),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.has_unknown);
        assert!(!g.transformation_legal(&IMat::identity(2)));
    }

    #[test]
    fn loop_independent_dependence_orders_statements() {
        // S0 writes Z[i], S1 reads Z[i]: flow dependence with zero
        // distance, ordered by body position.
        let mut p = Program::new("li");
        let z = p.add_array(ArrayDecl::new("Z", vec![8], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Const(1.0),
            Ref::Const(2.0),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Const(0.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![8], vec![s0, s1]);
        let g = DependenceGraph::analyze(&nest);
        let zero_flow: Vec<_> = g
            .edges
            .iter()
            .filter(|e| {
                e.kind == DependenceKind::Flow && e.distance == DistanceVector::Constant(vec![0])
            })
            .collect();
        assert_eq!(zero_flow.len(), 1);
        assert_eq!(zero_flow[0].src, StmtId(0));
        assert_eq!(zero_flow[0].dst, StmtId(1));
    }

    #[test]
    fn negative_stride_distance_is_exact() {
        // X[-i] written, X[-i-1] read: the element written at iteration
        // i is read back at i+1, so the flow distance is +1 even though
        // the stride is negative (Cramer divides by det = -1 exactly).
        let mut p = Program::new("negstride");
        let x = p.add_array(ArrayDecl::new("X", vec![32], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[-1]]), vec![31]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[-1]]), vec![30]);
        let s = Stmt::binary(0, w, Op::Add, Ref::Array(r), Ref::Const(1.0), 1);
        let nest = LoopNest::new(0, vec![0], vec![31], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(!g.has_unknown);
        assert!(g.distance_vectors().contains(&vec![1]));
    }

    #[test]
    fn negative_stride_disjoint_offsets_no_dependence() {
        // X[-2i] written, X[-2i+1] read: -2·d = ±1 has no integer
        // solution, so no edge either direction.
        let mut p = Program::new("negdisjoint");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
        let even = ArrayRef::affine(x, IMat::from_rows(&[&[-2]]), vec![62]);
        let odd = ArrayRef::affine(x, IMat::from_rows(&[&[-2]]), vec![63]);
        let s = Stmt::binary(0, even, Op::Add, Ref::Array(odd), Ref::Const(1.0), 1);
        let nest = LoopNest::new(0, vec![0], vec![16], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        let cross: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind != DependenceKind::Output)
            .collect();
        assert!(cross.is_empty(), "unexpected edges: {cross:?}");
        assert!(!g.has_unknown);
    }

    #[test]
    fn coupled_subscript_is_unknown() {
        // X[i+j] in a 2-D nest: the 1×2 access matrix is rank-deficient,
        // so many (i, j) pairs alias and the distance is unknown. The
        // edge still records which references collided so a sharper
        // test (ndc-lint's GCD/Banerjee refinement) can revisit it.
        let mut p = Program::new("coupled");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let diag = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let s = Stmt::binary(
            0,
            diag.clone(),
            Op::Add,
            Ref::Array(diag),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.has_unknown);
        let unknown = g
            .edges
            .iter()
            .find(|e| e.distance == DistanceVector::Unknown && e.kind.constrains())
            .expect("coupled subscript should produce an unknown edge");
        assert_eq!(unknown.array, ArrayId(0));
        // Slots index array_refs() order (reads first, write last), so a
        // consumer can recover both access functions behind the edge.
        let src_stmt = &nest.body[0];
        let refs = src_stmt.array_refs();
        assert!((unknown.src_slot as usize) < refs.len());
        assert!((unknown.dst_slot as usize) < refs.len());
    }

    #[test]
    fn single_trip_loop_records_conservative_distance() {
        // X[i] = X[i-1] over a single-iteration loop: the subscript
        // equation alone says d = 1, even though no iteration pair can
        // realize it (the loop has one trip). Dependence analysis is
        // deliberately bounds-blind here; the extent-aware refutation
        // lives in ndc-lint's refinement pass.
        let mut p = Program::new("onetrip");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![-1])),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![3], vec![4], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.distance_vectors().contains(&vec![1]));
    }

    /// Zero-trip nests are legal (the fuzz generator emits them) and
    /// analysis must stay well-defined over an empty iteration space:
    /// subscript equations may still admit solutions, but the nest runs
    /// no iterations, so any recorded edges are harmless conservatism.
    #[test]
    fn zero_trip_nest_analyzes_without_panicking() {
        let mut p = Program::new("zerotrip");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![-1])),
            Ref::Const(2.0),
            1,
        );
        let nest = LoopNest::new(0, vec![4], vec![4], vec![s]);
        assert!(nest.is_empty());
        let g = DependenceGraph::analyze(&nest);
        assert!(!g.has_unknown);
    }

    #[test]
    fn disjoint_offsets_no_dependence() {
        // X[2i] written, X[2i+1] read: GCD says never equal.
        let mut p = Program::new("gcd");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
        let even = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![0]);
        let odd = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![1]);
        let s = Stmt::binary(0, even, Op::Add, Ref::Array(odd), Ref::Const(1.0), 1);
        let nest = LoopNest::new(0, vec![0], vec![16], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        // The write(2i) / read(2i+1) pair admits no integer solution.
        let cross: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind != DependenceKind::Output)
            .collect();
        assert!(cross.is_empty(), "unexpected edges: {cross:?}");
    }

    /// C[i,j] = A[i,k] + B[k,j] (no accumulation): every k writes the
    /// same C element, so the last k must stay last — an output
    /// self-dependence with distance (0,0,1). Reversing or hoisting k
    /// is illegal; reordering i and j stays legal. Found by fuzzing
    /// (seed 0xf00f): the analysis used to skip a write's self-pair as
    /// "trivial" and lint certified k-reversal, which the differential
    /// oracle refuted.
    #[test]
    fn rank_deficient_write_carries_output_dependence() {
        let mut p = Program::new("lastwrite");
        let a = p.add_array(ArrayDecl::new("A", vec![8, 8], 8));
        let b = p.add_array(ArrayDecl::new("B", vec![8, 8], 8));
        let c = p.add_array(ArrayDecl::new("C", vec![8, 8], 8));
        let cw = ArrayRef::affine(c, IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]), vec![0, 0]);
        let ar = ArrayRef::affine(a, IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]), vec![0, 0]);
        let br = ArrayRef::affine(b, IMat::from_rows(&[&[0, 0, 1], &[0, 1, 0]]), vec![0, 0]);
        let s = Stmt::binary(0, cw, Op::Add, Ref::Array(ar), Ref::Array(br), 1);
        let nest = LoopNest::new(0, vec![0, 0, 0], vec![8, 8, 8], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(!g.has_unknown, "kernel is a plain zero column: {g:?}");
        assert!(g.distance_vectors().contains(&vec![0, 0, 1]), "{g:?}");
        // k-reversal breaks the last-write order...
        let rev_k = IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, -1]]);
        assert!(!g.transformation_legal(&rev_k));
        // ...while the i/j interchange leaves it intact.
        let swap_ij = IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]);
        assert!(g.transformation_legal(&swap_ij));
    }

    /// An injective write (identity subscript) has no self output
    /// dependence: each iteration touches a distinct element.
    #[test]
    fn injective_write_has_no_self_output_edge() {
        let mut p = Program::new("inj");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Const(1.0),
            Ref::Const(2.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.edges.is_empty(), "{g:?}");
    }

    /// A scalar accumulator (all-zero subscript matrix) writes one
    /// element from every iteration; the kernel is the whole space, so
    /// the analysis must at least flag the nest untransformable.
    #[test]
    fn scalar_write_blocks_all_transforms() {
        let mut p = Program::new("accum");
        let s_arr = p.add_array(ArrayDecl::new("S", vec![1], 8));
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let sw = ArrayRef::affine(s_arr, IMat::zeros(1, 2), vec![0]);
        let s = Stmt::binary(
            0,
            sw,
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Const(0.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s]);
        let g = DependenceGraph::analyze(&nest);
        assert!(g.has_unknown);
        let rev = IMat::from_rows(&[&[-1, 0], &[0, 1]]);
        assert!(!g.transformation_legal(&rev));
    }
}
