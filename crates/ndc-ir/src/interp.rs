//! Reference interpreter over `f64` arrays.
//!
//! Used as the semantics oracle: a compiler transformation is correct
//! iff interpreting the scheduled program (transformed iteration order)
//! produces bit-identical array contents to the original. Out-of-bounds
//! reads (e.g. a stencil's halo the workloads guard by construction)
//! evaluate to 0.0 so the oracle stays total.

use crate::matrix::lex_cmp;
use crate::program::{ArrayId, LoopNest, Program, Ref, Stmt};
use crate::schedule::Schedule;

/// Backing storage for a program's arrays.
#[derive(Debug, Clone)]
pub struct DataStore {
    arrays: Vec<Vec<f64>>,
    /// Out-of-bounds reads served as 0.0 (halo accesses). Interior
    /// mutability keeps `read(&self)` callers unchanged; the counter is
    /// observability, not semantics, so equality ignores it.
    oob_reads: std::cell::Cell<u64>,
}

/// Semantic equality: array contents only. The OOB-read counter is
/// deliberately excluded so differential-oracle comparisons are not
/// perturbed by how many halo reads each execution order performed.
impl PartialEq for DataStore {
    fn eq(&self, other: &DataStore) -> bool {
        self.arrays == other.arrays
    }
}

impl DataStore {
    /// Deterministic initial contents: element `k` of array `a` holds a
    /// small value derived from `(a, k)`. Seeded runs stay reproducible
    /// without any entropy source.
    pub fn init(prog: &Program) -> Self {
        let arrays = prog
            .arrays
            .iter()
            .enumerate()
            .map(|(ai, decl)| {
                (0..decl.elements())
                    .map(|k| {
                        // A cheap LCG-ish mix, kept strictly deterministic.
                        // Both multiplies must wrap: the array-index term
                        // alone exceeds u64 from the 13th array on.
                        let h = (k
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((ai as u64).wrapping_mul(1442695040888963407)))
                            >> 33;
                        1.0 + (h % 1000) as f64 / 250.0
                    })
                    .collect()
            })
            .collect();
        DataStore {
            arrays,
            oob_reads: std::cell::Cell::new(0),
        }
    }

    pub fn read(&self, prog: &Program, aref: &crate::program::ArrayRef, iter: &[i64]) -> f64 {
        let idx = aref.index_at(iter);
        match prog.array(aref.array).linearize(&idx) {
            Some(l) => self.arrays[aref.array.0 as usize][l as usize],
            None => {
                self.oob_reads.set(self.oob_reads.get() + 1);
                0.0
            }
        }
    }

    /// How many reads fell outside their array and evaluated to 0.0.
    /// Nonzero is expected only for stencil-style workloads with halo
    /// reads; anywhere else it flags a bad subscript.
    pub fn oob_reads(&self) -> u64 {
        self.oob_reads.get()
    }

    pub fn write(
        &mut self,
        prog: &Program,
        aref: &crate::program::ArrayRef,
        iter: &[i64],
        value: f64,
    ) {
        let idx = aref.index_at(iter);
        if let Some(l) = prog.array(aref.array).linearize(&idx) {
            self.arrays[aref.array.0 as usize][l as usize] = value;
        }
    }

    pub fn array(&self, id: ArrayId) -> &[f64] {
        &self.arrays[id.0 as usize]
    }

    /// A digest of all array contents for cheap equality assertions.
    pub fn checksum(&self) -> f64 {
        self.arrays
            .iter()
            .flat_map(|a| a.iter())
            .enumerate()
            .map(|(i, &v)| v * (1.0 + (i % 7) as f64))
            .sum()
    }
}

/// Executes programs against a [`DataStore`].
pub struct Interpreter<'p> {
    prog: &'p Program,
}

impl<'p> Interpreter<'p> {
    pub fn new(prog: &'p Program) -> Self {
        Interpreter { prog }
    }

    fn eval_ref(&self, store: &DataStore, r: &Ref, iter: &[i64]) -> f64 {
        match r {
            Ref::Array(a) => store.read(self.prog, a, iter),
            Ref::Const(c) => *c,
        }
    }

    fn exec_stmt(&self, store: &mut DataStore, s: &Stmt, iter: &[i64]) {
        let a = self.eval_ref(store, &s.a, iter);
        let value = match (s.op, &s.b) {
            (Some(op), Some(b)) => op.apply(a, self.eval_ref(store, b, iter)),
            _ => a,
        };
        store.write(self.prog, &s.dst, iter, value);
    }

    /// Execute the whole program in original order.
    pub fn run(&self, store: &mut DataStore) {
        for nest in &self.prog.nests {
            for point in nest.iter_points() {
                for s in &nest.body {
                    self.exec_stmt(store, s, &point);
                }
            }
        }
    }

    /// Execute under a schedule: each nest's iteration points are
    /// visited in the order of their transformed images `T·I`
    /// (lexicographic), and statement order overrides apply. This is the
    /// semantics of the transformed loop nest without needing explicit
    /// bound recomputation.
    ///
    /// Fused chains execute with *gather-at-head* semantics, mirroring
    /// the hardware's single multi-op packet: when the chain head runs,
    /// every tail member's gathered operand is read immediately
    /// (snapshot); each tail then combines the forwarded chain value
    /// with its snapshot at its own position in the statement order.
    /// For a legal fusion (no intervening statement writes a gathered
    /// operand) this is identical to unfused execution; for an illegal
    /// one it genuinely diverges — which is exactly what gives the
    /// differential oracle its discriminating power.
    pub fn run_scheduled(&self, store: &mut DataStore, schedule: &Schedule) {
        for nest in &self.prog.nests {
            let points = scheduled_points(nest, schedule);
            let order = schedule.stmt_order_for(nest);
            let chains: Vec<FusedChain> = schedule
                .fused_for(nest.id)
                .map(|plan| FusedChain::build(nest, plan))
                .collect();
            if chains.is_empty() {
                for point in &points {
                    for &pos in &order {
                        self.exec_stmt(store, &nest.body[pos], point);
                    }
                }
                continue;
            }
            // Body position -> (chain index, member index).
            let mut member_at: std::collections::HashMap<usize, (usize, usize)> =
                std::collections::HashMap::new();
            for (ci, c) in chains.iter().enumerate() {
                for (mi, &pos) in c.positions.iter().enumerate() {
                    member_at.insert(pos, (ci, mi));
                }
            }
            for point in &points {
                let mut pending: Vec<Option<ChainState>> =
                    (0..chains.len()).map(|_| None).collect();
                for &pos in &order {
                    let s = &nest.body[pos];
                    match member_at.get(&pos) {
                        Some(&(ci, 0)) => {
                            // Chain head: gather the whole union
                            // footprint now, execute op 0, forward.
                            let chain = &chains[ci];
                            let a = self.eval_ref(store, &s.a, point);
                            let b =
                                self.eval_ref(store, s.b.as_ref().expect("head is binary"), point);
                            let snapshots = chain
                                .tails
                                .iter()
                                .map(|t| store.read(self.prog, &t.gathered, point))
                                .collect();
                            let v = s.op.expect("head is binary").apply(a, b);
                            store.write(self.prog, &s.dst, point, v);
                            pending[ci] = Some(ChainState {
                                snapshots,
                                forwarded: v,
                            });
                        }
                        Some(&(ci, mi)) => {
                            let chain = &chains[ci];
                            // A statement order that runs a tail before
                            // its head has no packet to consume from;
                            // fall back to plain execution.
                            let Some(state) = pending[ci].as_mut() else {
                                self.exec_stmt(store, s, point);
                                continue;
                            };
                            let tail = &chain.tails[mi - 1];
                            let g = state.snapshots[mi - 1];
                            let op = s.op.expect("tail is binary");
                            let v = if tail.link_is_a {
                                op.apply(state.forwarded, g)
                            } else {
                                op.apply(g, state.forwarded)
                            };
                            store.write(self.prog, &s.dst, point, v);
                            state.forwarded = v;
                        }
                        None => self.exec_stmt(store, s, point),
                    }
                }
            }
        }
    }
}

/// Precomputed structure of one fused chain inside a nest.
struct FusedChain {
    /// Body positions of the members, in chain order.
    positions: Vec<usize>,
    tails: Vec<TailInfo>,
}

struct TailInfo {
    /// Operand `a` is the forwarded link (else `b` is).
    link_is_a: bool,
    /// The member's single gathered operand.
    gathered: crate::program::ArrayRef,
}

/// Per-point execution state of a fused chain.
struct ChainState {
    /// Tail gathered-operand values, read at head time.
    snapshots: Vec<f64>,
    /// Running chain value forwarded to the next member.
    forwarded: f64,
}

impl FusedChain {
    fn build(nest: &LoopNest, plan: &crate::schedule::FusedPrecomputePlan) -> FusedChain {
        let positions: Vec<usize> = plan
            .stmts
            .iter()
            .map(|id| nest.stmt_pos(*id).expect("validated plan"))
            .collect();
        let mut tails = Vec::new();
        let mut prev_dst = &nest.stmt(plan.stmts[0]).expect("validated plan").dst;
        for id in &plan.stmts[1..] {
            let s = nest.stmt(*id).expect("validated plan");
            let (link_is_a, gathered) =
                crate::schedule::chain_operands(s, prev_dst).expect("validated plan");
            tails.push(TailInfo {
                link_is_a,
                gathered: gathered.clone(),
            });
            prev_dst = &s.dst;
        }
        FusedChain { positions, tails }
    }
}

/// A nest's iteration points in scheduled (possibly transformed)
/// execution order.
pub fn scheduled_points(nest: &LoopNest, schedule: &Schedule) -> Vec<crate::matrix::IVec> {
    let mut points: Vec<crate::matrix::IVec> = nest.iter_points().collect();
    if let Some(t) = schedule.transforms.get(&nest.id) {
        points.sort_by(|a, b| lex_cmp(&t.mul_vec(a), &t.mul_vec(b)));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::IMat;
    use crate::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    /// X[i][j] = X[i][j] + Y[i][j] over an 8x8 space.
    fn add_prog() -> Program {
        let mut p = Program::new("add");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8, 8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(y, 2, vec![0, 0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s]));
        p.assign_layout(0, 64);
        p
    }

    #[test]
    fn deterministic_init() {
        let p = add_prog();
        let a = DataStore::init(&p);
        let b = DataStore::init(&p);
        assert_eq!(a, b);
        assert!(a.checksum() != 0.0);
    }

    #[test]
    fn elementwise_add_runs() {
        let p = add_prog();
        let mut store = DataStore::init(&p);
        let before_x0 = store.array(ArrayId(0))[0];
        let y0 = store.array(ArrayId(1))[0];
        Interpreter::new(&p).run(&mut store);
        assert_eq!(store.array(ArrayId(0))[0], before_x0 + y0);
    }

    #[test]
    fn identity_schedule_preserves_results() {
        let p = add_prog();
        let mut a = DataStore::init(&p);
        let mut b = DataStore::init(&p);
        Interpreter::new(&p).run(&mut a);
        Interpreter::new(&p).run_scheduled(&mut b, &Schedule::default());
        assert_eq!(a, b);
    }

    #[test]
    fn interchange_preserves_independent_nest() {
        let p = add_prog();
        let mut sched = Schedule::default();
        sched.transforms.insert(
            crate::program::NestId(0),
            IMat::from_rows(&[&[0, 1], &[1, 0]]),
        );
        let mut a = DataStore::init(&p);
        let mut b = DataStore::init(&p);
        Interpreter::new(&p).run(&mut a);
        Interpreter::new(&p).run_scheduled(&mut b, &sched);
        assert_eq!(a, b);
    }

    /// A nest with a (1, -1) flow dependence (Figure 10):
    /// X[i][j] = X[i-1][j+1] + Y[i][j]. Reversing the outer loop
    /// violates the dependence and must change results — demonstrating
    /// the interpreter really is order-sensitive (so it can catch
    /// illegal transformations).
    #[test]
    fn illegal_reversal_changes_results() {
        let mut p = Program::new("dep");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8, 8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 1])),
            Ref::Array(ArrayRef::identity(y, 2, vec![0, 0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![1, 0], vec![8, 7], vec![s]));
        p.assign_layout(0, 64);

        let mut sched = Schedule::default();
        sched.transforms.insert(
            crate::program::NestId(0),
            IMat::from_rows(&[&[-1, 0], &[0, 1]]),
        );
        let mut a = DataStore::init(&p);
        let mut b = DataStore::init(&p);
        Interpreter::new(&p).run(&mut a);
        Interpreter::new(&p).run_scheduled(&mut b, &sched);
        assert_ne!(a, b, "reversal should break the (1,-1) dependence");
    }

    #[test]
    fn out_of_bounds_reads_are_zero() {
        let mut p = Program::new("oob");
        let x = p.add_array(ArrayDecl::new("X", vec![4], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![-1])),
            Ref::Const(1.0),
            0,
        );
        p.nests.push(LoopNest::new(0, vec![0], vec![4], vec![s]));
        p.assign_layout(0, 64);
        let mut store = DataStore::init(&p);
        assert_eq!(store.oob_reads(), 0);
        Interpreter::new(&p).run(&mut store);
        // At i=0, X[-1] reads 0.0, so X[0] = 1.0.
        assert_eq!(store.array(x)[0], 1.0);
        // Exactly one halo read (i=0); the in-bounds reads don't count.
        assert_eq!(store.oob_reads(), 1);
    }

    /// Regression: `DataStore::init` used an unchecked `ai * constant`
    /// mix, which overflows u64 (debug-build panic) from the 13th array
    /// on. 16 arrays must initialize cleanly and deterministically.
    #[test]
    fn init_handles_many_arrays_without_overflow() {
        let mut p = Program::new("wide");
        for i in 0..16 {
            p.add_array(ArrayDecl::new(format!("A{i}"), vec![4], 8));
        }
        p.assign_layout(0, 64);
        let a = DataStore::init(&p);
        let b = DataStore::init(&p);
        assert_eq!(a, b);
        for i in 0..16 {
            assert_eq!(a.array(ArrayId(i)).len(), 4);
        }
    }

    /// Legal fusion (s0: Z = X + Y, s1: W = Z * X, no intervening
    /// writes): gather-at-head execution must be element-wise identical
    /// to the unfused original.
    #[test]
    fn legal_fused_chain_matches_unfused() {
        let mut p = Program::new("fuse-legal");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![16], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![16], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![16], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Mul,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![16], vec![s0, s1]));
        p.assign_layout(0, 64);

        let mut sched = Schedule::default();
        sched.fused.push(crate::schedule::FusedPrecomputePlan {
            nest: crate::program::NestId(0),
            stmts: vec![crate::program::StmtId(0), crate::program::StmtId(1)],
            lookahead: 2,
            stagger: 0,
            reshape_routes: false,
            target: ndc_types::NdcLocation::CacheController,
        });
        assert!(sched.validate(&p).is_ok());
        let mut a = DataStore::init(&p);
        let mut b = DataStore::init(&p);
        Interpreter::new(&p).run(&mut a);
        Interpreter::new(&p).run_scheduled(&mut b, &sched);
        assert_eq!(a, b);
    }

    /// Illegal fusion: an intervening statement rewrites the tail's
    /// gathered operand between head and tail. Gather-at-head snapshots
    /// the pre-write value, so the fused execution must diverge — this
    /// is what the differential oracle relies on to reject bad fusions.
    #[test]
    fn illegal_fused_chain_diverges() {
        let mut p = Program::new("fuse-illegal");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![16], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![16], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![16], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        // Intervening write: X = Y + Y clobbers the gathered operand.
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s2 = Stmt::binary(
            2,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Mul,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![16], vec![s0, s1, s2]));
        p.assign_layout(0, 64);

        let mut sched = Schedule::default();
        sched.fused.push(crate::schedule::FusedPrecomputePlan {
            nest: crate::program::NestId(0),
            stmts: vec![crate::program::StmtId(0), crate::program::StmtId(2)],
            lookahead: 2,
            stagger: 0,
            reshape_routes: false,
            target: ndc_types::NdcLocation::CacheController,
        });
        let mut a = DataStore::init(&p);
        let mut b = DataStore::init(&p);
        Interpreter::new(&p).run(&mut a);
        Interpreter::new(&p).run_scheduled(&mut b, &sched);
        assert_ne!(a, b, "stale gathered operand must change results");
    }

    /// The OOB counter is observability, not semantics: two stores with
    /// equal arrays but different halo-read histories compare equal.
    #[test]
    fn oob_counter_does_not_affect_equality() {
        let mut p = Program::new("oob");
        let x = p.add_array(ArrayDecl::new("X", vec![4], 8));
        p.assign_layout(0, 64);
        let a = DataStore::init(&p);
        let b = DataStore::init(&p);
        // Force an OOB read on `a` only.
        let halo = ArrayRef::identity(x, 1, vec![-1]);
        assert_eq!(a.read(&p, &halo, &[0]), 0.0);
        assert_eq!(a.oob_reads(), 1);
        assert_eq!(b.oob_reads(), 0);
        assert_eq!(a, b);
    }
}
