//! The compiler's output contract: what the NDC algorithms decided.
//!
//! A [`Schedule`] records, per nest, the loop transformation `T` (if
//! any), a statement-order override (statement-level code motion, the
//! scalar case of Figure 8), and the list of [`PrecomputePlan`]s — one
//! per computation the compiler chose to offload, carrying the
//! iteration lookahead Δ, the operand stagger, and whether the NoC
//! routes are reshaped for link overlap.

use crate::matrix::IMat;
use crate::program::{ArrayRef, LoopNest, NestId, Stmt, StmtId};
use ndc_types::{NdcLocation, MAX_FUSED_OPS};
use std::collections::HashMap;

/// Which operand-movement strategy produced a plan (Figure 8 b/c/d).
/// Retained for reporting; the lowered effect is captured by
/// `stagger`/`lookahead`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveStrategy {
    /// Keep `x`, move `y` toward it (Figure 8b).
    MoveY,
    /// Keep `y`, move `x` toward it (Figure 8c).
    MoveX,
    /// Move both accesses (Figure 8d).
    MoveBoth,
}

/// One offloaded computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputePlan {
    pub nest: NestId,
    /// The two-memory-operand statement being offloaded.
    pub stmt: StmtId,
    /// How many iterations ahead of the consumer the pre-compute
    /// issues (the compiler's translation of "cycles to move" into
    /// "program instructions", §5.2.1).
    pub lookahead: u32,
    /// Cycle stagger between the two operand requests (positive delays
    /// the second operand `b`).
    pub stagger: i32,
    /// Use reshaped (overlap-maximized) NoC routes for the operands.
    pub reshape_routes: bool,
    /// Which movement strategy was selected.
    pub strategy: MoveStrategy,
    /// The component the compiler sized the stagger for (first-choice
    /// target in the trial order). The hardware may still perform the
    /// computation earlier on the path if operands meet there.
    pub target: NdcLocation,
}

/// A fused chain of offloaded computations: 2..=[`MAX_FUSED_OPS`]
/// producer-consumer statements lowered as one multi-op precompute
/// packet (one gather, one exec, one feed).
///
/// `stmts[0]` is the chain head (a two-memory-operand computation);
/// each later member reads the previous member's destination as one
/// operand (the forwarded *link*) and gathers exactly one other array
/// operand.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedPrecomputePlan {
    pub nest: NestId,
    /// Chain members in body order (strictly increasing positions).
    pub stmts: Vec<StmtId>,
    /// Iteration lookahead of the packet relative to the chain head's
    /// consumer, as in [`PrecomputePlan::lookahead`].
    pub lookahead: u32,
    /// Stagger between the head's two operand requests.
    pub stagger: i32,
    pub reshape_routes: bool,
    /// The common NDC location the whole chain was costed for.
    pub target: NdcLocation,
}

/// Classify a chain-tail statement's operands against the previous
/// member's destination reference. Returns `(link_is_a, gathered)`
/// where `link_is_a` says operand `a` is the forwarded link (an array
/// reference structurally equal to `prev_dst`) and `gathered` is the
/// other operand, which must itself be an array reference. Returns
/// `None` when the statement is not binary, when neither operand links
/// to `prev_dst`, when both do (ambiguous forwarding), or when the
/// non-link operand is a constant.
pub fn chain_operands<'a>(stmt: &'a Stmt, prev_dst: &ArrayRef) -> Option<(bool, &'a ArrayRef)> {
    stmt.op?;
    let a = stmt.a.as_array();
    let b = stmt.b.as_ref()?.as_array();
    match (a == Some(prev_dst), b == Some(prev_dst)) {
        (true, false) => b.map(|g| (true, g)),
        (false, true) => a.map(|g| (false, g)),
        _ => None,
    }
}

/// Structural legality of a fused chain's shape inside one nest:
/// member count in 2..=[`MAX_FUSED_OPS`], strictly increasing body
/// positions, a two-memory-operand head, and every tail linking to its
/// predecessor's destination while gathering exactly one array operand
/// that is not any earlier member's destination (a gather at the chain
/// head would otherwise observe a stale pre-write value).
///
/// This checks chain *shape* only; dependence legality (no intervening
/// statement constrains the chain) is discharged separately by lint.
pub fn validate_chain_shape(nest: &LoopNest, stmts: &[StmtId]) -> Result<(), String> {
    if !(2..=MAX_FUSED_OPS).contains(&stmts.len()) {
        return Err(format!(
            "fused chain has {} members, expected 2..={MAX_FUSED_OPS}",
            stmts.len()
        ));
    }
    let mut last_pos: Option<usize> = None;
    for id in stmts {
        let pos = nest
            .stmt_pos(*id)
            .ok_or_else(|| format!("fused chain references unknown stmt {id:?}"))?;
        if let Some(prev) = last_pos {
            if pos <= prev {
                return Err(format!(
                    "fused chain positions not strictly increasing at stmt {id:?}"
                ));
            }
        }
        last_pos = Some(pos);
    }
    let head = nest.stmt(stmts[0]).expect("position resolved above");
    if head.memory_operand_pair().is_none() {
        return Err(format!(
            "fused chain head {:?} is not a two-memory-operand computation",
            stmts[0]
        ));
    }
    let mut dsts: Vec<&ArrayRef> = vec![&head.dst];
    for id in &stmts[1..] {
        let s = nest.stmt(*id).expect("position resolved above");
        let prev_dst = *dsts.last().expect("head dst pushed");
        let Some((_, gathered)) = chain_operands(s, prev_dst) else {
            return Err(format!(
                "fused chain member {id:?} does not forward its predecessor's \
                 destination as exactly one operand"
            ));
        };
        if dsts.contains(&gathered) {
            return Err(format!(
                "fused chain member {id:?} gathers an earlier member's destination \
                 (stale under gather-at-head semantics)"
            ));
        }
        dsts.push(&s.dst);
    }
    Ok(())
}

/// A complete compiler schedule for a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    /// Per-nest unimodular loop transformation.
    pub transforms: HashMap<NestId, IMat>,
    /// Per-nest statement-order override (body positions in execution
    /// order). Nests absent from the map run in original body order.
    pub stmt_order: HashMap<NestId, Vec<usize>>,
    /// Offload decisions.
    pub precomputes: Vec<PrecomputePlan>,
    /// Fused-chain offload decisions. A statement appears in at most
    /// one fused plan and never also in `precomputes`.
    pub fused: Vec<FusedPrecomputePlan>,
}

impl Schedule {
    /// Execution order of body positions for a nest (override or
    /// original order).
    pub fn stmt_order_for(&self, nest: &LoopNest) -> Vec<usize> {
        match self.stmt_order.get(&nest.id) {
            Some(o) => {
                debug_assert_eq!(o.len(), nest.body.len());
                o.clone()
            }
            None => (0..nest.body.len()).collect(),
        }
    }

    /// Plans targeting a given nest.
    pub fn plans_for(&self, nest: NestId) -> impl Iterator<Item = &PrecomputePlan> {
        self.precomputes.iter().filter(move |p| p.nest == nest)
    }

    /// Fused plans targeting a given nest.
    pub fn fused_for(&self, nest: NestId) -> impl Iterator<Item = &FusedPrecomputePlan> {
        self.fused.iter().filter(move |p| p.nest == nest)
    }

    /// Validate internal consistency against a program: plan statements
    /// exist and are two-memory-operand computations; statement orders
    /// are permutations.
    pub fn validate(&self, prog: &crate::program::Program) -> Result<(), String> {
        for plan in &self.precomputes {
            let nest = prog
                .nests
                .iter()
                .find(|n| n.id == plan.nest)
                .ok_or_else(|| format!("plan references unknown nest {:?}", plan.nest))?;
            let stmt = nest
                .stmt(plan.stmt)
                .ok_or_else(|| format!("plan references unknown stmt {:?}", plan.stmt))?;
            if stmt.memory_operand_pair().is_none() {
                return Err(format!(
                    "plan for {:?}/{:?} is not a two-memory-operand computation",
                    plan.nest, plan.stmt
                ));
            }
        }
        let mut fused_members = std::collections::HashSet::new();
        for plan in &self.fused {
            let nest = prog
                .nests
                .iter()
                .find(|n| n.id == plan.nest)
                .ok_or_else(|| format!("fused plan references unknown nest {:?}", plan.nest))?;
            validate_chain_shape(nest, &plan.stmts)?;
            for id in &plan.stmts {
                if !fused_members.insert((plan.nest, *id)) {
                    return Err(format!(
                        "stmt {:?}/{id:?} appears in two fused plans",
                        plan.nest
                    ));
                }
            }
        }
        for plan in &self.precomputes {
            if fused_members.contains(&(plan.nest, plan.stmt)) {
                return Err(format!(
                    "stmt {:?}/{:?} appears in both a fused plan and an individual plan",
                    plan.nest, plan.stmt
                ));
            }
        }
        for (nest_id, order) in &self.stmt_order {
            let nest = prog
                .nests
                .iter()
                .find(|n| n.id == *nest_id)
                .ok_or_else(|| format!("stmt_order references unknown nest {nest_id:?}"))?;
            let mut sorted = order.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..nest.body.len()).collect();
            if sorted != expect {
                return Err(format!(
                    "stmt_order for {nest_id:?} is not a permutation: {order:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    fn prog() -> Program {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::copy(1, ArrayRef::identity(x, 1, vec![0]), Ref::Const(0.0), 1);
        p.nests
            .push(LoopNest::new(0, vec![0], vec![8], vec![s0, s1]));
        p.assign_layout(0, 64);
        p
    }

    fn plan(stmt: u32) -> PrecomputePlan {
        PrecomputePlan {
            nest: NestId(0),
            stmt: StmtId(stmt),
            lookahead: 4,
            stagger: 10,
            reshape_routes: true,
            strategy: MoveStrategy::MoveY,
            target: NdcLocation::CacheController,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let p = prog();
        let mut s = Schedule::default();
        s.precomputes.push(plan(0));
        s.stmt_order.insert(NestId(0), vec![1, 0]);
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn plan_on_copy_stmt_rejected() {
        let p = prog();
        let mut s = Schedule::default();
        s.precomputes.push(plan(1));
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn plan_on_unknown_stmt_rejected() {
        let p = prog();
        let mut s = Schedule::default();
        s.precomputes.push(plan(9));
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn non_permutation_order_rejected() {
        let p = prog();
        let mut s = Schedule::default();
        s.stmt_order.insert(NestId(0), vec![0, 0]);
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn default_order_is_body_order() {
        let p = prog();
        let s = Schedule::default();
        assert_eq!(s.stmt_order_for(&p.nests[0]), vec![0, 1]);
    }

    /// s0: Z = X + Y, s1: W = Z + X — a legal two-member chain (link Z,
    /// gather X).
    fn chain_prog() -> Program {
        let mut p = Program::new("chain");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![8], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![8], vec![s0, s1]));
        p.assign_layout(0, 64);
        p
    }

    fn fused_plan(stmts: Vec<u32>) -> FusedPrecomputePlan {
        FusedPrecomputePlan {
            nest: NestId(0),
            stmts: stmts.into_iter().map(StmtId).collect(),
            lookahead: 4,
            stagger: 0,
            reshape_routes: false,
            target: NdcLocation::CacheController,
        }
    }

    #[test]
    fn valid_fused_plan_passes() {
        let p = chain_prog();
        let mut s = Schedule::default();
        s.fused.push(fused_plan(vec![0, 1]));
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn fused_plan_with_reversed_positions_rejected() {
        let p = chain_prog();
        let mut s = Schedule::default();
        s.fused.push(fused_plan(vec![1, 0]));
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn fused_member_cannot_also_have_individual_plan() {
        let p = chain_prog();
        let mut s = Schedule::default();
        s.fused.push(fused_plan(vec![0, 1]));
        s.precomputes.push(plan(0));
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn unlinked_pair_is_not_a_chain() {
        // s1 of prog() is a copy; also Z = X + Y twice has no link.
        let p = chain_prog();
        let mut s = Schedule::default();
        s.fused.push(fused_plan(vec![0, 0]));
        assert!(s.validate(&p).is_err(), "duplicate member must fail");
    }

    #[test]
    fn chain_operands_classifies_link_side() {
        let p = chain_prog();
        let nest = &p.nests[0];
        let head = nest.stmt(StmtId(0)).unwrap();
        let tail = nest.stmt(StmtId(1)).unwrap();
        let (link_is_a, gathered) = chain_operands(tail, &head.dst).unwrap();
        assert!(link_is_a, "Z is operand a of s1");
        assert_eq!(gathered, tail.b.as_ref().unwrap().as_array().unwrap());
        // A statement that doesn't read Z is not a chain member.
        assert!(chain_operands(head, &tail.dst).is_none());
    }
}
