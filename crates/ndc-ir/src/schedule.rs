//! The compiler's output contract: what the NDC algorithms decided.
//!
//! A [`Schedule`] records, per nest, the loop transformation `T` (if
//! any), a statement-order override (statement-level code motion, the
//! scalar case of Figure 8), and the list of [`PrecomputePlan`]s — one
//! per computation the compiler chose to offload, carrying the
//! iteration lookahead Δ, the operand stagger, and whether the NoC
//! routes are reshaped for link overlap.

use crate::matrix::IMat;
use crate::program::{LoopNest, NestId, StmtId};
use ndc_types::NdcLocation;
use std::collections::HashMap;

/// Which operand-movement strategy produced a plan (Figure 8 b/c/d).
/// Retained for reporting; the lowered effect is captured by
/// `stagger`/`lookahead`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveStrategy {
    /// Keep `x`, move `y` toward it (Figure 8b).
    MoveY,
    /// Keep `y`, move `x` toward it (Figure 8c).
    MoveX,
    /// Move both accesses (Figure 8d).
    MoveBoth,
}

/// One offloaded computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputePlan {
    pub nest: NestId,
    /// The two-memory-operand statement being offloaded.
    pub stmt: StmtId,
    /// How many iterations ahead of the consumer the pre-compute
    /// issues (the compiler's translation of "cycles to move" into
    /// "program instructions", §5.2.1).
    pub lookahead: u32,
    /// Cycle stagger between the two operand requests (positive delays
    /// the second operand `b`).
    pub stagger: i32,
    /// Use reshaped (overlap-maximized) NoC routes for the operands.
    pub reshape_routes: bool,
    /// Which movement strategy was selected.
    pub strategy: MoveStrategy,
    /// The component the compiler sized the stagger for (first-choice
    /// target in the trial order). The hardware may still perform the
    /// computation earlier on the path if operands meet there.
    pub target: NdcLocation,
}

/// A complete compiler schedule for a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    /// Per-nest unimodular loop transformation.
    pub transforms: HashMap<NestId, IMat>,
    /// Per-nest statement-order override (body positions in execution
    /// order). Nests absent from the map run in original body order.
    pub stmt_order: HashMap<NestId, Vec<usize>>,
    /// Offload decisions.
    pub precomputes: Vec<PrecomputePlan>,
}

impl Schedule {
    /// Execution order of body positions for a nest (override or
    /// original order).
    pub fn stmt_order_for(&self, nest: &LoopNest) -> Vec<usize> {
        match self.stmt_order.get(&nest.id) {
            Some(o) => {
                debug_assert_eq!(o.len(), nest.body.len());
                o.clone()
            }
            None => (0..nest.body.len()).collect(),
        }
    }

    /// Plans targeting a given nest.
    pub fn plans_for(&self, nest: NestId) -> impl Iterator<Item = &PrecomputePlan> {
        self.precomputes.iter().filter(move |p| p.nest == nest)
    }

    /// Validate internal consistency against a program: plan statements
    /// exist and are two-memory-operand computations; statement orders
    /// are permutations.
    pub fn validate(&self, prog: &crate::program::Program) -> Result<(), String> {
        for plan in &self.precomputes {
            let nest = prog
                .nests
                .iter()
                .find(|n| n.id == plan.nest)
                .ok_or_else(|| format!("plan references unknown nest {:?}", plan.nest))?;
            let stmt = nest
                .stmt(plan.stmt)
                .ok_or_else(|| format!("plan references unknown stmt {:?}", plan.stmt))?;
            if stmt.memory_operand_pair().is_none() {
                return Err(format!(
                    "plan for {:?}/{:?} is not a two-memory-operand computation",
                    plan.nest, plan.stmt
                ));
            }
        }
        for (nest_id, order) in &self.stmt_order {
            let nest = prog
                .nests
                .iter()
                .find(|n| n.id == *nest_id)
                .ok_or_else(|| format!("stmt_order references unknown nest {nest_id:?}"))?;
            let mut sorted = order.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..nest.body.len()).collect();
            if sorted != expect {
                return Err(format!(
                    "stmt_order for {nest_id:?} is not a permutation: {order:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    fn prog() -> Program {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::copy(1, ArrayRef::identity(x, 1, vec![0]), Ref::Const(0.0), 1);
        p.nests
            .push(LoopNest::new(0, vec![0], vec![8], vec![s0, s1]));
        p.assign_layout(0, 64);
        p
    }

    fn plan(stmt: u32) -> PrecomputePlan {
        PrecomputePlan {
            nest: NestId(0),
            stmt: StmtId(stmt),
            lookahead: 4,
            stagger: 10,
            reshape_routes: true,
            strategy: MoveStrategy::MoveY,
            target: NdcLocation::CacheController,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let p = prog();
        let mut s = Schedule::default();
        s.precomputes.push(plan(0));
        s.stmt_order.insert(NestId(0), vec![1, 0]);
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn plan_on_copy_stmt_rejected() {
        let p = prog();
        let mut s = Schedule::default();
        s.precomputes.push(plan(1));
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn plan_on_unknown_stmt_rejected() {
        let p = prog();
        let mut s = Schedule::default();
        s.precomputes.push(plan(9));
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn non_permutation_order_rejected() {
        let p = prog();
        let mut s = Schedule::default();
        s.stmt_order.insert(NestId(0), vec![0, 0]);
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn default_order_is_body_order() {
        let p = prog();
        let s = Schedule::default();
        assert_eq!(s.stmt_order_for(&p.nests[0]), vec![0, 1]);
    }
}
