//! The compiler intermediate representation for the NDC compiler.
//!
//! The paper's algorithms (§5.2.2, §5.3.1) operate on loop nests with
//! affine array accesses `X(F·I + f)`, dependence matrices `D`, and
//! unimodular loop transformations `T` whose legality requires every
//! column of `T·D` to be lexicographically positive. This crate provides
//! exactly that abstraction, built from scratch:
//!
//! * [`matrix`] — small integer vectors/matrices, unimodularity,
//!   lexicographic order, and candidate-`T` enumeration;
//! * [`program`] — arrays, affine references, statements, loop nests,
//!   and whole programs, plus the address layout that maps array
//!   elements to physical addresses (which in turn determines NUCA L2
//!   homes, memory controllers, and DRAM banks);
//! * [`interp`] — a reference interpreter over `f64` arrays, used by
//!   tests to prove transformations preserve semantics;
//! * [`deps`] — dependence analysis producing distance vectors and
//!   statement-level dependence graphs (the `D` of Algorithm 1);
//! * [`schedule`] — the compiler's output contract: per-nest loop
//!   transformations plus pre-compute insertions (which computation to
//!   offload, how many iterations ahead, with what operand stagger and
//!   route reshaping);
//! * [`mod@lower`] — lowering of a (scheduled) program to per-core
//!   instruction traces consumed by `ndc-sim`.

pub mod deps;
pub mod interp;
pub mod lower;
pub mod matrix;
pub mod program;
pub mod schedule;

pub use deps::{DependenceEdge, DependenceGraph, DependenceKind, DistanceVector};
pub use interp::{DataStore, Interpreter};
pub use lower::{
    lower, pc_of, try_lower, LowerError, LowerOptions, ROLE_MAIN, ROLE_PRECOMPUTE, ROLE_STORE,
};
pub use matrix::{IMat, IVec};
pub use program::{ArrayDecl, ArrayId, ArrayRef, LoopNest, NestId, Program, Ref, Stmt, StmtId};
pub use schedule::{
    chain_operands, validate_chain_shape, FusedPrecomputePlan, MoveStrategy, PrecomputePlan,
    Schedule,
};
