//! Lowering: from (scheduled) IR programs to per-core instruction
//! traces.
//!
//! The parallelization step (Figure 7) is modelled here: the nest's
//! `parallel_level` dimension is block-partitioned across the machine's
//! cores, one thread per core (Table 1). Within a thread, iteration
//! points execute in the schedule's order (transformed lexicographic
//! order under `T`), and each statement instance lowers to `Busy` +
//! `Load`/`Compute`/`Store` instructions with concrete physical
//! addresses.
//!
//! Pre-compute plans lower to [`InstKind::PreCompute`] instructions
//! issued `lookahead` iterations ahead of their consumer, which is the
//! trace-level realization of the S1'/S2'/S3' code motion of Figure 8:
//! the offload request (and its operand fetches, staggered by the plan's
//! `stagger`) starts early, and the original statement S3 becomes a
//! `Compute` that consumes the offloaded result.

use crate::interp::scheduled_points;
use crate::matrix::IVec;
use crate::program::{ArrayRef, LoopNest, NestId, Program, Ref, Stmt, StmtId};
use crate::schedule::{chain_operands, FusedPrecomputePlan, Schedule};
use ndc_types::{
    FxHashMap, Inst, InstKind, NodeId, Op, Operand, Pc, Trace, TraceProgram, MAX_FUSED_OPS,
};

/// A structural defect in the (program, schedule) pair that makes
/// lowering meaningless. Returned by [`try_lower`] instead of
/// panicking, so fuzzed or externally supplied schedules fail
/// gracefully with a diagnosable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A pre-compute plan names a statement that does not exist in the
    /// nest it targets.
    UnknownPlanStmt { nest: NestId, stmt: StmtId },
    /// A pre-compute plan targets a nest that does not exist in the
    /// program.
    UnknownPlanNest { nest: NestId },
    /// A fused plan's chain shape is invalid (bad member count,
    /// non-increasing positions, missing link, gathered operand aliasing
    /// an earlier destination, ...).
    InvalidFusedPlan { nest: NestId, detail: String },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnknownPlanStmt { nest, stmt } => write!(
                f,
                "precompute plan references statement S{} absent from nest N{}",
                stmt.0, nest.0
            ),
            LowerError::UnknownPlanNest { nest } => write!(
                f,
                "precompute plan references nest N{} absent from the program",
                nest.0
            ),
            LowerError::InvalidFusedPlan { nest, detail } => {
                write!(f, "fused plan for nest N{} is invalid: {detail}", nest.0)
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowering options.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Number of cores (threads); the parallel dimension is
    /// block-partitioned across them.
    pub cores: usize,
    /// Emit `Busy` instructions for statement `work` (disable for pure
    /// address-trace analyses).
    pub emit_busy: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            cores: 25,
            emit_busy: true,
        }
    }
}

/// Stable PC numbering: each (nest position, statement position,
/// micro-op role) triple gets a distinct PC shared by all dynamic
/// instances. Public so analyses (CME accuracy, Figure 5 series) can
/// map simulator per-PC counters back to IR references.
pub fn pc_of(nest_pos: usize, stmt_pos: usize, role: u32) -> Pc {
    (nest_pos as Pc) * 4096 + (stmt_pos as Pc) * 16 + role
}

/// Role of the `Busy` micro-op within a statement's lowering.
pub const ROLE_BUSY: u32 = 0;
/// Role of the main `Compute`/`Load` micro-op.
pub const ROLE_MAIN: u32 = 1;
/// Role of a copy statement's `Store` micro-op.
pub const ROLE_STORE: u32 = 2;
/// Role of an inserted `PreCompute` micro-op.
pub const ROLE_PRECOMPUTE: u32 = 3;

/// Lower a program to per-core traces. `schedule = None` produces the
/// baseline stream; with a schedule, iteration order, statement order,
/// and pre-compute insertion apply.
///
/// Panics if the schedule is structurally invalid (see [`try_lower`]
/// for the non-panicking variant); compiler-produced schedules are
/// always valid.
pub fn lower(prog: &Program, opts: &LowerOptions, schedule: Option<&Schedule>) -> TraceProgram {
    match try_lower(prog, opts, schedule) {
        Ok(tp) => tp,
        Err(e) => panic!("lower: {e}"),
    }
}

/// Lowering with structural validation: every pre-compute plan must
/// reference an existing nest and a statement present in that nest's
/// body. Returns a [`LowerError`] instead of panicking on a defective
/// schedule.
pub fn try_lower(
    prog: &Program,
    opts: &LowerOptions,
    schedule: Option<&Schedule>,
) -> Result<TraceProgram, LowerError> {
    let default_schedule = Schedule::default();
    let sched = schedule.unwrap_or(&default_schedule);
    for plan in &sched.precomputes {
        let Some(nest) = prog.nests.iter().find(|n| n.id == plan.nest) else {
            return Err(LowerError::UnknownPlanNest { nest: plan.nest });
        };
        if nest.stmt(plan.stmt).is_none() {
            return Err(LowerError::UnknownPlanStmt {
                nest: plan.nest,
                stmt: plan.stmt,
            });
        }
    }
    for plan in &sched.fused {
        let Some(nest) = prog.nests.iter().find(|n| n.id == plan.nest) else {
            return Err(LowerError::UnknownPlanNest { nest: plan.nest });
        };
        crate::schedule::validate_chain_shape(nest, &plan.stmts).map_err(|detail| {
            LowerError::InvalidFusedPlan {
                nest: plan.nest,
                detail,
            }
        })?;
    }
    let mut out = TraceProgram::new(prog.name.clone());
    out.traces = (0..opts.cores)
        .map(|c| Trace::new(NodeId(c as u16)))
        .collect();

    for (nest_pos, nest) in prog.nests.iter().enumerate() {
        let points = scheduled_points(nest, sched);
        let order = sched.stmt_order_for(nest);
        let plans: Vec<_> = sched.plans_for(nest.id).collect();
        let fused_infos: Vec<FusedLowerInfo> = sched
            .fused_for(nest.id)
            .map(|p| FusedLowerInfo::build(nest, p))
            .collect();
        // Statement id -> (fused plan index, chain member index).
        let mut fused_member: FxHashMap<StmtId, (usize, usize)> = FxHashMap::default();
        for (fi, p) in sched.fused_for(nest.id).enumerate() {
            for (mi, id) in p.stmts.iter().enumerate() {
                fused_member.insert(*id, (fi, mi));
            }
        }

        // Partition points across threads by the original parallel
        // dimension (block partitioning, preserving per-thread schedule
        // order).
        let thread_points = partition(nest, &points, opts.cores);

        for (tid, my_points) in thread_points.iter().enumerate() {
            let trace = &mut out.traces[tid];
            // (plan index, consumer point index) -> precompute id.
            // Ids are dense per trace (0..precompute_count), which lets
            // the engine index its pre-result table directly instead of
            // hashing (usize, u32) keys in the inner loop.
            let mut next_precompute_id = trace.precompute_ids() as u32;
            let mut pending: FxHashMap<(usize, usize), u32> = FxHashMap::default();
            // (fused plan index, consumer point index) -> base id. Kept
            // until every chain member at that point has consumed its
            // slot, then retired after the body loop.
            let mut pending_fused: FxHashMap<(usize, usize), u32> = FxHashMap::default();
            for (j, point) in my_points.iter().enumerate() {
                // Issue pre-computes whose consumer sits `lookahead`
                // iterations ahead.
                for (pi, plan) in plans.iter().enumerate() {
                    let target = j + plan.lookahead as usize;
                    if target >= my_points.len() {
                        continue;
                    }
                    // Validated up-front: the plan's statement exists in
                    // this nest's body.
                    let Some(stmt_pos) = nest.stmt_pos(plan.stmt) else {
                        continue;
                    };
                    let stmt = &nest.body[stmt_pos];
                    let tpoint = &my_points[target];
                    let Some((ra, rb)) = stmt.memory_operand_pair() else {
                        continue;
                    };
                    let (Some(addr_a), Some(addr_b)) =
                        (prog.addr_of(ra, tpoint), prog.addr_of(rb, tpoint))
                    else {
                        continue;
                    };
                    let store_to = prog.addr_of(&stmt.dst, tpoint);
                    let id = next_precompute_id;
                    next_precompute_id += 1;
                    pending.insert((pi, target), id);
                    trace.insts.push(Inst {
                        pc: pc_of(nest_pos, stmt_pos, ROLE_PRECOMPUTE),
                        kind: InstKind::PreCompute {
                            id,
                            op: stmt.op.expect("validated: binary stmt"),
                            a: addr_a,
                            b: addr_b,
                            store_to,
                            stagger: plan.stagger,
                            reshape_routes: plan.reshape_routes,
                        },
                    });
                }

                // Issue fused packets whose chain head's consumer sits
                // `lookahead` iterations ahead: one gather of the union
                // footprint, one packet, `n_ops` result slots.
                for (fi, info) in fused_infos.iter().enumerate() {
                    let target = j + info.lookahead as usize;
                    if target >= my_points.len() {
                        continue;
                    }
                    let tpoint = &my_points[target];
                    let mut addrs = [0u64; MAX_FUSED_OPS + 1];
                    let mut resolvable = true;
                    for (k, r) in info.gathered.iter().enumerate() {
                        match prog.addr_of(r, tpoint) {
                            Some(a) => addrs[k] = a,
                            None => {
                                // Halo access: the chain falls back to
                                // conventional execution at this point.
                                resolvable = false;
                                break;
                            }
                        }
                    }
                    if !resolvable {
                        continue;
                    }
                    let id = next_precompute_id;
                    next_precompute_id += info.n_ops as u32;
                    pending_fused.insert((fi, target), id);
                    trace.insts.push(Inst {
                        pc: pc_of(nest_pos, info.head_pos, ROLE_PRECOMPUTE),
                        kind: InstKind::FusedPreCompute {
                            id,
                            n_ops: info.n_ops,
                            ops: info.ops,
                            addrs,
                            stagger: info.stagger,
                            reshape_routes: info.reshape_routes,
                        },
                    });
                }

                // Body statements in scheduled order.
                for &stmt_pos in &order {
                    let stmt = &nest.body[stmt_pos];
                    let precomputed = plans
                        .iter()
                        .enumerate()
                        .find_map(|(pi, plan)| {
                            (plan.stmt == stmt.id)
                                .then(|| pending.remove(&(pi, j)))
                                .flatten()
                        })
                        .or_else(|| {
                            let &(fi, mi) = fused_member.get(&stmt.id)?;
                            pending_fused.get(&(fi, j)).map(|&base| base + mi as u32)
                        });
                    emit_stmt(
                        prog,
                        trace,
                        nest_pos,
                        stmt_pos,
                        stmt,
                        point,
                        precomputed,
                        opts.emit_busy,
                    );
                }
                // Retire fused slots consumed at this point.
                pending_fused.retain(|&(_, t), _| t != j);
            }
        }
    }
    debug_assert_eq!(out.validate_precompute_links(), Ok(()));
    Ok(out)
}

/// Per-nest lowering view of one fused plan: member ops in chain order
/// and the gathered operand references (head `a`, head `b`, then each
/// tail's single gathered operand — the packet's union footprint).
struct FusedLowerInfo {
    head_pos: usize,
    n_ops: u8,
    ops: [Op; MAX_FUSED_OPS],
    gathered: Vec<ArrayRef>,
    lookahead: u32,
    stagger: i32,
    reshape_routes: bool,
}

impl FusedLowerInfo {
    /// Plans are validated up-front ([`crate::schedule::validate_chain_shape`]),
    /// so member lookups here cannot fail.
    fn build(nest: &LoopNest, plan: &FusedPrecomputePlan) -> FusedLowerInfo {
        let head = nest.stmt(plan.stmts[0]).expect("validated plan");
        let (ra, rb) = head.memory_operand_pair().expect("validated head");
        let mut ops = [Op::Add; MAX_FUSED_OPS];
        ops[0] = head.op.expect("validated head");
        let mut gathered = vec![ra.clone(), rb.clone()];
        let mut prev_dst = &head.dst;
        for (k, id) in plan.stmts[1..].iter().enumerate() {
            let s = nest.stmt(*id).expect("validated plan");
            let (_, g) = chain_operands(s, prev_dst).expect("validated link");
            ops[k + 1] = s.op.expect("validated tail");
            gathered.push(g.clone());
            prev_dst = &s.dst;
        }
        FusedLowerInfo {
            head_pos: nest.stmt_pos(plan.stmts[0]).expect("validated plan"),
            n_ops: plan.stmts.len() as u8,
            ops,
            gathered,
            lookahead: plan.lookahead,
            stagger: plan.stagger,
            reshape_routes: plan.reshape_routes,
        }
    }
}

/// Block-partition scheduled points across threads by the original
/// value of the parallel dimension.
fn partition(nest: &LoopNest, points: &[IVec], cores: usize) -> Vec<Vec<IVec>> {
    let mut buckets: Vec<Vec<IVec>> = vec![Vec::new(); cores.max(1)];
    match nest.parallel_level {
        None => {
            buckets[0] = points.to_vec();
        }
        Some(level) => {
            let lo = nest.lo[level];
            let hi = nest.hi[level];
            // Zero-trip nests reach here with an empty `points`, so the
            // clamp only guards the div_ceil below.
            let extent = (hi - lo).max(0) as usize;
            let per = extent.div_ceil(cores.max(1)).max(1);
            for p in points {
                let v = (p[level] - lo) as usize;
                let t = (v / per).min(cores - 1);
                buckets[t].push(p.clone());
            }
        }
    }
    buckets
}

#[allow(clippy::too_many_arguments)]
fn emit_stmt(
    prog: &Program,
    trace: &mut Trace,
    nest_pos: usize,
    stmt_pos: usize,
    stmt: &Stmt,
    point: &[i64],
    precomputed: Option<u32>,
    emit_busy: bool,
) {
    if emit_busy && stmt.work > 0 {
        trace.insts.push(Inst {
            pc: pc_of(nest_pos, stmt_pos, ROLE_BUSY),
            kind: InstKind::Busy { cycles: stmt.work },
        });
    }
    let dst_addr = prog.addr_of(&stmt.dst, point);
    let operand = |r: &Ref| -> Operand {
        match r {
            Ref::Array(a) => match prog.addr_of(a, point) {
                Some(addr) => Operand::Mem(addr),
                // Halo/out-of-bounds reads evaluate to 0.0 (matching the
                // interpreter) and cost nothing.
                None => Operand::Imm(0.0),
            },
            Ref::Const(c) => Operand::Imm(*c),
        }
    };
    match (stmt.op, &stmt.b) {
        (Some(op), Some(b)) => {
            trace.insts.push(Inst {
                pc: pc_of(nest_pos, stmt_pos, ROLE_MAIN),
                kind: InstKind::Compute {
                    op,
                    a: operand(&stmt.a),
                    b: operand(b),
                    store_to: dst_addr,
                    precomputed,
                },
            });
        }
        _ => {
            // Copy statement: load (if memory) then store.
            if let Operand::Mem(addr) = operand(&stmt.a) {
                trace.insts.push(Inst {
                    pc: pc_of(nest_pos, stmt_pos, ROLE_MAIN),
                    kind: InstKind::Load { addr },
                });
            }
            if let Some(d) = dst_addr {
                trace.insts.push(Inst {
                    pc: pc_of(nest_pos, stmt_pos, ROLE_STORE),
                    kind: InstKind::Store { addr: d },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, ArrayRef, LoopNest, Program};
    use crate::schedule::{MoveStrategy, PrecomputePlan};
    use ndc_types::{NdcLocation, Op};

    fn vec_add(n: u64) -> Program {
        let mut p = Program::new("vadd");
        let x = p.add_array(ArrayDecl::new("X", vec![n], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![n], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![n], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            2,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![n as i64], vec![s]));
        p.assign_layout(0, 256);
        p
    }

    #[test]
    fn baseline_lowering_shape() {
        let p = vec_add(100);
        let opts = LowerOptions {
            cores: 4,
            emit_busy: true,
        };
        let tp = lower(&p, &opts, None);
        assert_eq!(tp.traces.len(), 4);
        assert_eq!(tp.total_computes(), 100);
        assert_eq!(tp.total_precomputes(), 0);
        // Busy + Compute per iteration.
        assert_eq!(tp.total_insts(), 200);
        // Block partitioning: 100/4 = 25 iterations -> 50 insts per core.
        for t in &tp.traces {
            assert_eq!(t.insts.len(), 50);
        }
    }

    #[test]
    fn partitioning_is_block_contiguous() {
        let p = vec_add(100);
        let opts = LowerOptions {
            cores: 4,
            emit_busy: false,
        };
        let tp = lower(&p, &opts, None);
        // Thread 0 computes Z[0..25): its first compute reads X[0].
        let x_base = p.array(crate::program::ArrayId(0)).base;
        match tp.traces[0].insts[0].kind {
            InstKind::Compute { a, .. } => assert_eq!(a.addr(), Some(x_base)),
            ref k => panic!("unexpected {k:?}"),
        }
        match tp.traces[1].insts[0].kind {
            InstKind::Compute { a, .. } => assert_eq!(a.addr(), Some(x_base + 25 * 8)),
            ref k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn precompute_plans_lower_with_lookahead() {
        let p = vec_add(40);
        let mut sched = Schedule::default();
        sched.precomputes.push(PrecomputePlan {
            nest: crate::program::NestId(0),
            stmt: crate::program::StmtId(0),
            lookahead: 3,
            stagger: 5,
            reshape_routes: true,
            strategy: MoveStrategy::MoveY,
            target: NdcLocation::CacheController,
        });
        let opts = LowerOptions {
            cores: 2,
            emit_busy: false,
        };
        let tp = lower(&p, &opts, Some(&sched));
        assert!(tp.validate_precompute_links().is_ok());
        // Each thread has 20 iterations; consumers exist for the first
        // 17 precomputes (20 - 3).
        assert_eq!(tp.total_precomputes(), 2 * 17);
        // Consumers at positions >= lookahead are marked precomputed.
        let consumed = tp
            .traces
            .iter()
            .flat_map(|t| &t.insts)
            .filter(|i| {
                matches!(
                    i.kind,
                    InstKind::Compute {
                        precomputed: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(consumed, 2 * 17);
        // The precompute for consumer j carries consumer j's addresses,
        // issued 3 iterations earlier.
        let t0 = &tp.traces[0];
        let first_pre = t0
            .insts
            .iter()
            .find_map(|i| match i.kind {
                InstKind::PreCompute {
                    a,
                    stagger,
                    reshape_routes,
                    ..
                } => Some((a, stagger, reshape_routes)),
                _ => None,
            })
            .unwrap();
        let x_base = p.array(crate::program::ArrayId(0)).base;
        assert_eq!(first_pre.0, x_base + 3 * 8);
        assert_eq!(first_pre.1, 5);
        assert!(first_pre.2);
    }

    #[test]
    fn zero_lookahead_still_links() {
        let p = vec_add(10);
        let mut sched = Schedule::default();
        sched.precomputes.push(PrecomputePlan {
            nest: crate::program::NestId(0),
            stmt: crate::program::StmtId(0),
            lookahead: 0,
            stagger: 0,
            reshape_routes: false,
            strategy: MoveStrategy::MoveBoth,
            target: NdcLocation::MemoryBank,
        });
        let opts = LowerOptions {
            cores: 1,
            emit_busy: false,
        };
        let tp = lower(&p, &opts, Some(&sched));
        assert!(tp.validate_precompute_links().is_ok());
        assert_eq!(tp.total_precomputes(), 10);
    }

    #[test]
    fn transformed_order_changes_stream() {
        // 2D copy: transform interchanges loops; the address stream of
        // thread 0 must change accordingly.
        let mut p = Program::new("t2d");
        let x = p.add_array(ArrayDecl::new("X", vec![4, 4], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![4, 4], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(y, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Const(1.0),
            0,
        );
        let mut nest = LoopNest::new(0, vec![0, 0], vec![4, 4], vec![s]);
        nest.parallel_level = None;
        p.nests.push(nest);
        p.assign_layout(0, 64);

        let opts = LowerOptions {
            cores: 1,
            emit_busy: false,
        };
        let base = lower(&p, &opts, None);
        let mut sched = Schedule::default();
        sched.transforms.insert(
            crate::program::NestId(0),
            crate::matrix::IMat::from_rows(&[&[0, 1], &[1, 0]]),
        );
        let xf = lower(&p, &opts, Some(&sched));
        let addrs = |tp: &TraceProgram| -> Vec<u64> {
            tp.traces[0]
                .insts
                .iter()
                .filter_map(|i| match i.kind {
                    InstKind::Compute { a, .. } => a.addr(),
                    _ => None,
                })
                .collect()
        };
        let a0 = addrs(&base);
        let a1 = addrs(&xf);
        assert_ne!(a0, a1);
        // Interchange = column-major walk: second access is X[1][0].
        let x_base = p.array(x).base;
        assert_eq!(a1[1], x_base + 4 * 8);
        // Same multiset of addresses.
        let mut s0 = a0.clone();
        let mut s1 = a1.clone();
        s0.sort_unstable();
        s1.sort_unstable();
        assert_eq!(s0, s1);
    }

    #[test]
    fn stmt_order_override_reorders_emission() {
        let mut p = Program::new("ord");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Const(1.0),
            Ref::Const(2.0),
            0,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(y, 1, vec![0]),
            Op::Add,
            Ref::Const(3.0),
            Ref::Const(4.0),
            0,
        );
        let mut nest = LoopNest::new(0, vec![0], vec![4], vec![s0, s1]);
        nest.parallel_level = None;
        p.nests.push(nest);
        p.assign_layout(0, 64);

        let opts = LowerOptions {
            cores: 1,
            emit_busy: false,
        };
        let base = lower(&p, &opts, None);
        let mut sched = Schedule::default();
        sched
            .stmt_order
            .insert(crate::program::NestId(0), vec![1, 0]);
        let reordered = lower(&p, &opts, Some(&sched));
        // Same instruction count, swapped within-iteration order.
        assert_eq!(base.total_insts(), reordered.total_insts());
        let first_store = |tp: &TraceProgram| match tp.traces[0].insts[0].kind {
            InstKind::Compute { store_to, .. } => store_to,
            ref k => panic!("unexpected {k:?}"),
        };
        assert_ne!(first_store(&base), first_store(&reordered));
    }

    #[test]
    fn pc_numbering_is_stable_across_schedules() {
        let p = vec_add(16);
        let opts = LowerOptions {
            cores: 2,
            emit_busy: true,
        };
        let a = lower(&p, &opts, None);
        let mut sched = Schedule::default();
        sched.precomputes.push(PrecomputePlan {
            nest: crate::program::NestId(0),
            stmt: crate::program::StmtId(0),
            lookahead: 2,
            stagger: 0,
            reshape_routes: false,
            strategy: MoveStrategy::MoveBoth,
            target: NdcLocation::CacheController,
        });
        let b = lower(&p, &opts, Some(&sched));
        // The consumer Compute keeps its PC under the schedule; only
        // PreCompute instructions (a distinct role PC) are added.
        let pcs = |tp: &TraceProgram| {
            let mut v: Vec<_> = tp.traces[0]
                .insts
                .iter()
                .filter(|i| matches!(i.kind, InstKind::Compute { .. }))
                .map(|i| i.pc)
                .collect();
            v.dedup();
            v
        };
        assert_eq!(pcs(&a), pcs(&b));
    }

    #[test]
    fn busy_emission_toggle() {
        let p = vec_add(10);
        let with = lower(
            &p,
            &LowerOptions {
                cores: 1,
                emit_busy: true,
            },
            None,
        );
        let without = lower(
            &p,
            &LowerOptions {
                cores: 1,
                emit_busy: false,
            },
            None,
        );
        assert_eq!(with.total_insts(), 20);
        assert_eq!(without.total_insts(), 10);
    }

    #[test]
    fn plan_with_unknown_stmt_is_a_structured_error() {
        let p = vec_add(10);
        let mut sched = Schedule::default();
        sched.precomputes.push(PrecomputePlan {
            nest: crate::program::NestId(0),
            stmt: crate::program::StmtId(99),
            lookahead: 1,
            stagger: 0,
            reshape_routes: false,
            strategy: MoveStrategy::MoveBoth,
            target: NdcLocation::MemoryBank,
        });
        let opts = LowerOptions {
            cores: 1,
            emit_busy: false,
        };
        let err = try_lower(&p, &opts, Some(&sched)).unwrap_err();
        assert_eq!(
            err,
            LowerError::UnknownPlanStmt {
                nest: crate::program::NestId(0),
                stmt: crate::program::StmtId(99),
            }
        );
        assert!(err.to_string().contains("S99"));
    }

    #[test]
    fn plan_with_unknown_nest_is_a_structured_error() {
        let p = vec_add(10);
        let mut sched = Schedule::default();
        sched.precomputes.push(PrecomputePlan {
            nest: crate::program::NestId(7),
            stmt: crate::program::StmtId(0),
            lookahead: 1,
            stagger: 0,
            reshape_routes: false,
            strategy: MoveStrategy::MoveBoth,
            target: NdcLocation::MemoryBank,
        });
        let opts = LowerOptions::default();
        let err = try_lower(&p, &opts, Some(&sched)).unwrap_err();
        assert_eq!(
            err,
            LowerError::UnknownPlanNest {
                nest: crate::program::NestId(7),
            }
        );
    }

    #[test]
    fn zero_trip_nest_lowers_to_empty_traces() {
        let mut p = Program::new("zt");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Const(1.0),
            2,
        );
        p.nests.push(LoopNest::new(0, vec![4], vec![4], vec![s]));
        p.assign_layout(0, 64);
        let tp = lower(
            &p,
            &LowerOptions {
                cores: 4,
                emit_busy: true,
            },
            None,
        );
        assert_eq!(tp.total_insts(), 0);
        assert_eq!(tp.total_computes(), 0);
    }

    /// s0: Z = X + Y, s1: W = Z * X — a two-member chain.
    fn chain_prog(n: u64) -> Program {
        let mut p = Program::new("chain");
        let x = p.add_array(ArrayDecl::new("X", vec![n], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![n], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![n], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![n], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Mul,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![n as i64], vec![s0, s1]));
        p.assign_layout(0, 256);
        p
    }

    fn chain_sched(lookahead: u32) -> Schedule {
        let mut sched = Schedule::default();
        sched.fused.push(crate::schedule::FusedPrecomputePlan {
            nest: crate::program::NestId(0),
            stmts: vec![crate::program::StmtId(0), crate::program::StmtId(1)],
            lookahead,
            stagger: 4,
            reshape_routes: true,
            target: NdcLocation::CacheController,
        });
        sched
    }

    #[test]
    fn fused_plan_lowers_to_one_packet_per_point() {
        let p = chain_prog(20);
        let opts = LowerOptions {
            cores: 2,
            emit_busy: false,
        };
        let tp = lower(&p, &opts, Some(&chain_sched(3)));
        assert!(tp.validate_precompute_links().is_ok());
        // 10 iterations per thread, consumers exist for the first 7:
        // one *packet* each, defining two ids each.
        assert_eq!(tp.total_precomputes(), 2 * 7);
        assert_eq!(
            tp.traces.iter().map(|t| t.precompute_ids()).sum::<u64>(),
            2 * 14
        );
        // Both chain members consume their slot: head gets base, tail
        // gets base + 1.
        let t0 = &tp.traces[0];
        let consumed: Vec<u32> = t0
            .insts
            .iter()
            .filter_map(|i| match i.kind {
                InstKind::Compute {
                    precomputed: Some(id),
                    ..
                } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(consumed.len(), 14);
        assert_eq!(&consumed[..2], &[0, 1]);
        // The packet carries the union footprint: head a, head b, tail
        // gathered (X, Y, X at the consumer point).
        let (addrs, n_ops, stagger) = t0
            .insts
            .iter()
            .find_map(|i| match i.kind {
                InstKind::FusedPreCompute {
                    addrs,
                    n_ops,
                    stagger,
                    ..
                } => Some((addrs, n_ops, stagger)),
                _ => None,
            })
            .unwrap();
        assert_eq!(n_ops, 2);
        assert_eq!(stagger, 4);
        let x_base = p.array(crate::program::ArrayId(0)).base;
        let y_base = p.array(crate::program::ArrayId(1)).base;
        assert_eq!(addrs[0], x_base + 3 * 8);
        assert_eq!(addrs[1], y_base + 3 * 8);
        assert_eq!(addrs[2], x_base + 3 * 8);
    }

    #[test]
    fn fused_and_individual_ids_stay_dense() {
        // A fused chain in nest 0 plus an individual plan in nest 1:
        // ids must still be dense per trace.
        let mut p = chain_prog(10);
        let v = p.add_array(ArrayDecl::new("V", vec![10], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(v, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(v, 1, vec![0])),
            Ref::Array(ArrayRef::identity(crate::program::ArrayId(0), 1, vec![0])),
            1,
        );
        p.nests.push(LoopNest::new(1, vec![0], vec![10], vec![s]));
        p.assign_layout(0, 256);
        let mut sched = chain_sched(2);
        sched.precomputes.push(PrecomputePlan {
            nest: crate::program::NestId(1),
            stmt: crate::program::StmtId(0),
            lookahead: 2,
            stagger: 0,
            reshape_routes: false,
            strategy: MoveStrategy::MoveBoth,
            target: NdcLocation::MemoryBank,
        });
        let opts = LowerOptions {
            cores: 1,
            emit_busy: false,
        };
        let tp = lower(&p, &opts, Some(&sched));
        assert!(tp.validate_precompute_links().is_ok());
        // Nest 0: 8 packets x 2 ids; nest 1: 8 singles.
        assert_eq!(tp.traces[0].precompute_ids(), 24);
    }

    #[test]
    fn invalid_fused_plan_is_a_structured_error() {
        let p = chain_prog(10);
        // Reversed member order: not strictly increasing.
        let mut sched = Schedule::default();
        sched.fused.push(crate::schedule::FusedPrecomputePlan {
            nest: crate::program::NestId(0),
            stmts: vec![crate::program::StmtId(1), crate::program::StmtId(0)],
            lookahead: 1,
            stagger: 0,
            reshape_routes: false,
            target: NdcLocation::CacheController,
        });
        let opts = LowerOptions {
            cores: 1,
            emit_busy: false,
        };
        let err = try_lower(&p, &opts, Some(&sched)).unwrap_err();
        assert!(matches!(err, LowerError::InvalidFusedPlan { .. }));
        assert!(err.to_string().contains("increasing"));
    }

    #[test]
    fn copy_statements_lower_to_load_store() {
        let mut p = Program::new("copy");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let s = Stmt::copy(
            0,
            ArrayRef::identity(y, 1, vec![0]),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            0,
        );
        let mut nest = LoopNest::new(0, vec![0], vec![8], vec![s]);
        nest.parallel_level = None;
        p.nests.push(nest);
        p.assign_layout(0, 64);
        let tp = lower(
            &p,
            &LowerOptions {
                cores: 1,
                emit_busy: false,
            },
            None,
        );
        let kinds: Vec<bool> = tp.traces[0]
            .insts
            .iter()
            .map(|i| matches!(i.kind, InstKind::Load { .. }))
            .collect();
        assert_eq!(tp.traces[0].insts.len(), 16);
        assert!(kinds[0]);
        assert!(!kinds[1]);
    }
}
