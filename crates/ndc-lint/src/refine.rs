//! Pass 3a: dependence refinement.
//!
//! `ndc-ir`'s dependence analysis is deliberately bounds-blind and
//! solves only square non-singular subscript systems; everything else
//! becomes a conservative `Unknown` distance that blocks every
//! transformation. This pass sharpens that graph with three classic
//! refutation tests, each of which *only removes* edges the iteration
//! space provably cannot realize — refinement never invents a
//! dependence, so a refined graph admits a superset of the schedules
//! the unrefined graph admits, and rejects nothing the unrefined graph
//! accepted.
//!
//! 1. **Extent test** (constant distances): a distance `d` needs an
//!    iteration pair `(I, I + d)` with both ends inside the nest's
//!    box, which exists iff `|d_k| < extent_k` in every dimension.
//! 2. **GCD test** (unknown distances): each subscript row yields a
//!    linear Diophantine equation over the two iteration vectors; if
//!    the gcd of its coefficients does not divide its constant, the
//!    accesses never collide.
//! 3. **Banerjee bounds test** (unknown distances): if the constant
//!    lies outside the [min, max] the left-hand side attains over the
//!    rectangular iteration bounds, the equation has no solution in
//!    the box.

use ndc_ir::deps::{DependenceEdge, DependenceGraph, DistanceVector};
use ndc_ir::program::{ArrayRef, LoopNest};

/// How many edges each refutation test discharged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Constant-distance edges longer than the loop extent.
    pub extent_refuted: u64,
    /// Unknown edges refuted by divisibility.
    pub gcd_refuted: u64,
    /// Unknown edges refuted by value bounds.
    pub banerjee_refuted: u64,
}

impl RefineStats {
    pub fn total(&self) -> u64 {
        self.extent_refuted + self.gcd_refuted + self.banerjee_refuted
    }

    pub fn merge(&mut self, other: &RefineStats) {
        self.extent_refuted += other.extent_refuted;
        self.gcd_refuted += other.gcd_refuted;
        self.banerjee_refuted += other.banerjee_refuted;
    }
}

/// Analyze a nest and refine the result in one step.
pub fn refine(nest: &LoopNest) -> (DependenceGraph, RefineStats) {
    refined_graph(nest, &DependenceGraph::analyze(nest))
}

/// Refine an already-computed dependence graph of `nest`.
pub fn refined_graph(nest: &LoopNest, graph: &DependenceGraph) -> (DependenceGraph, RefineStats) {
    let mut stats = RefineStats::default();
    let mut out = DependenceGraph::default();
    for edge in &graph.edges {
        match &edge.distance {
            DistanceVector::Constant(d) => {
                if exceeds_extent(nest, d) {
                    stats.extent_refuted += 1;
                    continue;
                }
            }
            DistanceVector::Unknown => {
                if let Some(test) = refute_unknown(nest, edge) {
                    match test {
                        Refutation::Gcd => stats.gcd_refuted += 1,
                        Refutation::Banerjee => stats.banerjee_refuted += 1,
                    }
                    continue;
                }
            }
        }
        if matches!(edge.distance, DistanceVector::Unknown) && edge.kind.constrains() {
            out.has_unknown = true;
        }
        out.edges.push(edge.clone());
    }
    (out, stats)
}

/// A constant distance is realizable only if some iteration pair
/// `(I, I + d)` fits in the box: `|d_k| <= extent_k - 1` for all `k`.
fn exceeds_extent(nest: &LoopNest, d: &[i64]) -> bool {
    if d.len() != nest.depth() {
        return false;
    }
    d.iter()
        .zip(nest.lo.iter().zip(nest.hi.iter()))
        .any(|(&dk, (&lo, &hi))| dk.unsigned_abs() > (hi - lo - 1) as u64)
}

enum Refutation {
    Gcd,
    Banerjee,
}

/// Try to prove an unknown-distance edge cannot happen: recover the two
/// access functions behind it and show the subscript system
/// `F1·I1 + f1 = F2·I2 + f2` has no solution with `I1`, `I2` in the
/// nest's box. Returns which test succeeded, or `None` if the edge
/// must be kept.
fn refute_unknown(nest: &LoopNest, edge: &DependenceEdge) -> Option<Refutation> {
    let r1 = slot_ref(nest, edge.src, edge.src_slot)?;
    let r2 = slot_ref(nest, edge.dst, edge.dst_slot)?;
    if r1.coeffs.rows != r2.coeffs.rows
        || r1.coeffs.cols != nest.depth()
        || r2.coeffs.cols != nest.depth()
    {
        // Malformed shapes are the verifier's problem, not ours.
        return None;
    }
    let n = nest.depth();
    for row in 0..r1.coeffs.rows {
        // Row equation: Σ F1[row][j]·I1_j − Σ F2[row][j]·I2_j = f2[row] − f1[row],
        // with both I1 and I2 ranging over the box independently.
        let coeffs: Vec<i128> = (0..n)
            .map(|j| r1.coeffs[(row, j)] as i128)
            .chain((0..n).map(|j| -(r2.coeffs[(row, j)] as i128)))
            .collect();
        let c = r2.offsets[row] as i128 - r1.offsets[row] as i128;
        let g = coeffs.iter().fold(0i128, |acc, &a| gcd(acc, a.abs()));
        if g == 0 {
            if c != 0 {
                // Degenerate GCD case: constant equation 0 = c.
                return Some(Refutation::Gcd);
            }
            continue;
        }
        if c % g != 0 {
            return Some(Refutation::Gcd);
        }
        let bounds = |j: usize| (nest.lo[j % n] as i128, (nest.hi[j % n] - 1) as i128);
        let (mut min, mut max) = (0i128, 0i128);
        for (k, &a) in coeffs.iter().enumerate() {
            let (lo, hi) = bounds(k);
            min += (a * lo).min(a * hi);
            max += (a * lo).max(a * hi);
        }
        if c < min || c > max {
            return Some(Refutation::Banerjee);
        }
    }
    None
}

fn slot_ref(nest: &LoopNest, stmt: ndc_ir::program::StmtId, slot: u8) -> Option<&ArrayRef> {
    let refs = nest.stmt(stmt)?.array_refs();
    refs.get(slot as usize).map(|&(r, _)| r)
}

/// Greatest common divisor (non-negative result), shared by the GCD
/// refutation test here and `ndc-reuse`'s distinct-element counting.
pub fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    fn one_stmt_nest(write: ArrayRef, read: ArrayRef, lo: Vec<i64>, hi: Vec<i64>) -> LoopNest {
        let s = Stmt::binary(0, write, Op::Add, Ref::Array(read), Ref::Const(1.0), 1);
        LoopNest::new(0, lo, hi, vec![s])
    }

    #[test]
    fn gcd_test_refutes_parity_disjoint_accesses() {
        // Write X[2i], read X[4i+1]: 2·I1 − 4·I2 = 1 has gcd 2 ∤ 1.
        // The base analysis marks this Unknown (differing coefficient
        // matrices); refinement discharges it.
        let mut p = Program::new("gcd");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[4]]), vec![1]);
        let nest = one_stmt_nest(w, r, vec![0], vec![8]);
        let base = DependenceGraph::analyze(&nest);
        assert!(base.has_unknown);
        let (refined, stats) = refined_graph(&nest, &base);
        assert!(!refined.has_unknown);
        assert!(stats.gcd_refuted > 0);
        assert_eq!(stats.banerjee_refuted, 0);
        assert!(refined.transformation_legal(&IMat::from_rows(&[&[-1]])));
    }

    #[test]
    fn banerjee_test_refutes_disjoint_ranges() {
        // Write X[2i] for i in [0, 8) touches [0, 14]; read X[i + 60]
        // touches [60, 67]. Divisibility cannot see this (gcd 1), the
        // value bounds can.
        let mut p = Program::new("banerjee");
        let x = p.add_array(ArrayDecl::new("X", vec![68], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1]]), vec![60]);
        let nest = one_stmt_nest(w, r, vec![0], vec![8]);
        let base = DependenceGraph::analyze(&nest);
        assert!(base.has_unknown);
        let (refined, stats) = refined_graph(&nest, &base);
        assert!(!refined.has_unknown);
        assert!(stats.banerjee_refuted > 0);
        assert_eq!(stats.gcd_refuted, 0);
    }

    #[test]
    fn coupled_subscripts_with_far_offset_are_refuted() {
        // X[i+j] written, X[i+j+40] read over a 4×4 box: i+j attains at
        // most 6, so the two index ranges [0,6] and [40,46] are
        // disjoint and the write/read pair is refuted. The *write's
        // own* output self-dependence is real, though — (0,1) and
        // (1,0) both store X[1] — so the nest stays untransformable.
        let mut p = Program::new("coupled");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![40]);
        let nest = one_stmt_nest(w, r, vec![0, 0], vec![4, 4]);
        let base = DependenceGraph::analyze(&nest);
        assert!(base.has_unknown);
        let (refined, stats) = refined_graph(&nest, &base);
        assert!(stats.total() > 0, "far-offset pair should be refuted");
        assert!(refined.has_unknown, "self output dependence must survive");
        assert!(refined
            .edges
            .iter()
            .all(|e| e.kind == ndc_ir::deps::DependenceKind::Output));
    }

    #[test]
    fn genuinely_overlapping_unknown_is_kept() {
        // X[i+j] written and read at offset 1: iterations (0,1) and
        // (1,0) collide, so the Unknown edge must survive.
        let mut p = Program::new("overlap");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![1]);
        let nest = one_stmt_nest(w, r, vec![0, 0], vec![4, 4]);
        let (refined, stats) = refine(&nest);
        assert!(refined.has_unknown);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn single_trip_dimension_refutes_carried_distance() {
        // X[i] = X[i-1] over one iteration: the analyzer records d = 1,
        // but no pair of iterations exists to carry it.
        let mut p = Program::new("onetrip");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let w = ArrayRef::identity(x, 1, vec![0]);
        let r = ArrayRef::identity(x, 1, vec![-1]);
        let nest = one_stmt_nest(w, r, vec![3], vec![4]);
        let base = DependenceGraph::analyze(&nest);
        assert!(base.distance_vectors().contains(&vec![1]));
        let (refined, stats) = refined_graph(&nest, &base);
        assert!(!refined.distance_vectors().contains(&vec![1]));
        assert!(stats.extent_refuted > 0);
        // With the false carry gone, loop reversal is provably legal.
        assert!(refined.transformation_legal(&IMat::from_rows(&[&[-1]])));
    }

    #[test]
    fn realizable_distances_survive() {
        // Figure 10's (1, -1) fits comfortably in a 16×15 box.
        let mut p = Program::new("fig10");
        let x = p.add_array(ArrayDecl::new("X", vec![17, 16], 8));
        let w = ArrayRef::identity(x, 2, vec![0, 0]);
        let r = ArrayRef::identity(x, 2, vec![-1, 1]);
        let nest = one_stmt_nest(w, r, vec![1, 0], vec![16, 15]);
        let (refined, stats) = refine(&nest);
        assert!(refined.distance_vectors().contains(&vec![1, -1]));
        assert_eq!(stats.total(), 0);
    }

    /// The collision program from ndc-check's oracle tests: write
    /// X[14i+7k] and write X[−14i−7k+21] over a 2×2 box do collide
    /// (e.g. 14 vs 21−7), and neither gcd (7 | 21) nor Banerjee
    /// (21 ∈ [0, 42]) may claim otherwise.
    #[test]
    fn colliding_writes_stay_unknown() {
        let mut p = Program::new("collision");
        let x = p.add_array(ArrayDecl::new("X", vec![28], 8));
        let w1 = ArrayRef::affine(x, IMat::from_rows(&[&[14, 7]]), vec![0]);
        let w2 = ArrayRef::affine(x, IMat::from_rows(&[&[-14, -7]]), vec![21]);
        let s0 = Stmt::copy(0, w1, Ref::Const(5.0), 1);
        let s1 = Stmt::copy(1, w2, Ref::Const(9.0), 1);
        let nest = LoopNest::new(0, vec![0, 0], vec![2, 2], vec![s0, s1]);
        let (refined, stats) = refine(&nest);
        assert!(refined.has_unknown);
        assert_eq!(stats.total(), 0);
    }

    /// Refinement must be monotone: it only ever removes edges, so
    /// anything legal on the base graph stays legal on the refined one.
    #[test]
    fn refinement_is_monotone_on_candidates() {
        let mut p = Program::new("mono");
        let x = p.add_array(ArrayDecl::new("X", vec![32, 32], 8));
        let w = ArrayRef::identity(x, 2, vec![0, 0]);
        let r = ArrayRef::identity(x, 2, vec![-1, 1]);
        let nest = one_stmt_nest(w, r, vec![1, 0], vec![16, 15]);
        let base = DependenceGraph::analyze(&nest);
        let (refined, _) = refined_graph(&nest, &base);
        for t in ndc_ir::matrix::candidate_transforms(2, 2) {
            if base.transformation_legal(&t) {
                assert!(refined.transformation_legal(&t), "{t:?}");
            }
        }
    }
}
