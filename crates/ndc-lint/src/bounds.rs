//! Pass 2: the affine bounds prover.
//!
//! For each reference `X(F·I + f)` the subscript in dimension `r` is a
//! linear function of the iteration vector, so over a rectangular box
//! its extrema are attained at per-variable endpoints:
//! `min_r = f_r + Σ_j min(F_rj·lo_j, F_rj·(hi_j − 1))` and symmetrically
//! for `max_r`. The access is proven in-bounds iff
//! `0 <= min_r` and `max_r < dims_r` for every dimension — exact, not
//! approximate, for the rectangular nests this IR has.
//!
//! Schedules don't change the verdict: a unimodular transform permutes
//! the *order* of iteration points, never the set of points visited, so
//! the proof covers the scheduled program too.

use ndc_ir::program::{ArrayId, LoopNest, NestId, Program, StmtId};

/// The proven subscript range of one array reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefBounds {
    pub nest: NestId,
    pub stmt: StmtId,
    /// Slot in the statement's `array_refs()` order (reads then write).
    pub slot: u8,
    pub array: ArrayId,
    pub is_write: bool,
    /// Per array dimension: the (min, max) subscript values attained
    /// over the whole iteration space. Empty when the reference's shape
    /// is malformed (which the verifier reports separately).
    pub range: Vec<(i64, i64)>,
    /// The array's declared extents, copied for self-contained
    /// reporting.
    pub dims: Vec<u64>,
    /// Whether every dimension's range fits inside the array.
    pub in_bounds: bool,
}

impl RefBounds {
    /// Human-readable account of which dimensions escape the array,
    /// e.g. `dim 0 spans [-1, 14] outside [0, 15]`.
    pub fn describe_violation(&self) -> String {
        if self.range.is_empty() {
            return "reference shape prevents bounds analysis".into();
        }
        let parts: Vec<String> = self
            .range
            .iter()
            .enumerate()
            .filter(|&(r, &(min, max))| {
                self.dims.get(r).is_none_or(|&d| min < 0 || max >= d as i64)
            })
            .map(|(r, &(min, max))| {
                let d = self.dims.get(r).copied().unwrap_or(0);
                format!("dim {r} spans [{min}, {max}] outside [0, {}]", d as i64 - 1)
            })
            .collect();
        parts.join("; ")
    }
}

/// Prove bounds for every array reference of every nest. Returns one
/// entry per reference, in program order, pass or fail.
pub fn prove_program(prog: &Program) -> Vec<RefBounds> {
    let mut out = Vec::new();
    for nest in &prog.nests {
        for stmt in &nest.body {
            for (slot, (aref, is_write)) in stmt.array_refs().into_iter().enumerate() {
                out.push(prove_ref(prog, nest, stmt.id, slot as u8, aref, is_write));
            }
        }
    }
    out
}

/// Prove bounds for a single reference. Public so `ndc-reuse` can
/// gate its `Exact` tags on the same interval-arithmetic proof the
/// linter uses (an out-of-bounds reference performs only a subset of
/// its affine accesses, so its footprint counts degrade to `Bound`).
pub fn prove_ref(
    prog: &Program,
    nest: &LoopNest,
    stmt: StmtId,
    slot: u8,
    aref: &ndc_ir::program::ArrayRef,
    is_write: bool,
) -> RefBounds {
    let mut rb = RefBounds {
        nest: nest.id,
        stmt,
        slot,
        array: aref.array,
        is_write,
        range: Vec::new(),
        dims: Vec::new(),
        in_bounds: false,
    };
    if aref.array.0 as usize >= prog.arrays.len() {
        return rb;
    }
    let dims = &prog.array(aref.array).dims;
    rb.dims = dims.clone();
    if aref.coeffs.cols != nest.depth()
        || aref.coeffs.rows != dims.len()
        || aref.offsets.len() != dims.len()
    {
        return rb;
    }
    // An empty iteration space performs no accesses: the claim
    // "every access is in-bounds" holds vacuously. The endpoint
    // formula below would otherwise evaluate at `hi[j] - 1 < lo[j]`,
    // a point the nest never visits.
    if nest.is_empty() {
        rb.range = dims.iter().map(|_| (0, -1)).collect();
        rb.in_bounds = true;
        return rb;
    }
    let mut ok = true;
    for (r, &dim) in dims.iter().enumerate() {
        let (mut min, mut max) = (aref.offsets[r] as i128, aref.offsets[r] as i128);
        for j in 0..aref.coeffs.cols {
            let a = aref.coeffs[(r, j)] as i128;
            let lo = a * nest.lo[j] as i128;
            let hi = a * (nest.hi[j] - 1) as i128;
            min += lo.min(hi);
            max += lo.max(hi);
        }
        ok &= min >= 0 && max < dim as i128;
        rb.range.push((clamp_i64(min), clamp_i64(max)));
    }
    rb.in_bounds = ok;
    rb
}

fn clamp_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Ref, Stmt};
    use ndc_types::Op;

    #[test]
    fn guarded_stencil_is_proven_in_bounds() {
        // X[i-1][j+1] over i in [1, 16), j in [0, 15) against a 17×16
        // array: rows span [0, 14], cols span [1, 15]. All inside.
        let mut p = Program::new("b");
        let x = p.add_array(ArrayDecl::new("X", vec![17, 16], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 1])),
            Ref::Const(1.0),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![1, 0], vec![16, 15], vec![s]));
        let bounds = prove_program(&p);
        assert_eq!(bounds.len(), 2);
        assert!(bounds.iter().all(|b| b.in_bounds), "{bounds:?}");
        let read = &bounds[0];
        assert!(!read.is_write);
        assert_eq!(read.range, vec![(0, 14), (1, 15)]);
    }

    #[test]
    fn unguarded_halo_read_is_flagged() {
        // X[i-1] over i in [0, 4): reads X[-1] at i = 0.
        let mut p = Program::new("halo");
        let x = p.add_array(ArrayDecl::new("X", vec![4], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![-1])),
            Ref::Const(1.0),
            0,
        );
        p.nests.push(LoopNest::new(0, vec![0], vec![4], vec![s]));
        let bounds = prove_program(&p);
        let read = &bounds[0];
        assert!(!read.in_bounds);
        assert_eq!(read.range, vec![(-1, 2)]);
        let msg = read.describe_violation();
        assert!(msg.contains("dim 0 spans [-1, 2]"), "{msg}");
        // The write X[i] itself is fine.
        assert!(bounds[1].in_bounds);
    }

    #[test]
    fn overflowing_upper_bound_is_flagged() {
        // X[2i] over i in [0, 8) against 15 elements: touches X[14],
        // fine; against 14 elements: X[14] escapes.
        let mk = |elems: u64| {
            let mut p = Program::new("stride");
            let x = p.add_array(ArrayDecl::new("X", vec![elems], 8));
            let w = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![0]);
            let s = Stmt::copy(0, w, Ref::Const(0.0), 0);
            p.nests.push(LoopNest::new(0, vec![0], vec![8], vec![s]));
            p
        };
        assert!(prove_program(&mk(15))[0].in_bounds);
        assert!(!prove_program(&mk(14))[0].in_bounds);
    }

    #[test]
    fn negative_stride_bounds_are_exact() {
        // X[-i + 7] over i in [0, 8): spans [0, 7], exactly the array.
        let mut p = Program::new("neg");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[-1]]), vec![7]);
        let s = Stmt::copy(0, w, Ref::Const(0.0), 0);
        p.nests.push(LoopNest::new(0, vec![0], vec![8], vec![s]));
        let b = &prove_program(&p)[0];
        assert!(b.in_bounds);
        assert_eq!(b.range, vec![(0, 7)]);
    }

    #[test]
    fn coupled_subscript_bounds_sum_both_dimensions() {
        // X[i+j] over a 4×4 box: spans [0, 6].
        let mut p = Program::new("coupled");
        let x = p.add_array(ArrayDecl::new("X", vec![7], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let s = Stmt::copy(0, w, Ref::Const(0.0), 0);
        p.nests
            .push(LoopNest::new(0, vec![0, 0], vec![4, 4], vec![s]));
        let b = &prove_program(&p)[0];
        assert!(b.in_bounds);
        assert_eq!(b.range, vec![(0, 6)]);
        // Offset 1 pushes the max to 7, one past the end.
        let mut p2 = Program::new("coupled2");
        let x2 = p2.add_array(ArrayDecl::new("X", vec![7], 8));
        let w2 = ArrayRef::affine(x2, IMat::from_rows(&[&[1, 1]]), vec![1]);
        let s2 = Stmt::copy(0, w2, Ref::Const(0.0), 0);
        p2.nests
            .push(LoopNest::new(0, vec![0, 0], vec![4, 4], vec![s2]));
        let b2 = &prove_program(&p2)[0];
        assert!(!b2.in_bounds);
        assert_eq!(b2.range, vec![(1, 7)]);
    }

    #[test]
    fn zero_trip_nest_is_vacuously_in_bounds() {
        // X[i - 100] over i in [4, 4): no iteration ever runs, so the
        // wildly out-of-range subscript is never evaluated.
        let mut p = Program::new("vacuous");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let w = ArrayRef::identity(x, 1, vec![-100]);
        let s = Stmt::copy(0, w, Ref::Const(0.0), 0);
        p.nests.push(LoopNest::new(0, vec![4], vec![4], vec![s]));
        let b = &prove_program(&p)[0];
        assert!(b.in_bounds);
        // The recorded range is the canonical empty interval.
        assert_eq!(b.range, vec![(0, -1)]);
    }

    #[test]
    fn malformed_shape_yields_unproven_empty_range() {
        let mut p = Program::new("bad");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        // 1-D access to a 2-D array.
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[1]]), vec![0]);
        let s = Stmt::copy(0, w, Ref::Const(0.0), 0);
        p.nests.push(LoopNest::new(0, vec![0], vec![8], vec![s]));
        let b = &prove_program(&p)[0];
        assert!(!b.in_bounds);
        assert!(b.range.is_empty());
        assert_eq!(
            b.describe_violation(),
            "reference shape prevents bounds analysis"
        );
    }
}
