//! Pass 1: the IR verifier.
//!
//! Structural well-formedness of programs and schedules: every array
//! reference resolves and has a shape consistent with its nest and
//! array, every transform is a square unimodular matrix over the right
//! depth, and every statement-order override is a permutation that
//! keeps loop-independent dependences source-before-sink.

use crate::LintError;
use ndc_ir::deps::{DependenceGraph, DistanceVector};
use ndc_ir::program::{NestId, Program};
use ndc_ir::schedule::Schedule;

/// Check structural well-formedness of a program.
pub fn verify_program(prog: &Program) -> Vec<LintError> {
    let mut errors = Vec::new();
    for nest in &prog.nests {
        if let Some(level) = nest.parallel_level {
            if level >= nest.depth() {
                errors.push(LintError::ParallelLevel {
                    nest: nest.id,
                    level,
                    depth: nest.depth(),
                });
            }
        }
        // `LoopNest::new` rejects inverted bounds, but nests can be
        // built by struct literal (fields are public), so the verifier
        // re-checks. Zero-trip (`lo == hi`) dimensions are legal.
        for (dim, (&lo, &hi)) in nest.lo.iter().zip(nest.hi.iter()).enumerate() {
            if lo > hi {
                errors.push(LintError::InvertedBounds {
                    nest: nest.id,
                    dim,
                    lo,
                    hi,
                });
            }
        }
        for stmt in &nest.body {
            for (slot, (aref, _)) in stmt.array_refs().into_iter().enumerate() {
                let slot = slot as u8;
                if aref.array.0 as usize >= prog.arrays.len() {
                    errors.push(LintError::UnknownArray {
                        nest: nest.id,
                        stmt: stmt.id,
                        slot,
                    });
                    continue;
                }
                let rank = prog.array(aref.array).dims.len();
                let mut problems = Vec::new();
                if aref.coeffs.rows != rank {
                    problems.push(format!(
                        "access matrix has {} rows but array rank is {rank}",
                        aref.coeffs.rows
                    ));
                }
                if aref.coeffs.cols != nest.depth() {
                    problems.push(format!(
                        "access matrix has {} columns but nest depth is {}",
                        aref.coeffs.cols,
                        nest.depth()
                    ));
                }
                if aref.offsets.len() != aref.coeffs.rows {
                    problems.push(format!(
                        "offset vector has {} entries but access matrix has {} rows",
                        aref.offsets.len(),
                        aref.coeffs.rows
                    ));
                }
                if !problems.is_empty() {
                    errors.push(LintError::RefShape {
                        nest: nest.id,
                        stmt: stmt.id,
                        slot,
                        detail: problems.join("; "),
                    });
                }
            }
        }
    }
    errors
}

/// Check a schedule against a program: transform shapes and
/// unimodularity, statement-order permutations and their respect for
/// loop-independent dependences, and pre-compute plan consistency.
///
/// Iteration over the schedule's hash maps is sorted by nest id so the
/// error list is deterministic.
pub fn verify_schedule(prog: &Program, schedule: &Schedule) -> Vec<LintError> {
    let mut errors = Vec::new();

    let mut transformed: Vec<NestId> = schedule.transforms.keys().copied().collect();
    transformed.sort();
    for nest_id in transformed {
        let t = &schedule.transforms[&nest_id];
        let Some(nest) = prog.nests.iter().find(|n| n.id == nest_id) else {
            errors.push(LintError::TransformUnknownNest { nest: nest_id });
            continue;
        };
        let depth = nest.depth();
        if t.rows != depth || t.cols != depth {
            errors.push(LintError::TransformShape {
                nest: nest_id,
                detail: format!(
                    "transform is {}x{} but nest depth is {depth}",
                    t.rows, t.cols
                ),
            });
            continue;
        }
        if !t.is_unimodular() {
            errors.push(LintError::NotUnimodular { nest: nest_id });
        }
    }

    let mut ordered: Vec<NestId> = schedule.stmt_order.keys().copied().collect();
    ordered.sort();
    for nest_id in ordered {
        let order = &schedule.stmt_order[&nest_id];
        let Some(nest) = prog.nests.iter().find(|n| n.id == nest_id) else {
            errors.push(LintError::OrderUnknownNest { nest: nest_id });
            continue;
        };
        let mut sorted = order.clone();
        sorted.sort_unstable();
        if sorted != (0..nest.body.len()).collect::<Vec<_>>() {
            errors.push(LintError::OrderNotPermutation {
                nest: nest_id,
                order: order.clone(),
            });
            continue;
        }
        // A zero-distance constraining edge means src's access and
        // dst's access hit the same element in the same iteration;
        // the override must keep src before dst.
        let exec_pos = |body_pos: usize| order.iter().position(|&p| p == body_pos);
        let graph = DependenceGraph::analyze(nest);
        for edge in &graph.edges {
            if !edge.kind.constrains() || edge.src == edge.dst {
                continue;
            }
            let DistanceVector::Constant(d) = &edge.distance else {
                continue;
            };
            if d.iter().any(|&x| x != 0) {
                continue;
            }
            let (Some(sp), Some(dp)) = (nest.stmt_pos(edge.src), nest.stmt_pos(edge.dst)) else {
                continue;
            };
            if exec_pos(sp) > exec_pos(dp) {
                errors.push(LintError::OrderViolatesDependence {
                    nest: nest_id,
                    src: edge.src,
                    dst: edge.dst,
                    array: edge.array,
                });
            }
        }
    }

    for plan in &schedule.precomputes {
        let Some(nest) = prog.nests.iter().find(|n| n.id == plan.nest) else {
            errors.push(LintError::PlanInvalid {
                detail: format!("plan references unknown nest {}", plan.nest.0),
            });
            continue;
        };
        let Some(stmt) = nest.stmt(plan.stmt) else {
            errors.push(LintError::PlanInvalid {
                detail: format!(
                    "plan references unknown stmt {} in nest {}",
                    plan.stmt.0, plan.nest.0
                ),
            });
            continue;
        };
        if stmt.memory_operand_pair().is_none() {
            errors.push(LintError::PlanInvalid {
                detail: format!(
                    "plan for nest {} stmt {} is not a two-memory-operand computation",
                    plan.nest.0, plan.stmt.0
                ),
            });
        }
    }

    let mut fused_members = std::collections::HashSet::new();
    for plan in &schedule.fused {
        let Some(nest) = prog.nests.iter().find(|n| n.id == plan.nest) else {
            errors.push(LintError::PlanInvalid {
                detail: format!("fused plan references unknown nest {}", plan.nest.0),
            });
            continue;
        };
        if let Err(detail) = ndc_ir::schedule::validate_chain_shape(nest, &plan.stmts) {
            errors.push(LintError::PlanInvalid { detail });
            continue;
        }
        for id in &plan.stmts {
            if !fused_members.insert((plan.nest, *id)) {
                errors.push(LintError::PlanInvalid {
                    detail: format!(
                        "stmt {} in nest {} appears in two fused plans",
                        id.0, plan.nest.0
                    ),
                });
            }
        }
    }
    for plan in &schedule.precomputes {
        if fused_members.contains(&(plan.nest, plan.stmt)) {
            errors.push(LintError::PlanInvalid {
                detail: format!(
                    "stmt {} in nest {} has both a fused and an individual plan",
                    plan.stmt.0, plan.nest.0
                ),
            });
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayId, ArrayRef, LoopNest, Ref, Stmt, StmtId};
    use ndc_types::Op;

    /// S0 writes Z[i]; S1 reads Z[i] — loop-independent flow S0 → S1.
    fn chained_prog() -> Program {
        let mut p = Program::new("chain");
        let z = p.add_array(ArrayDecl::new("Z", vec![8], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Const(1.0),
            Ref::Const(2.0),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Const(0.0),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![8], vec![s0, s1]));
        p.assign_layout(0, 64);
        p
    }

    #[test]
    fn clean_program_and_schedule_verify() {
        let p = chained_prog();
        assert!(verify_program(&p).is_empty());
        assert!(verify_schedule(&p, &Schedule::default()).is_empty());
    }

    #[test]
    fn shape_mismatches_are_reported() {
        let mut p = chained_prog();
        // 1-column access matrix in what we now declare a 2-deep nest.
        let z = ArrayId(0);
        let bad = Stmt::copy(
            2,
            ArrayRef::affine(z, IMat::from_rows(&[&[1]]), vec![0]),
            Ref::Const(0.0),
            0,
        );
        p.nests
            .push(LoopNest::new(1, vec![0, 0], vec![4, 4], vec![bad]));
        let errors = verify_program(&p);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "ref-shape");
        assert!(errors[0].to_string().contains("nest depth is 2"));
    }

    #[test]
    fn unknown_array_is_reported() {
        let mut p = chained_prog();
        let bad = Stmt::copy(
            2,
            ArrayRef::identity(ArrayId(9), 1, vec![0]),
            Ref::Const(0.0),
            0,
        );
        p.nests.push(LoopNest::new(1, vec![0], vec![4], vec![bad]));
        let errors = verify_program(&p);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "unknown-array");
    }

    #[test]
    fn parallel_level_out_of_range_is_reported() {
        let mut p = chained_prog();
        p.nests[0].parallel_level = Some(5);
        let errors = verify_program(&p);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "parallel-level");
    }

    #[test]
    fn inverted_bounds_are_reported() {
        let mut p = chained_prog();
        // Struct-literal construction bypasses `LoopNest::new`'s assert.
        p.nests.push(LoopNest {
            id: NestId(1),
            lo: vec![4],
            hi: vec![0],
            body: vec![],
            parallel_level: None,
        });
        let errors = verify_program(&p);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "inverted-bounds");
        assert!(errors[0].to_string().contains("[4, 0)"));
    }

    #[test]
    fn zero_trip_nest_verifies_clean() {
        let mut p = chained_prog();
        p.nests.push(LoopNest::new(1, vec![4], vec![4], vec![]));
        assert!(verify_program(&p).is_empty());
    }

    #[test]
    fn transform_shape_and_unimodularity_checked() {
        let p = chained_prog();
        let mut s = Schedule::default();
        s.transforms.insert(NestId(0), IMat::identity(2));
        let errors = verify_schedule(&p, &s);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "transform-shape");

        let mut s = Schedule::default();
        s.transforms.insert(NestId(0), IMat::from_rows(&[&[3]]));
        let errors = verify_schedule(&p, &s);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "non-unimodular");

        let mut s = Schedule::default();
        s.transforms.insert(NestId(7), IMat::identity(1));
        let errors = verify_schedule(&p, &s);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "transform-unknown-nest");
    }

    #[test]
    fn order_violating_zero_distance_dependence_is_rejected() {
        let p = chained_prog();
        let mut s = Schedule::default();
        // Run the consumer before the producer.
        s.stmt_order.insert(NestId(0), vec![1, 0]);
        let errors = verify_schedule(&p, &s);
        assert_eq!(errors.len(), 1);
        assert!(matches!(
            &errors[0],
            LintError::OrderViolatesDependence {
                src: StmtId(0),
                dst: StmtId(1),
                ..
            }
        ));
    }

    #[test]
    fn non_permutation_order_is_rejected() {
        let p = chained_prog();
        let mut s = Schedule::default();
        s.stmt_order.insert(NestId(0), vec![0, 0]);
        let errors = verify_schedule(&p, &s);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label(), "order-not-permutation");
    }

    #[test]
    fn reordering_independent_statements_is_fine() {
        // Two statements touching disjoint arrays: any order is legal.
        let mut p = Program::new("ind");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8], 8));
        let s0 = Stmt::copy(0, ArrayRef::identity(x, 1, vec![0]), Ref::Const(1.0), 0);
        let s1 = Stmt::copy(1, ArrayRef::identity(y, 1, vec![0]), Ref::Const(2.0), 0);
        p.nests
            .push(LoopNest::new(0, vec![0], vec![8], vec![s0, s1]));
        p.assign_layout(0, 64);
        let mut s = Schedule::default();
        s.stmt_order.insert(NestId(0), vec![1, 0]);
        assert!(verify_schedule(&p, &s).is_empty());
    }
}
