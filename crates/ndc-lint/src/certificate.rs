//! Pass 3b: legality certificates.
//!
//! For a transformation `T` over a nest with dependence matrix `D`,
//! legality is "every nonzero column of `T·D` is lexicographically
//! positive" (§5.2.1). A [`LegalityCertificate`] materializes that
//! proof: one [`EdgeWitness`] per constraining dependence edge, each
//! recording the distance `d`, its image `T·d`, and the pivot — the
//! first nonzero entry of the image, which must be positive.
//!
//! Crucially, [`verify_certificate`] re-derives the dependence set from
//! the IR and checks the witness list against it *exactly* (no missing
//! edges, no invented ones, every image recomputed), so a certificate
//! cannot be rubber-stamped by the optimizer that emitted it.

use crate::refine::{refine, RefineStats};
use ndc_ir::deps::{DependenceGraph, DistanceVector};
use ndc_ir::matrix::{IMat, IVec};
use ndc_ir::program::{ArrayId, LoopNest, NestId, StmtId};

/// The lexicographic-positivity proof for one dependence edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWitness {
    pub src: StmtId,
    pub dst: StmtId,
    pub array: ArrayId,
    /// The dependence distance `d` (a column of `D`).
    pub distance: IVec,
    /// Its image `T·d`.
    pub image: IVec,
    /// Index of the first nonzero entry of `image`; the witnessed
    /// claim is `image[..pivot] == 0` and `image[pivot] > 0`.
    pub pivot: usize,
}

/// A machine-checkable proof that `transform` is legal for `nest`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalityCertificate {
    pub nest: NestId,
    pub transform: IMat,
    /// One witness per constraining, loop-carried dependence edge.
    /// Zero-distance (loop-independent) edges are excluded: statement
    /// order preserves them under any iteration reordering.
    pub witnesses: Vec<EdgeWitness>,
    /// How many conservative edges refinement discharged before
    /// certification — context for reporting, not part of the proof.
    pub refined_away: u64,
}

/// Why certification or re-verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// `T` is not `depth × depth`.
    WrongShape { nest: NestId, depth: usize },
    /// `|det T| != 1`.
    NotUnimodular { nest: NestId },
    /// A constraining dependence survives with an unknown distance —
    /// no finite witness list can cover it.
    UnknownDependence {
        nest: NestId,
        src: StmtId,
        dst: StmtId,
        array: ArrayId,
    },
    /// `T·d` is not lexicographically positive for this edge.
    NotLexPositive {
        nest: NestId,
        src: StmtId,
        dst: StmtId,
        array: ArrayId,
        distance: IVec,
        image: IVec,
    },
    /// The certificate omits an edge the IR actually carries.
    MissingWitness { nest: NestId, distance: IVec },
    /// A witness is internally wrong (stale image, bad pivot, or an
    /// edge the IR does not carry).
    BadWitness { nest: NestId, detail: String },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::WrongShape { nest, depth } => {
                write!(f, "nest {}: transform is not {depth}x{depth}", nest.0)
            }
            CertificateError::NotUnimodular { nest } => {
                write!(f, "nest {}: transform is not unimodular", nest.0)
            }
            CertificateError::UnknownDependence {
                nest,
                src,
                dst,
                array,
            } => write!(
                f,
                "nest {}: dependence stmt {} -> stmt {} on array {} has a statically \
                 unknown distance",
                nest.0, src.0, dst.0, array.0
            ),
            CertificateError::NotLexPositive {
                nest,
                src,
                dst,
                array,
                distance,
                image,
            } => write!(
                f,
                "nest {}: T·d = {image:?} is not lexicographically positive for the \
                 dependence stmt {} -> stmt {} on array {} with distance {distance:?}",
                nest.0, src.0, dst.0, array.0
            ),
            CertificateError::MissingWitness { nest, distance } => write!(
                f,
                "nest {}: no witness covers the dependence distance {distance:?}",
                nest.0
            ),
            CertificateError::BadWitness { nest, detail } => {
                write!(f, "nest {}: bad witness: {detail}", nest.0)
            }
        }
    }
}

/// The edges a certificate must witness: constraining, constant,
/// nonzero distances — as comparable tuples, sorted for multiset
/// comparison.
fn required_witnesses(
    nest: &LoopNest,
    graph: &DependenceGraph,
) -> Result<Vec<(StmtId, StmtId, ArrayId, IVec)>, CertificateError> {
    let mut need = Vec::new();
    for edge in &graph.edges {
        if !edge.kind.constrains() {
            continue;
        }
        match &edge.distance {
            DistanceVector::Unknown => {
                return Err(CertificateError::UnknownDependence {
                    nest: nest.id,
                    src: edge.src,
                    dst: edge.dst,
                    array: edge.array,
                });
            }
            DistanceVector::Constant(d) => {
                if d.iter().any(|&x| x != 0) {
                    need.push((edge.src, edge.dst, edge.array, d.clone()));
                }
            }
        }
    }
    need.sort();
    Ok(need)
}

/// Certify `t` against an already-refined dependence graph (as produced
/// by [`refined_graph`]), avoiding re-analysis when the caller sweeps
/// many candidate transforms over one nest.
pub fn certify_with(
    nest: &LoopNest,
    refined: &DependenceGraph,
    stats: &RefineStats,
    t: &IMat,
) -> Result<LegalityCertificate, CertificateError> {
    let depth = nest.depth();
    if t.rows != depth || t.cols != depth {
        return Err(CertificateError::WrongShape {
            nest: nest.id,
            depth,
        });
    }
    if !t.is_unimodular() {
        return Err(CertificateError::NotUnimodular { nest: nest.id });
    }
    let mut witnesses = Vec::new();
    for (src, dst, array, distance) in required_witnesses(nest, refined)? {
        let image = t.mul_vec(&distance);
        let Some(pivot) = image.iter().position(|&x| x != 0).filter(|&p| image[p] > 0) else {
            return Err(CertificateError::NotLexPositive {
                nest: nest.id,
                src,
                dst,
                array,
                distance,
                image,
            });
        };
        witnesses.push(EdgeWitness {
            src,
            dst,
            array,
            distance,
            image,
            pivot,
        });
    }
    Ok(LegalityCertificate {
        nest: nest.id,
        transform: t.clone(),
        witnesses,
        refined_away: stats.total(),
    })
}

/// Analyze, refine, and certify in one step.
pub fn certify(nest: &LoopNest, t: &IMat) -> Result<LegalityCertificate, CertificateError> {
    let (graph, stats) = refine(nest);
    certify_with(nest, &graph, &stats, t)
}

/// Independently re-verify a certificate against the IR: re-derive the
/// dependence set, demand an exact multiset match between required
/// edges and witnesses, and recheck every witness's image and pivot
/// from scratch.
pub fn verify_certificate(
    nest: &LoopNest,
    cert: &LegalityCertificate,
) -> Result<(), CertificateError> {
    if cert.nest != nest.id {
        return Err(CertificateError::BadWitness {
            nest: nest.id,
            detail: format!("certificate is for nest {}", cert.nest.0),
        });
    }
    let depth = nest.depth();
    let t = &cert.transform;
    if t.rows != depth || t.cols != depth {
        return Err(CertificateError::WrongShape {
            nest: nest.id,
            depth,
        });
    }
    if !t.is_unimodular() {
        return Err(CertificateError::NotUnimodular { nest: nest.id });
    }
    let (graph, _) = refine(nest);
    let required = required_witnesses(nest, &graph)?;
    let mut claimed: Vec<(StmtId, StmtId, ArrayId, IVec)> = cert
        .witnesses
        .iter()
        .map(|w| (w.src, w.dst, w.array, w.distance.clone()))
        .collect();
    claimed.sort();
    if claimed != required {
        // Pinpoint the first discrepancy: an uncovered edge beats an
        // invented witness in the error message.
        for need in &required {
            if !claimed.contains(need) {
                return Err(CertificateError::MissingWitness {
                    nest: nest.id,
                    distance: need.3.clone(),
                });
            }
        }
        return Err(CertificateError::BadWitness {
            nest: nest.id,
            detail: "witness list does not match the IR's dependence edges".into(),
        });
    }
    for w in &cert.witnesses {
        let image = t.mul_vec(&w.distance);
        if image != w.image {
            return Err(CertificateError::BadWitness {
                nest: nest.id,
                detail: format!(
                    "stored image {:?} differs from recomputed T·d = {image:?}",
                    w.image
                ),
            });
        }
        let pivot_ok =
            w.pivot < image.len() && image[..w.pivot].iter().all(|&x| x == 0) && image[w.pivot] > 0;
        if !pivot_ok {
            return Err(CertificateError::BadWitness {
                nest: nest.id,
                detail: format!(
                    "pivot {} does not witness lex-positivity of {image:?}",
                    w.pivot
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::program::{ArrayDecl, ArrayRef, Program, Ref, Stmt};
    use ndc_types::Op;

    /// Figure 10 nest: flow dependence with distance (1, -1).
    fn fig10_nest() -> LoopNest {
        let mut p = Program::new("fig10");
        let x = p.add_array(ArrayDecl::new("X", vec![17, 16], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 1])),
            Ref::Const(1.0),
            1,
        );
        LoopNest::new(0, vec![1, 0], vec![16, 15], vec![s])
    }

    #[test]
    fn identity_certificate_has_pivot_zero_witness() {
        let nest = fig10_nest();
        let cert = certify(&nest, &IMat::identity(2)).unwrap();
        assert_eq!(cert.witnesses.len(), 1);
        let w = &cert.witnesses[0];
        assert_eq!(w.distance, vec![1, -1]);
        assert_eq!(w.image, vec![1, -1]);
        assert_eq!(w.pivot, 0);
        verify_certificate(&nest, &cert).unwrap();
    }

    #[test]
    fn interchange_fails_with_offending_edge() {
        let nest = fig10_nest();
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let err = certify(&nest, &swap).unwrap_err();
        match err {
            CertificateError::NotLexPositive {
                distance, image, ..
            } => {
                assert_eq!(distance, vec![1, -1]);
                assert_eq!(image, vec![-1, 1]);
            }
            other => panic!("expected NotLexPositive, got {other:?}"),
        }
    }

    #[test]
    fn skewed_interchange_certifies_and_reverifies() {
        let nest = fig10_nest();
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let skew = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let cert = certify(&nest, &swap.mul(&skew)).unwrap();
        // d = (1,-1), skew → (1,0), swap → (0,1): pivot at level 1.
        assert_eq!(cert.witnesses[0].image, vec![0, 1]);
        assert_eq!(cert.witnesses[0].pivot, 1);
        verify_certificate(&nest, &cert).unwrap();
    }

    #[test]
    fn tampered_image_is_caught() {
        let nest = fig10_nest();
        let mut cert = certify(&nest, &IMat::identity(2)).unwrap();
        cert.witnesses[0].image = vec![1, 1];
        let err = verify_certificate(&nest, &cert).unwrap_err();
        assert!(matches!(err, CertificateError::BadWitness { .. }));
    }

    #[test]
    fn dropped_witness_is_caught() {
        let nest = fig10_nest();
        let mut cert = certify(&nest, &IMat::identity(2)).unwrap();
        cert.witnesses.clear();
        let err = verify_certificate(&nest, &cert).unwrap_err();
        assert!(matches!(err, CertificateError::MissingWitness { .. }));
    }

    #[test]
    fn invented_witness_is_caught() {
        let nest = fig10_nest();
        let mut cert = certify(&nest, &IMat::identity(2)).unwrap();
        let mut extra = cert.witnesses[0].clone();
        extra.distance = vec![2, 0];
        extra.image = vec![2, 0];
        cert.witnesses.push(extra);
        let err = verify_certificate(&nest, &cert).unwrap_err();
        assert!(matches!(err, CertificateError::BadWitness { .. }));
    }

    #[test]
    fn swapped_transform_is_caught() {
        // Re-verification must recompute images under the *stored*
        // transform; swapping it for an illegal one fails.
        let nest = fig10_nest();
        let mut cert = certify(&nest, &IMat::identity(2)).unwrap();
        cert.transform = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert!(verify_certificate(&nest, &cert).is_err());
    }

    #[test]
    fn unknown_dependence_blocks_certification() {
        let mut p = Program::new("unk");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![1]);
        let s = Stmt::binary(0, w, Op::Add, Ref::Array(r), Ref::Const(1.0), 1);
        let nest = LoopNest::new(0, vec![0, 0], vec![4, 4], vec![s]);
        let err = certify(&nest, &IMat::identity(2)).unwrap_err();
        assert!(matches!(err, CertificateError::UnknownDependence { .. }));
    }

    #[test]
    fn non_unimodular_and_wrong_shape_rejected() {
        let nest = fig10_nest();
        let mut t = IMat::identity(2);
        t[(1, 1)] = 2;
        assert!(matches!(
            certify(&nest, &t),
            Err(CertificateError::NotUnimodular { .. })
        ));
        assert!(matches!(
            certify(&nest, &IMat::identity(3)),
            Err(CertificateError::WrongShape { .. })
        ));
    }

    /// Certification agrees with the dynamic notion of legality on the
    /// whole candidate space (against the refined graph).
    #[test]
    fn certify_matches_transformation_legal() {
        let nest = fig10_nest();
        let (graph, stats) = refine(&nest);
        for t in ndc_ir::matrix::candidate_transforms(2, 2) {
            let cert_ok = certify_with(&nest, &graph, &stats, &t).is_ok();
            assert_eq!(cert_ok, graph.transformation_legal(&t), "{t:?}");
        }
    }
}
