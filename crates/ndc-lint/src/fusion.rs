//! Fusion legality: machine-checkable certificates for fused
//! precompute chains.
//!
//! A fused chain executes with *gather-at-head* semantics: every
//! member's gathered operand is read when the chain head runs, each
//! member's destination is still written at its own body position, and
//! intermediate values are forwarded producer → consumer inside the
//! packet. Fusion therefore moves *reads* earlier (to the head) and
//! moves no writes, which gives the soundness conditions checked here:
//!
//! 1. the chain's *shape* is valid ([`ndc_ir::validate_chain_shape`]):
//!    2..=[`ndc_types::MAX_FUSED_OPS`] binary members at strictly
//!    increasing body positions, each tail forwarding its predecessor's
//!    destination and gathering exactly one other array operand that
//!    aliases no earlier member's destination;
//! 2. no `Unknown`-distance constraining dependence touches a chain
//!    member (an unanalyzable edge could hide any of the violations
//!    below);
//! 3. every loop-independent (zero-distance) flow edge between chain
//!    members lands on the consumer's *link* operand — the slot whose
//!    value the packet forwards. Any other member→member zero-distance
//!    flow would read a value the gather snapshotted before it was
//!    written. (Zero-distance anti edges between members are safe:
//!    reads only move earlier; zero-distance output edges are safe:
//!    writes do not move.)
//! 4. no statement *between* the head and the last member (in body
//!    position) has a zero-distance constraining dependence with any
//!    chain member, in either direction — an intervening write to a
//!    gathered operand would make the head's snapshot stale, and the
//!    converse directions are rejected conservatively.
//!
//! [`verify_fusion_certificate`] re-derives the dependence graph from
//! scratch and re-checks all four conditions plus the recorded link
//! witnesses, so a certificate is trusted only after independent
//! re-verification — same discipline as the transform certificates in
//! [`crate::certificate`].

use ndc_ir::deps::{DependenceGraph, DependenceKind, DistanceVector};
use ndc_ir::program::{ArrayId, LoopNest, NestId, StmtId};
use ndc_ir::schedule::{chain_operands, validate_chain_shape};

/// Witness for one forwarded producer → consumer link of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkWitness {
    /// The member whose destination is forwarded.
    pub producer: StmtId,
    /// The next member, which consumes the forwarded value.
    pub consumer: StmtId,
    /// The array both ends of the link touch.
    pub array: ArrayId,
    /// Operand slot of the link in the consumer (0 = `a`, 1 = `b`).
    pub link_slot: u8,
}

/// A re-verifiable record that fusing `stmts` in `nest` is legal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionCertificate {
    pub nest: NestId,
    /// Chain members in body order.
    pub stmts: Vec<StmtId>,
    /// One witness per consecutive pair.
    pub links: Vec<LinkWitness>,
}

/// Why a chain cannot be fused (or a certificate does not check out).
#[derive(Debug, Clone, PartialEq)]
pub enum FusionError {
    /// The chain's structural shape is invalid.
    BadShape { nest: NestId, detail: String },
    /// An `Unknown`-distance constraining dependence touches a member.
    UnknownDistance {
        nest: NestId,
        member: StmtId,
        array: ArrayId,
    },
    /// A zero-distance flow between members does not land on the
    /// consumer's link operand.
    NonLinkFlow {
        nest: NestId,
        src: StmtId,
        dst: StmtId,
        array: ArrayId,
    },
    /// A statement between head and last member has a zero-distance
    /// constraining dependence with a chain member.
    InterveningDependence {
        nest: NestId,
        through: StmtId,
        member: StmtId,
        array: ArrayId,
    },
    /// Verification only: the certificate's link witnesses disagree
    /// with the chain structure re-derived from the program.
    BadWitness { nest: NestId, detail: String },
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionError::BadShape { nest, detail } => {
                write!(f, "nest {}: bad fusion shape: {detail}", nest.0)
            }
            FusionError::UnknownDistance {
                nest,
                member,
                array,
            } => write!(
                f,
                "nest {}: unknown-distance dependence on array {} touches \
                 chain member {}",
                nest.0, array.0, member.0
            ),
            FusionError::NonLinkFlow {
                nest,
                src,
                dst,
                array,
            } => write!(
                f,
                "nest {}: zero-distance flow {} -> {} on array {} does not \
                 land on the forwarded link operand",
                nest.0, src.0, dst.0, array.0
            ),
            FusionError::InterveningDependence {
                nest,
                through,
                member,
                array,
            } => write!(
                f,
                "nest {}: statement {} between head and tail has a \
                 zero-distance dependence with chain member {} on array {}",
                nest.0, through.0, member.0, array.0
            ),
            FusionError::BadWitness { nest, detail } => {
                write!(f, "nest {}: bad fusion witness: {detail}", nest.0)
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// The link witnesses a legal chain must carry, derived structurally.
fn derive_links(nest: &LoopNest, stmts: &[StmtId]) -> Result<Vec<LinkWitness>, FusionError> {
    let mut links = Vec::new();
    let mut prev = nest.stmt(stmts[0]).ok_or_else(|| FusionError::BadShape {
        nest: nest.id,
        detail: format!("unknown stmt {:?}", stmts[0]),
    })?;
    for id in &stmts[1..] {
        let s = nest.stmt(*id).ok_or_else(|| FusionError::BadShape {
            nest: nest.id,
            detail: format!("unknown stmt {id:?}"),
        })?;
        let (link_is_a, _) = chain_operands(s, &prev.dst).ok_or_else(|| FusionError::BadShape {
            nest: nest.id,
            detail: format!("member {id:?} does not link to its predecessor"),
        })?;
        links.push(LinkWitness {
            producer: prev.id,
            consumer: s.id,
            array: prev.dst.array,
            link_slot: if link_is_a { 0 } else { 1 },
        });
        prev = s;
    }
    Ok(links)
}

/// Check fusion legality of `stmts` against an already-built (refined)
/// dependence graph. On success, returns the certificate.
pub fn certify_fusion_with(
    nest: &LoopNest,
    graph: &DependenceGraph,
    stmts: &[StmtId],
) -> Result<FusionCertificate, FusionError> {
    validate_chain_shape(nest, stmts).map_err(|detail| FusionError::BadShape {
        nest: nest.id,
        detail,
    })?;
    let links = derive_links(nest, stmts)?;

    let positions: Vec<usize> = stmts
        .iter()
        .map(|id| nest.stmt_pos(*id).expect("shape validated"))
        .collect();
    let head_pos = positions[0];
    let last_pos = *positions.last().expect("non-empty chain");
    let is_member = |s: StmtId| stmts.contains(&s);

    for e in &graph.edges {
        if !e.kind.constrains() {
            continue;
        }
        let src_member = is_member(e.src);
        let dst_member = is_member(e.dst);
        if !src_member && !dst_member {
            continue;
        }
        // Rule 2: unknown distances touching the chain are fatal.
        if matches!(e.distance, DistanceVector::Unknown) {
            return Err(FusionError::UnknownDistance {
                nest: nest.id,
                member: if src_member { e.src } else { e.dst },
                array: e.array,
            });
        }
        let zero = e
            .distance
            .as_constant()
            .is_some_and(|d| d.iter().all(|&x| x == 0));
        if !zero {
            // Loop-carried edges are untouched by intra-iteration
            // fusion (lookahead safety is the compiler's separate
            // legal-lookahead computation, shared with unfused plans).
            continue;
        }
        if src_member && dst_member {
            // Zero-distance self-edges (a statement reading and writing
            // the same element) are safe: within one instance reads
            // execute before the write, and fusion only moves reads
            // earlier.
            if e.src == e.dst {
                continue;
            }
            // Rule 3: member->member zero-distance flow must be a
            // forwarded link.
            if e.kind == DependenceKind::Flow {
                let ok = links.iter().any(|l| {
                    l.consumer == e.dst && l.array == e.array && l.link_slot == e.dst_slot
                });
                if !ok {
                    return Err(FusionError::NonLinkFlow {
                        nest: nest.id,
                        src: e.src,
                        dst: e.dst,
                        array: e.array,
                    });
                }
            }
            // Zero-distance anti/output between members are safe:
            // fusion only moves reads earlier and never moves writes.
            continue;
        }
        // Rule 4: zero-distance edges between the chain and a statement
        // positioned strictly inside (head, last) are rejected in both
        // directions.
        let outsider = if src_member { e.dst } else { e.src };
        let member = if src_member { e.src } else { e.dst };
        let Some(pos) = nest.stmt_pos(outsider) else {
            continue;
        };
        if pos > head_pos && pos < last_pos {
            return Err(FusionError::InterveningDependence {
                nest: nest.id,
                through: outsider,
                member,
                array: e.array,
            });
        }
    }

    Ok(FusionCertificate {
        nest: nest.id,
        stmts: stmts.to_vec(),
        links,
    })
}

/// Certify a fused chain, building the refined dependence graph from
/// the nest.
pub fn certify_fusion(nest: &LoopNest, stmts: &[StmtId]) -> Result<FusionCertificate, FusionError> {
    certify_fusion_with(nest, &crate::refine::refine(nest).0, stmts)
}

/// Independently re-verify a fusion certificate: re-derive the refined
/// dependence graph, re-run every legality condition, and check that
/// the recorded link witnesses match the chain structure. Trust the
/// certificate only if this passes — it shares no state with whoever
/// produced it.
pub fn verify_fusion_certificate(
    nest: &LoopNest,
    cert: &FusionCertificate,
) -> Result<(), FusionError> {
    if cert.nest != nest.id {
        return Err(FusionError::BadWitness {
            nest: nest.id,
            detail: format!("certificate targets nest {:?}", cert.nest),
        });
    }
    let recheck = certify_fusion(nest, &cert.stmts)?;
    if recheck.links != cert.links {
        return Err(FusionError::BadWitness {
            nest: nest.id,
            detail: format!(
                "link witnesses {:?} disagree with re-derived links {:?}",
                cert.links, recheck.links
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    /// s0: Z = X + Y; s1: W = Z * X — adjacent legal chain.
    fn legal_chain() -> Program {
        let mut p = Program::new("legal");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![16], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![16], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![16], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Mul,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![16], vec![s0, s1]));
        p.assign_layout(0, 64);
        p
    }

    #[test]
    fn legal_chain_certifies_and_reverifies() {
        let p = legal_chain();
        let cert = certify_fusion(&p.nests[0], &[StmtId(0), StmtId(1)]).unwrap();
        assert_eq!(cert.links.len(), 1);
        assert_eq!(cert.links[0].producer, StmtId(0));
        assert_eq!(cert.links[0].consumer, StmtId(1));
        assert_eq!(cert.links[0].link_slot, 0, "Z is operand a of s1");
        verify_fusion_certificate(&p.nests[0], &cert).unwrap();
    }

    #[test]
    fn tampered_witness_fails_reverification() {
        let p = legal_chain();
        let mut cert = certify_fusion(&p.nests[0], &[StmtId(0), StmtId(1)]).unwrap();
        cert.links[0].link_slot = 1;
        let err = verify_fusion_certificate(&p.nests[0], &cert).unwrap_err();
        assert!(matches!(err, FusionError::BadWitness { .. }));
    }

    /// s0: Z = X + Y; s1: X = Y + Y (clobbers the gathered operand);
    /// s2: W = Z * X. Fusing (s0, s2) across s1 is illegal.
    #[test]
    fn intervening_write_to_gathered_operand_rejected() {
        let mut p = Program::new("intervene");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![16], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![16], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![16], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let s2 = Stmt::binary(
            2,
            ArrayRef::identity(w, 1, vec![0]),
            Op::Mul,
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![16], vec![s0, s1, s2]));
        p.assign_layout(0, 64);
        let err = certify_fusion(&p.nests[0], &[StmtId(0), StmtId(2)]).unwrap_err();
        assert!(
            matches!(err, FusionError::InterveningDependence { through, .. }
                if through == StmtId(1)),
            "{err}"
        );
    }

    /// The swim-style pattern: s0: Z = U + V, s1: U = U + Z. The
    /// zero-distance anti edge (s0 reads U, s1 writes U) must NOT block
    /// fusion — reads only move earlier.
    #[test]
    fn member_anti_dependence_is_fusable() {
        let mut p = Program::new("swimlike");
        let u = p.add_array(ArrayDecl::new("U", vec![16], 8));
        let v = p.add_array(ArrayDecl::new("V", vec![16], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![16], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(u, 1, vec![0])),
            Ref::Array(ArrayRef::identity(v, 1, vec![0])),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(u, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(u, 1, vec![0])),
            Ref::Array(ArrayRef::identity(z, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![16], vec![s0, s1]));
        p.assign_layout(0, 64);
        let cert = certify_fusion(&p.nests[0], &[StmtId(0), StmtId(1)]).unwrap();
        assert_eq!(cert.links[0].link_slot, 1, "Z is operand b of s1");
        verify_fusion_certificate(&p.nests[0], &cert).unwrap();
    }

    #[test]
    fn unknown_distance_on_member_rejected() {
        // s1 reads X transposed: unknown distance against s0's X read
        // and the chain must be rejected.
        let mut p = Program::new("unk");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![8, 8], 8));
        let _w = p.add_array(ArrayDecl::new("W", vec![8, 8], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            1,
        );
        let transposed = ArrayRef::affine(
            x,
            ndc_ir::matrix::IMat::from_rows(&[&[0, 1], &[1, 0]]),
            vec![0, 0],
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(z, 2, vec![0, 0])),
            Ref::Array(transposed),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s0, s1]));
        p.assign_layout(0, 64);
        let err = certify_fusion(&p.nests[0], &[StmtId(0), StmtId(1)]).unwrap_err();
        assert!(matches!(err, FusionError::UnknownDistance { .. }), "{err}");
    }

    #[test]
    fn non_chain_pair_is_bad_shape() {
        let p = legal_chain();
        // Reversed order: not a chain.
        let err = certify_fusion(&p.nests[0], &[StmtId(1), StmtId(0)]).unwrap_err();
        assert!(matches!(err, FusionError::BadShape { .. }));
    }
}
