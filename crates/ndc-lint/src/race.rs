//! Pass 4: the IR-level race detector.
//!
//! `ndc-par` partitions a nest's iteration space by blocking the loop
//! dimension `parallel_level` marks (the lowering assigns each original
//! outer-loop value range to one core). A loop-carried dependence whose
//! distance is nonzero in that dimension therefore connects iterations
//! that land in *different* partitions — exactly the sharing pattern
//! that would race under an unsynchronized parallel execution. This
//! pass proves the absence of such edges, or names each offender:
//! source/sink statement, array, and distance vector (or `None` when
//! the distance is statically unknown).
//!
//! In this repo the finding is a diagnostic, not an error: the
//! deterministic fork-join runtime replays nests with cross-partition
//! dependences sequentially-consistently, so the report quantifies
//! *how much* of each workload genuinely needs that care (e.g. the
//! Smith-Waterman wavefront), rather than gating compilation.

use ndc_ir::deps::{DependenceGraph, DependenceKind, DistanceVector};
use ndc_ir::matrix::IVec;
use ndc_ir::program::{ArrayId, LoopNest, NestId, Program, StmtId};

/// One dependence edge carried by the parallel-partition dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    pub nest: NestId,
    /// The partitioned loop level the edge crosses.
    pub level: usize,
    pub src: StmtId,
    pub dst: StmtId,
    pub array: ArrayId,
    pub kind: DependenceKind,
    /// The offending distance, `None` when statically unknown.
    pub distance: Option<IVec>,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            DependenceKind::Flow => "flow",
            DependenceKind::Anti => "anti",
            DependenceKind::Output => "output",
            DependenceKind::Input => "input",
        };
        match &self.distance {
            Some(d) => write!(
                f,
                "nest {} level {}: {kind} dependence stmt {} -> stmt {} on array {} \
                 crosses partitions with distance {d:?}",
                self.nest.0, self.level, self.src.0, self.dst.0, self.array.0
            ),
            None => write!(
                f,
                "nest {} level {}: {kind} dependence stmt {} -> stmt {} on array {} \
                 has unknown distance (assumed cross-partition)",
                self.nest.0, self.level, self.src.0, self.dst.0, self.array.0
            ),
        }
    }
}

/// Races in one nest, given its (refined) dependence graph.
pub fn races_in(nest: &LoopNest, graph: &DependenceGraph) -> Vec<Race> {
    let Some(level) = nest.parallel_level else {
        return Vec::new();
    };
    if level >= nest.depth() {
        // The verifier reports this malformation; nothing meaningful
        // to detect here.
        return Vec::new();
    }
    graph
        .edges
        .iter()
        .filter(|e| e.kind.constrains())
        .filter_map(|e| {
            let distance = match &e.distance {
                DistanceVector::Constant(d) => {
                    if d.get(level).copied().unwrap_or(0) == 0 {
                        return None;
                    }
                    Some(d.clone())
                }
                DistanceVector::Unknown => None,
            };
            Some(Race {
                nest: nest.id,
                level,
                src: e.src,
                dst: e.dst,
                array: e.array,
                kind: e.kind,
                distance,
            })
        })
        .collect()
}

/// Races in one nest, analyzing and refining from scratch.
pub fn nest_races(nest: &LoopNest) -> Vec<Race> {
    let (graph, _) = crate::refine::refine(nest);
    races_in(nest, &graph)
}

/// Races across a whole program, in nest order.
pub fn program_races(prog: &Program) -> Vec<Race> {
    prog.nests.iter().flat_map(nest_races).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    #[test]
    fn wavefront_dependence_is_a_race_on_the_outer_level() {
        // X[i][j] = X[i-1][j+1]: distance (1, -1) crosses partitions of
        // level 0.
        let mut p = Program::new("wave");
        let x = p.add_array(ArrayDecl::new("X", vec![17, 16], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 1])),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![1, 0], vec![16, 15], vec![s]);
        let races = nest_races(&nest);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].distance, Some(vec![1, -1]));
        assert_eq!(races[0].level, 0);
        assert!(races[0].to_string().contains("crosses partitions"));
    }

    #[test]
    fn inner_carried_dependence_does_not_race_on_outer_partition() {
        // X[i][j] = X[i][j-1]: distance (0, 1) stays within a level-0
        // partition.
        let mut p = Program::new("inner");
        let x = p.add_array(ArrayDecl::new("X", vec![16, 17], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, -1])),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0, 1], vec![16, 16], vec![s]);
        assert!(nest_races(&nest).is_empty());
    }

    #[test]
    fn streaming_nest_is_race_free() {
        let mut p = Program::new("stream");
        let x = p.add_array(ArrayDecl::new("X", vec![32], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![32], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            Ref::Const(1.0),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![32], vec![s]);
        assert!(nest_races(&nest).is_empty());
    }

    #[test]
    fn unknown_distance_is_reported_without_a_vector() {
        let mut p = Program::new("unk");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![1]);
        let s = Stmt::binary(0, w, Op::Add, Ref::Array(r), Ref::Const(1.0), 1);
        let nest = LoopNest::new(0, vec![0, 0], vec![4, 4], vec![s]);
        let races = nest_races(&nest);
        assert!(!races.is_empty());
        assert!(races.iter().all(|r| r.distance.is_none()));
        assert!(races[0].to_string().contains("unknown distance"));
    }

    #[test]
    fn serial_nest_has_no_races() {
        let mut p = Program::new("serial");
        let x = p.add_array(ArrayDecl::new("X", vec![32], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![-1])),
            Ref::Const(1.0),
            1,
        );
        let mut nest = LoopNest::new(0, vec![1], vec![32], vec![s]);
        nest.parallel_level = None;
        assert!(nest_races(&nest).is_empty());
    }

    #[test]
    fn refinement_clears_false_races() {
        // X[2i] vs X[4i+1] is Unknown to the base analysis but refuted
        // by the GCD test — no race survives.
        let mut p = Program::new("gcdrace");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
        let w = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![0]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[4]]), vec![1]);
        let s = Stmt::binary(0, w, Op::Add, Ref::Array(r), Ref::Const(1.0), 1);
        let nest = LoopNest::new(0, vec![0], vec![8], vec![s]);
        assert!(nest_races(&nest).is_empty());
    }
}
