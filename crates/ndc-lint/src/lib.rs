//! Static legality analysis for NDC programs and schedules.
//!
//! The paper's Algorithms 1/2 are only sound when every unimodular
//! transformation and statement reordering respects the dependence
//! matrix `D`, and the rest of the repo establishes that *dynamically*
//! (the `ndc-check` differential oracle diffs interpreter outputs; the
//! interpreter counts out-of-bounds reads at runtime). This crate
//! proves the same properties *statically*, before any cycle is
//! simulated, with four passes:
//!
//! * [`verify`] — an IR verifier: access-matrix shapes match loop depth
//!   and array rank, statement/array references resolve, statement
//!   orders are permutations that respect loop-independent dependences,
//!   and every transformation is unimodular;
//! * [`bounds`] — an affine bounds prover: the min/max of `F·I + f`
//!   over the rectangular iteration bounds, proving every access
//!   in-bounds without executing anything;
//! * [`refine`] + [`certificate`] — a legality certificate engine:
//!   GCD/Banerjee-style refinement of `Unknown` dependence edges, and
//!   per-transform machine-checkable certificates (the `T·D`
//!   lexicographic-positivity witness per dependence edge) that are
//!   re-verified independently of the optimizer that emitted them;
//! * [`race`] — an IR-level race detector: given the loop dimension
//!   `ndc-par` partitions across threads, find every loop-carried
//!   dependence that crosses partitions of that dimension.
//!
//! The crate depends only on `ndc-ir` (and `ndc-types` transitively) —
//! it never touches the simulator, so its verdicts cannot be
//! contaminated by the machinery it is checking.

pub mod bounds;
pub mod certificate;
pub mod fusion;
pub mod race;
pub mod refine;
pub mod verify;

pub use bounds::{prove_program, prove_ref, RefBounds};
pub use certificate::{
    certify, certify_with, verify_certificate, CertificateError, EdgeWitness, LegalityCertificate,
};
pub use fusion::{
    certify_fusion, certify_fusion_with, verify_fusion_certificate, FusionCertificate, FusionError,
    LinkWitness,
};
pub use race::{nest_races, program_races, Race};
pub use refine::{gcd, refine, refined_graph, RefineStats};
pub use verify::{verify_program, verify_schedule};

use ndc_ir::program::{ArrayId, NestId, Program, StmtId};
use ndc_ir::schedule::Schedule;

/// One defect found by a lint pass. Every variant names the IR entity
/// at fault so the report is actionable without re-running anything.
#[derive(Debug, Clone, PartialEq)]
pub enum LintError {
    /// An array reference names an array the program does not declare.
    UnknownArray {
        nest: NestId,
        stmt: StmtId,
        slot: u8,
    },
    /// An access matrix/offset shape disagrees with the nest depth or
    /// the array rank.
    RefShape {
        nest: NestId,
        stmt: StmtId,
        slot: u8,
        detail: String,
    },
    /// A nest's parallel level is not a loop dimension of the nest.
    ParallelLevel {
        nest: NestId,
        level: usize,
        depth: usize,
    },
    /// A nest dimension has `lo > hi` — an inverted iteration space.
    /// (Zero-trip `lo == hi` dimensions are legal and make the nest
    /// empty.)
    InvertedBounds {
        nest: NestId,
        dim: usize,
        lo: i64,
        hi: i64,
    },
    /// A schedule transform targets a nest the program does not have.
    TransformUnknownNest { nest: NestId },
    /// A schedule transform is not `depth × depth`.
    TransformShape { nest: NestId, detail: String },
    /// A schedule transform is not unimodular (|det T| ≠ 1).
    NotUnimodular { nest: NestId },
    /// A statement-order override targets a nest the program does not
    /// have.
    OrderUnknownNest { nest: NestId },
    /// A statement-order override is not a permutation of the body.
    OrderNotPermutation { nest: NestId, order: Vec<usize> },
    /// A statement-order override executes the sink of a
    /// loop-independent (zero-distance) dependence before its source.
    OrderViolatesDependence {
        nest: NestId,
        src: StmtId,
        dst: StmtId,
        array: ArrayId,
    },
    /// An access can touch an element outside its array.
    OutOfBounds {
        nest: NestId,
        stmt: StmtId,
        slot: u8,
        array: ArrayId,
        detail: String,
    },
    /// A pre-compute plan is internally inconsistent.
    PlanInvalid { detail: String },
    /// A transform fails legality certification (`T·D` not
    /// lexicographically positive on some dependence edge, or an
    /// unrefinable unknown distance).
    IllegalTransform(CertificateError),
}

impl LintError {
    /// A stable machine-readable tag for each error class, used by the
    /// fault-matrix soundness tests and the `ndc-eval lint` table.
    pub fn label(&self) -> &'static str {
        match self {
            LintError::UnknownArray { .. } => "unknown-array",
            LintError::RefShape { .. } => "ref-shape",
            LintError::ParallelLevel { .. } => "parallel-level",
            LintError::InvertedBounds { .. } => "inverted-bounds",
            LintError::TransformUnknownNest { .. } => "transform-unknown-nest",
            LintError::TransformShape { .. } => "transform-shape",
            LintError::NotUnimodular { .. } => "non-unimodular",
            LintError::OrderUnknownNest { .. } => "order-unknown-nest",
            LintError::OrderNotPermutation { .. } => "order-not-permutation",
            LintError::OrderViolatesDependence { .. } => "order-violates-dependence",
            LintError::OutOfBounds { .. } => "out-of-bounds",
            LintError::PlanInvalid { .. } => "plan-invalid",
            LintError::IllegalTransform(_) => "illegal-transform",
        }
    }
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::UnknownArray { nest, stmt, slot } => write!(
                f,
                "nest {}: stmt {} slot {slot} references an undeclared array",
                nest.0, stmt.0
            ),
            LintError::RefShape {
                nest,
                stmt,
                slot,
                detail,
            } => write!(f, "nest {}: stmt {} slot {slot}: {detail}", nest.0, stmt.0),
            LintError::ParallelLevel { nest, level, depth } => write!(
                f,
                "nest {}: parallel level {level} out of range for depth {depth}",
                nest.0
            ),
            LintError::InvertedBounds { nest, dim, lo, hi } => write!(
                f,
                "nest {}: dimension {dim} has inverted bounds [{lo}, {hi})",
                nest.0
            ),
            LintError::TransformUnknownNest { nest } => {
                write!(f, "transform targets unknown nest {}", nest.0)
            }
            LintError::TransformShape { nest, detail } => {
                write!(f, "nest {}: {detail}", nest.0)
            }
            LintError::NotUnimodular { nest } => {
                write!(f, "nest {}: transform is not unimodular", nest.0)
            }
            LintError::OrderUnknownNest { nest } => {
                write!(f, "stmt order targets unknown nest {}", nest.0)
            }
            LintError::OrderNotPermutation { nest, order } => write!(
                f,
                "nest {}: stmt order {order:?} is not a permutation of the body",
                nest.0
            ),
            LintError::OrderViolatesDependence {
                nest,
                src,
                dst,
                array,
            } => write!(
                f,
                "nest {}: stmt order runs stmt {} before stmt {} despite a \
                 loop-independent dependence on array {}",
                nest.0, dst.0, src.0, array.0
            ),
            LintError::OutOfBounds {
                nest,
                stmt,
                slot,
                array,
                detail,
            } => write!(
                f,
                "nest {}: stmt {} slot {slot} can index array {} out of bounds: {detail}",
                nest.0, stmt.0, array.0
            ),
            LintError::PlanInvalid { detail } => write!(f, "invalid pre-compute plan: {detail}"),
            LintError::IllegalTransform(e) => write!(f, "illegal transform: {e}"),
        }
    }
}

/// The verdict of [`lint_schedule`] on one `(program, schedule)` pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// Program name, carried for table rendering.
    pub workload: String,
    /// Everything that must be fixed before the schedule is legal.
    pub errors: Vec<LintError>,
    /// Per-reference bounds proofs (all references, pass or fail).
    pub bounds: Vec<RefBounds>,
    /// How many conservative `Unknown`/too-long distances the
    /// refinement pass discharged across all nests.
    pub refine: RefineStats,
    /// One re-verifiable legality certificate per transformed nest.
    pub certificates: Vec<LegalityCertificate>,
    /// One re-verifiable fusion certificate per fused chain.
    pub fusion_certificates: Vec<FusionCertificate>,
    /// Loop-carried dependences crossing the parallel partition
    /// dimension. Diagnostics, not errors: `ndc-par` replays nests
    /// deterministically, so a cross-partition dependence degrades
    /// parallelism, not correctness.
    pub races: Vec<Race>,
}

impl LintReport {
    /// No errors: the schedule is statically proven legal.
    pub fn accepted(&self) -> bool {
        self.errors.is_empty()
    }

    /// References whose bounds proof failed.
    pub fn unproven_bounds(&self) -> usize {
        self.bounds.iter().filter(|b| !b.in_bounds).count()
    }
}

/// Run all four lint passes on a program under a schedule.
///
/// The result is deterministic: errors appear in program order
/// (nest, then statement, then reference slot), never in hash order.
pub fn lint_schedule(prog: &Program, schedule: &Schedule) -> LintReport {
    let mut report = LintReport {
        workload: prog.name.clone(),
        ..LintReport::default()
    };
    report.errors.extend(verify_program(prog));
    report.errors.extend(verify_schedule(prog, schedule));
    report.bounds = prove_program(prog);
    for b in report.bounds.iter().filter(|b| !b.in_bounds) {
        report.errors.push(LintError::OutOfBounds {
            nest: b.nest,
            stmt: b.stmt,
            slot: b.slot,
            array: b.array,
            detail: b.describe_violation(),
        });
    }
    for nest in &prog.nests {
        let (graph, stats) = refine(nest);
        report.refine.merge(&stats);
        report.races.extend(race::races_in(nest, &graph));
        for plan in schedule.fused_for(nest.id) {
            // Certify against the nest's refined graph, then re-verify
            // the certificate independently (it re-derives everything
            // from the program, sharing no state with the certifier).
            match fusion::certify_fusion_with(nest, &graph, &plan.stmts) {
                Ok(cert) => match fusion::verify_fusion_certificate(nest, &cert) {
                    Ok(()) => report.fusion_certificates.push(cert),
                    Err(e) => report.errors.push(LintError::PlanInvalid {
                        detail: format!("fusion certificate failed re-verification: {e}"),
                    }),
                },
                Err(e) => report.errors.push(LintError::PlanInvalid {
                    detail: format!("illegal fusion: {e}"),
                }),
            }
        }
        if let Some(t) = schedule.transforms.get(&nest.id) {
            // Shape/unimodularity defects are already reported by the
            // verifier; don't duplicate them as certificate failures.
            if t.rows != nest.depth() || t.cols != nest.depth() || !t.is_unimodular() {
                continue;
            }
            match certify_with(nest, &graph, &stats, t) {
                Ok(cert) => report.certificates.push(cert),
                Err(e) => report.errors.push(LintError::IllegalTransform(e)),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Ref, Stmt};
    use ndc_types::Op;

    /// Figure 10: X[i,j] = X[i-1,j+1] + 1 — flow distance (1, -1).
    fn fig10() -> Program {
        let mut p = Program::new("fig10");
        let x = p.add_array(ArrayDecl::new("X", vec![17, 16], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 1])),
            Ref::Const(1.0),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![1, 0], vec![16, 15], vec![s]));
        p.assign_layout(0, 64);
        p
    }

    #[test]
    fn legal_schedule_is_accepted_with_certificate() {
        let p = fig10();
        let mut s = Schedule::default();
        // Skew-then-interchange: legal for distance (1, -1).
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let skew = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        s.transforms.insert(p.nests[0].id, swap.mul(&skew));
        let report = lint_schedule(&p, &s);
        assert!(report.accepted(), "{:?}", report.errors);
        assert_eq!(report.certificates.len(), 1);
        verify_certificate(&p.nests[0], &report.certificates[0]).unwrap();
    }

    #[test]
    fn illegal_interchange_is_rejected() {
        let p = fig10();
        let mut s = Schedule::default();
        s.transforms
            .insert(p.nests[0].id, IMat::from_rows(&[&[0, 1], &[1, 0]]));
        let report = lint_schedule(&p, &s);
        assert!(!report.accepted());
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].label(), "illegal-transform");
        assert!(matches!(
            &report.errors[0],
            LintError::IllegalTransform(CertificateError::NotLexPositive { .. })
        ));
    }

    #[test]
    fn non_unimodular_transform_reported_once() {
        let p = fig10();
        let mut s = Schedule::default();
        let mut t = IMat::identity(2);
        t[(0, 0)] = 2;
        s.transforms.insert(p.nests[0].id, t);
        let report = lint_schedule(&p, &s);
        let labels: Vec<_> = report.errors.iter().map(|e| e.label()).collect();
        assert_eq!(labels, vec!["non-unimodular"]);
    }

    #[test]
    fn identity_schedule_on_clean_program_is_clean() {
        let p = fig10();
        let report = lint_schedule(&p, &Schedule::default());
        assert!(report.accepted(), "{:?}", report.errors);
        assert!(report.certificates.is_empty());
        assert_eq!(report.unproven_bounds(), 0);
    }

    #[test]
    fn error_display_and_labels_are_stable() {
        let e = LintError::OrderViolatesDependence {
            nest: NestId(3),
            src: StmtId(0),
            dst: StmtId(1),
            array: ArrayId(2),
        };
        assert_eq!(e.label(), "order-violates-dependence");
        let msg = e.to_string();
        assert!(msg.contains("nest 3"), "{msg}");
        assert!(msg.contains("array 2"), "{msg}");
    }
}
