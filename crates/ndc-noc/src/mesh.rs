//! Mesh topology: nodes, directed links, and static XY routing.

use ndc_types::{Coord, NocConfig, NodeId};

/// A directed communication link between two adjacent mesh nodes.
///
/// Links are numbered densely so a route signature can be a bitset over
/// all `L` links (§5.2.1: "for an on-chip network with a total L
/// communication links, a signature can be represented using an L-bit
/// sequence").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One concrete path through the mesh: an ordered list of directed
/// links from source to destination.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Route {
    pub src: Coord,
    pub dst: Coord,
    pub links: Vec<LinkId>,
}

impl Route {
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Static description of a `w × h` 2D mesh.
///
/// Directed links are numbered in four blocks: east (`x → x+1`), west,
/// south (`y → y+1`), north. The block layout is an implementation
/// detail; use [`Mesh::link_between`] / [`Mesh::link_endpoints`].
#[derive(Debug, Clone)]
pub struct Mesh {
    cfg: NocConfig,
}

impl Mesh {
    pub fn new(cfg: NocConfig) -> Self {
        assert!(cfg.width >= 1 && cfg.height >= 1, "degenerate mesh");
        Mesh { cfg }
    }

    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    pub fn width(&self) -> u16 {
        self.cfg.width
    }

    pub fn height(&self) -> u16 {
        self.cfg.height
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes()
    }

    /// Total number of directed links, the `L` of route signatures.
    pub fn num_links(&self) -> usize {
        let w = self.cfg.width as usize;
        let h = self.cfg.height as usize;
        // Horizontal: (w-1)*h in each direction; vertical: w*(h-1) each.
        2 * ((w - 1) * h + w * (h - 1))
    }

    fn east_count(&self) -> u32 {
        (self.cfg.width as u32 - 1) * self.cfg.height as u32
    }

    fn south_count(&self) -> u32 {
        self.cfg.width as u32 * (self.cfg.height as u32 - 1)
    }

    /// The directed link from `a` to the adjacent node `b`.
    ///
    /// # Panics
    /// Panics if `a` and `b` are not mesh-adjacent.
    pub fn link_between(&self, a: Coord, b: Coord) -> LinkId {
        let w1 = self.cfg.width as u32 - 1;
        let h1 = self.cfg.height as u32 - 1;
        let (ax, ay, bx, by) = (a.x as u32, a.y as u32, b.x as u32, b.y as u32);
        let east = self.east_count();
        let south = self.south_count();
        if by == ay && bx == ax + 1 {
            // East block: indexed by (row, column-of-left-node).
            LinkId(ay * w1 + ax)
        } else if by == ay && bx + 1 == ax {
            // West block.
            LinkId(east + ay * w1 + bx)
        } else if bx == ax && by == ay + 1 {
            // South block: indexed by (column, row-of-top-node).
            LinkId(2 * east + ax * h1 + ay)
        } else if bx == ax && by + 1 == ay {
            // North block.
            LinkId(2 * east + south + ax * h1 + by)
        } else {
            panic!("link_between: {a} and {b} are not adjacent");
        }
    }

    /// Inverse of [`Mesh::link_between`]: the (from, to) endpoints.
    pub fn link_endpoints(&self, l: LinkId) -> (Coord, Coord) {
        let w1 = self.cfg.width as u32 - 1;
        let h1 = self.cfg.height as u32 - 1;
        let east = self.east_count();
        let south = self.south_count();
        let i = l.0;
        if i < east {
            let (y, x) = (i / w1, i % w1);
            (
                Coord::new(x as u16, y as u16),
                Coord::new(x as u16 + 1, y as u16),
            )
        } else if i < 2 * east {
            let j = i - east;
            let (y, x) = (j / w1, j % w1);
            (
                Coord::new(x as u16 + 1, y as u16),
                Coord::new(x as u16, y as u16),
            )
        } else if i < 2 * east + south {
            let j = i - 2 * east;
            let (x, y) = (j / h1, j % h1);
            (
                Coord::new(x as u16, y as u16),
                Coord::new(x as u16, y as u16 + 1),
            )
        } else {
            let j = i - 2 * east - south;
            let (x, y) = (j / h1, j % h1);
            (
                Coord::new(x as u16, y as u16 + 1),
                Coord::new(x as u16, y as u16),
            )
        }
    }

    /// The router a message sits in after traversing `l`: the link's
    /// downstream endpoint. NDC link-buffer computations happen at this
    /// router's buffer.
    pub fn link_router(&self, l: LinkId) -> NodeId {
        let (_, to) = self.link_endpoints(l);
        NodeId::from_coord(to, self.cfg.width)
    }

    /// Static XY (dimension-ordered) route: travel along X first, then
    /// Y. This is the baseline routing of the simulated machine
    /// (Table 1: "XY-routing").
    pub fn xy_route(&self, src: Coord, dst: Coord) -> Route {
        let mut links = Vec::with_capacity(src.manhattan(dst) as usize);
        let mut at = src;
        while at.x != dst.x {
            let next = if dst.x > at.x {
                Coord::new(at.x + 1, at.y)
            } else {
                Coord::new(at.x - 1, at.y)
            };
            links.push(self.link_between(at, next));
            at = next;
        }
        while at.y != dst.y {
            let next = if dst.y > at.y {
                Coord::new(at.x, at.y + 1)
            } else {
                Coord::new(at.x, at.y - 1)
            };
            links.push(self.link_between(at, next));
            at = next;
        }
        Route { src, dst, links }
    }

    /// Build a route from an explicit node sequence (used by the
    /// compiler's reshaped routes). Consecutive coordinates must be
    /// adjacent.
    pub fn route_via(&self, path: &[Coord]) -> Route {
        assert!(!path.is_empty());
        let mut links = Vec::with_capacity(path.len().saturating_sub(1));
        for pair in path.windows(2) {
            links.push(self.link_between(pair[0], pair[1]));
        }
        Route {
            src: path[0],
            dst: *path.last().unwrap(),
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh5() -> Mesh {
        Mesh::new(NocConfig {
            width: 5,
            height: 5,
            link_bytes: 16,
            hop_cycles: 3,
        })
    }

    #[test]
    fn link_count_for_5x5() {
        // 5x5 mesh: 4*5=20 east + 20 west + 20 south + 20 north = 80.
        assert_eq!(mesh5().num_links(), 80);
    }

    #[test]
    fn link_ids_are_dense_and_invertible() {
        let m = mesh5();
        let mut seen = std::collections::HashSet::new();
        for y in 0..5u16 {
            for x in 0..5u16 {
                let a = Coord::new(x, y);
                for (dx, dy) in [(1i32, 0i32), (-1, 0), (0, 1), (0, -1)] {
                    let nx = x as i32 + dx;
                    let ny = y as i32 + dy;
                    if nx < 0 || ny < 0 || nx >= 5 || ny >= 5 {
                        continue;
                    }
                    let b = Coord::new(nx as u16, ny as u16);
                    let l = m.link_between(a, b);
                    assert!(l.index() < m.num_links(), "id {l:?} out of range");
                    assert!(seen.insert(l), "duplicate link id {l:?}");
                    assert_eq!(m.link_endpoints(l), (a, b));
                }
            }
        }
        assert_eq!(seen.len(), m.num_links());
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let m = mesh5();
        let r = m.xy_route(Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(r.hops(), 4);
        // First two hops move east along row 0, then two south.
        let (f0, t0) = m.link_endpoints(r.links[0]);
        assert_eq!((f0, t0), (Coord::new(0, 0), Coord::new(1, 0)));
        let (f3, t3) = m.link_endpoints(r.links[3]);
        assert_eq!((f3, t3), (Coord::new(2, 1), Coord::new(2, 2)));
    }

    #[test]
    fn xy_route_handles_negative_directions() {
        let m = mesh5();
        let r = m.xy_route(Coord::new(4, 4), Coord::new(1, 0));
        assert_eq!(r.hops(), 7);
        let mut at = Coord::new(4, 4);
        for &l in &r.links {
            let (from, to) = m.link_endpoints(l);
            assert_eq!(from, at);
            at = to;
        }
        assert_eq!(at, Coord::new(1, 0));
    }

    #[test]
    fn self_route_is_empty() {
        let m = mesh5();
        let r = m.xy_route(Coord::new(2, 2), Coord::new(2, 2));
        assert!(r.links.is_empty());
    }

    #[test]
    fn route_via_custom_path() {
        let m = mesh5();
        // A YX-ish detour path from (0,0) to (1,1).
        let r = m.route_via(&[Coord::new(0, 0), Coord::new(0, 1), Coord::new(1, 1)]);
        assert_eq!(r.hops(), 2);
        assert_eq!(r.src, Coord::new(0, 0));
        assert_eq!(r.dst, Coord::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn non_adjacent_link_panics() {
        mesh5().link_between(Coord::new(0, 0), Coord::new(2, 0));
    }

    #[test]
    fn link_router_is_downstream() {
        let m = mesh5();
        let l = m.link_between(Coord::new(1, 1), Coord::new(2, 1));
        assert_eq!(m.link_router(l), NodeId::from_coord(Coord::new(2, 1), 5));
    }
}
