//! Dynamic network state: contended-link message traversal.
//!
//! Each directed link keeps a `busy_until` horizon. A message entering a
//! link waits until the link frees, occupies it for
//! `⌈bytes / link_bytes⌉` cycles (16-byte links, Table 1), and pays the
//! router pipeline (`hop_cycles`, 3 by default) to move to the next
//! router. The per-link entry timestamps are returned so the simulator's
//! instrumentation can compute link-buffer arrival windows: two operands
//! co-locate at a router when their messages traverse a common link, and
//! the window is the gap between their entry times.

use crate::mesh::{LinkId, Mesh, Route};
use ndc_types::{Cycle, NodeId, WindowHistogram};

/// Timestamp record for one link of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraversal {
    pub link: LinkId,
    /// Cycle at which the message entered the link's buffer (after any
    /// queueing delay).
    pub enter: Cycle,
    /// Cycle at which the message left the downstream router.
    pub exit: Cycle,
    /// The downstream router — where an NDC link-buffer ALU could
    /// operate on the message.
    pub router: NodeId,
}

/// Full record of one message traversal.
#[derive(Debug, Clone, Default)]
pub struct TraversalRecord {
    pub links: Vec<LinkTraversal>,
    pub departed: Cycle,
    pub arrived: Cycle,
    /// Link occupancy paid per hop times hops crossed: the message's
    /// flit-hop cost. Zero for a zero-hop route. Computed by the same
    /// `traverse` that paid the cost, so attribution ledgers charging
    /// from this record can never drift from the network's own total.
    pub flit_hops: u64,
}

impl TraversalRecord {
    /// Total network latency including queueing.
    pub fn latency(&self) -> Cycle {
        self.arrived - self.departed
    }
}

/// Per-directed-link observability: how often the link carried a
/// message, how long it was occupied, and the distribution of queueing
/// delays messages suffered waiting for it.
#[derive(Debug, Clone, Default)]
pub struct LinkObs {
    /// Messages that crossed this link.
    pub traversals: u64,
    /// Cycles the link spent serializing message bodies (occupancy).
    pub busy_cycles: u64,
    /// Distribution of per-message queueing delays at this link, over
    /// the paper's window buckets (0-delay messages land in bucket "1").
    pub queue_delay: WindowHistogram,
}

/// Mutable network state: one busy-horizon per directed link.
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    busy_until: Vec<Cycle>,
    /// Total messages injected (stats).
    pub messages: u64,
    /// Total link-cycles of queueing delay suffered (stats).
    pub queueing_cycles: u64,
    /// Total flit-hops carried (occupancy × hops, summed per message).
    pub flit_hops: u64,
    /// Per-link telemetry; `None` (the default) keeps `traverse` on its
    /// original path apart from one branch.
    obs: Option<Vec<LinkObs>>,
    /// Flit-level occupancy log for the invariant checker: one
    /// `(link, enter, exit)` tuple per hop of every traversal, in
    /// traversal order. `None` (the default) costs one branch.
    check_log: Option<Vec<(LinkId, Cycle, Cycle)>>,
}

impl Network {
    pub fn new(mesh: Mesh) -> Self {
        let n = mesh.num_links();
        Network {
            mesh,
            busy_until: vec![0; n],
            messages: 0,
            queueing_cycles: 0,
            flit_hops: 0,
            obs: None,
            check_log: None,
        }
    }

    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Switch on per-link telemetry (idempotent).
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(vec![LinkObs::default(); self.mesh.num_links()]);
        }
    }

    /// Per-link telemetry, if enabled. Indexed by `LinkId::index()`.
    pub fn link_obs(&self) -> Option<&[LinkObs]> {
        self.obs.as_deref()
    }

    /// Switch on the flit-level occupancy log (idempotent). Unlike
    /// [`Network::enable_obs`] this is unbounded — it exists for the
    /// invariant checker, which needs every enter/exit pair to prove
    /// per-link occupancy drains to zero.
    pub fn enable_check_log(&mut self) {
        if self.check_log.is_none() {
            self.check_log = Some(Vec::new());
        }
    }

    /// The flit log, if enabled: `(link, enter, exit)` per hop.
    pub fn check_log(&self) -> Option<&[(LinkId, Cycle, Cycle)]> {
        self.check_log.as_deref()
    }

    /// Drain the flit log (leaves logging enabled).
    pub fn take_check_log(&mut self) -> Vec<(LinkId, Cycle, Cycle)> {
        self.check_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Send a message of `bytes` bytes along `route`, starting at cycle
    /// `start`. Returns the per-link timing record. A zero-hop route
    /// (source == destination) arrives instantly.
    pub fn traverse(&mut self, route: &Route, start: Cycle, bytes: u64) -> TraversalRecord {
        let hop = self.mesh.config().hop_cycles;
        let occupancy = bytes.div_ceil(self.mesh.config().link_bytes).max(1);
        let mut t = start;
        let mut rec = TraversalRecord {
            links: Vec::with_capacity(route.links.len()),
            departed: start,
            arrived: start,
            flit_hops: occupancy * route.links.len() as u64,
        };
        self.messages += 1;
        self.flit_hops += rec.flit_hops;
        for &l in &route.links {
            let free_at = self.busy_until[l.index()];
            let enter = t.max(free_at);
            self.queueing_cycles += enter - t;
            if let Some(obs) = &mut self.obs {
                let lo = &mut obs[l.index()];
                lo.traversals += 1;
                lo.busy_cycles += occupancy;
                lo.queue_delay.record(Some(enter - t));
            }
            // Serialize the message body over the link.
            self.busy_until[l.index()] = enter + occupancy;
            // The head reaches the next router after the pipeline delay.
            let exit = enter + hop;
            if let Some(log) = &mut self.check_log {
                log.push((l, enter, exit));
            }
            rec.links.push(LinkTraversal {
                link: l,
                enter,
                exit,
                router: self.mesh.link_router(l),
            });
            t = exit;
        }
        rec.arrived = t;
        rec
    }

    /// Latency of an uncontended traversal of `hops` hops (used for
    /// static compiler estimates).
    pub fn uncontended_latency(&self, hops: u32) -> Cycle {
        hops as Cycle * self.mesh.config().hop_cycles
    }

    /// Frozen busy-horizon of one directed link, for lane planners that
    /// plan traversals against an epoch-start snapshot (the live vector
    /// is not mutated during a parallel phase, so a shared reference to
    /// the `Network` *is* the snapshot).
    pub fn horizon(&self, l: LinkId) -> Cycle {
        self.busy_until[l.index()]
    }

    /// Max-merge a planned occupancy into the live horizon. Used by
    /// [`crate::lane::LanePlanner::commit`]: the merged horizon is the
    /// max over the frozen value and every lane's overlay, which is
    /// commutative — commit order across lanes cannot change the result.
    pub fn raise_horizon(&mut self, l: LinkId, until: Cycle) {
        let h = &mut self.busy_until[l.index()];
        *h = (*h).max(until);
    }

    /// Fold planned traffic counters in at commit time.
    pub fn add_traffic(&mut self, messages: u64, queueing_cycles: u64, flit_hops: u64) {
        self.messages += messages;
        self.queueing_cycles += queueing_cycles;
        self.flit_hops += flit_hops;
    }

    /// Record one planned per-link telemetry sample (no-op when obs is
    /// disabled; counter sums and histogram bucket increments are
    /// commutative across lanes).
    pub fn record_obs_sample(&mut self, l: LinkId, occupancy: u64, delay: Cycle) {
        if let Some(obs) = &mut self.obs {
            let lo = &mut obs[l.index()];
            lo.traversals += 1;
            lo.busy_cycles += occupancy;
            lo.queue_delay.record(Some(delay));
        }
    }

    /// Append one planned flit tuple to the occupancy log (no-op when
    /// the check log is disabled).
    pub fn log_flit(&mut self, l: LinkId, enter: Cycle, exit: Cycle) {
        if let Some(log) = &mut self.check_log {
            log.push((l, enter, exit));
        }
    }

    /// Whether per-link telemetry is on (planners skip sample capture
    /// otherwise).
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Whether the flit occupancy log is on.
    pub fn check_log_enabled(&self) -> bool {
        self.check_log.is_some()
    }

    /// Reset all busy horizons (between independent simulations).
    pub fn reset(&mut self) {
        self.busy_until.fill(0);
        self.messages = 0;
        self.queueing_cycles = 0;
        self.flit_hops = 0;
        if let Some(obs) = &mut self.obs {
            obs.fill(LinkObs::default());
        }
        if let Some(log) = &mut self.check_log {
            log.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_types::{Coord, NocConfig};

    fn net() -> Network {
        Network::new(Mesh::new(NocConfig {
            width: 5,
            height: 5,
            link_bytes: 16,
            hop_cycles: 3,
        }))
    }

    #[test]
    fn uncontended_latency_is_hops_times_pipeline() {
        let mut n = net();
        let mesh = n.mesh().clone();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(3, 0));
        let rec = n.traverse(&r, 100, 16);
        assert_eq!(rec.departed, 100);
        assert_eq!(rec.arrived, 100 + 3 * 3);
        assert_eq!(rec.latency(), 9);
        assert_eq!(rec.links.len(), 3);
        assert_eq!(rec.links[0].enter, 100);
        assert_eq!(rec.links[0].exit, 103);
        assert_eq!(rec.links[2].enter, 106);
    }

    #[test]
    fn zero_hop_route_is_free() {
        let mut n = net();
        let mesh = n.mesh().clone();
        let r = mesh.xy_route(Coord::new(2, 2), Coord::new(2, 2));
        let rec = n.traverse(&r, 42, 64);
        assert_eq!(rec.arrived, 42);
        assert!(rec.links.is_empty());
        assert_eq!(rec.flit_hops, 0);
        assert_eq!(n.flit_hops, 0);
        assert_eq!(n.messages, 1);
    }

    #[test]
    fn contention_serializes_messages() {
        let mut n = net();
        let mesh = n.mesh().clone();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(1, 0));
        // A 64-byte message occupies the 16-byte link for 4 cycles.
        let first = n.traverse(&r, 0, 64);
        assert_eq!(first.links[0].enter, 0);
        // A second message at the same cycle must wait for the link.
        let second = n.traverse(&r, 0, 64);
        assert_eq!(second.links[0].enter, 4);
        assert_eq!(second.arrived, 4 + 3);
        assert_eq!(n.queueing_cycles, 4);
        assert_eq!(n.messages, 2);
        // Two 4-cycle occupancies over one link each.
        assert_eq!(first.flit_hops, 4);
        assert_eq!(n.flit_hops, 8);
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut n = net();
        let mesh = n.mesh().clone();
        let r1 = mesh.xy_route(Coord::new(0, 0), Coord::new(1, 0));
        let r2 = mesh.xy_route(Coord::new(0, 1), Coord::new(1, 1));
        n.traverse(&r1, 0, 64);
        let rec = n.traverse(&r2, 0, 64);
        assert_eq!(rec.links[0].enter, 0);
        assert_eq!(n.queueing_cycles, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut n = net();
        let mesh = n.mesh().clone();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(1, 0));
        n.traverse(&r, 0, 64);
        n.reset();
        let rec = n.traverse(&r, 0, 64);
        assert_eq!(rec.links[0].enter, 0);
        assert_eq!(n.messages, 1);
    }

    #[test]
    fn link_obs_records_occupancy_and_queue_delay() {
        let mut n = net();
        let mesh = n.mesh().clone();
        // Disabled by default: no per-link state allocated.
        assert!(n.link_obs().is_none());
        n.enable_obs();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(1, 0));
        n.traverse(&r, 0, 64); // occupies the link 4 cycles
        n.traverse(&r, 0, 64); // queues 4 cycles behind it
        let obs = n.link_obs().unwrap();
        let l = r.links[0].index();
        assert_eq!(obs[l].traversals, 2);
        assert_eq!(obs[l].busy_cycles, 8);
        assert_eq!(obs[l].queue_delay.total(), 2);
        assert_eq!(obs[l].queue_delay.count(0), 1); // 0-cycle delay
        assert_eq!(obs[l].queue_delay.count(1), 1); // 4-cycle delay
                                                    // Untouched links recorded nothing.
        let quiet = obs.iter().filter(|o| o.traversals == 0).count();
        assert_eq!(quiet, obs.len() - 1);
        // Timing is identical with obs on: same result as the
        // contention_serializes_messages test.
        assert_eq!(n.queueing_cycles, 4);
        n.reset();
        assert_eq!(n.link_obs().unwrap()[l].traversals, 0);
    }

    #[test]
    fn check_log_records_every_hop_and_timing_is_unchanged() {
        let mut n = net();
        let mesh = n.mesh().clone();
        assert!(n.check_log().is_none());
        n.enable_check_log();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(3, 0));
        let rec = n.traverse(&r, 100, 16);
        // Same timing as the uncontended_latency test: logging is
        // observation-only.
        assert_eq!(rec.arrived, 109);
        let log = n.check_log().unwrap();
        assert_eq!(log.len(), 3);
        for (hop, &(link, enter, exit)) in log.iter().enumerate() {
            assert_eq!(link, rec.links[hop].link);
            assert_eq!(enter, rec.links[hop].enter);
            assert_eq!(exit, rec.links[hop].exit);
            assert!(enter <= exit);
        }
        assert_eq!(n.take_check_log().len(), 3);
        assert_eq!(n.check_log().unwrap().len(), 0);
        n.traverse(&r, 0, 16);
        assert_eq!(n.check_log().unwrap().len(), 3);
        n.reset();
        assert!(n.check_log().unwrap().is_empty());
    }

    #[test]
    fn router_of_each_hop_is_downstream_node() {
        let mut n = net();
        let mesh = n.mesh().clone();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(0, 2));
        let rec = n.traverse(&r, 0, 16);
        assert_eq!(rec.links[0].router, NodeId::from_coord(Coord::new(0, 1), 5));
        assert_eq!(rec.links[1].router, NodeId::from_coord(Coord::new(0, 2), 5));
    }
}
