//! 2D-mesh network-on-chip substrate.
//!
//! This crate builds the on-chip network the paper's manycore assumes
//! (§2): a `w × h` mesh with static XY routing, 16-byte links, and a
//! 3-cycle router pipeline. Beyond plain routing it implements the
//! route-*signature* machinery of §5.2.1 (third challenge): every
//! minimal path between two nodes is an `L`-bit link set, and the
//! compiler may pick, among the minimal paths of two different accesses,
//! the pair of signatures maximizing the number of common links — each
//! common link is an opportunity to perform the computation at the
//! associated router.
//!
//! The dynamic side ([`Network`]) is a contended-link latency model:
//! each directed link has a `busy_until` horizon; messages serialize on
//! links (occupancy = ⌈bytes / link width⌉ cycles) and pay the router
//! pipeline per hop. This produces realistic queueing-driven jitter in
//! operand arrival times — the raw material of the paper's
//! arrival-window study — without flit-level simulation cost.

pub mod lane;
pub mod mesh;
pub mod network;
pub mod signature;

pub use lane::LanePlanner;
pub use mesh::{LinkId, Mesh, Route};
pub use network::{LinkObs, LinkTraversal, Network, TraversalRecord};
pub use signature::{best_signature_pair, minimal_routes, RouteSignature, SignaturePair};

#[cfg(test)]
mod proptests {
    //! Seeded-loop property tests (in-tree PRNG, no external framework):
    //! each test draws ≥256 random cases from a fixed seed, so failures
    //! reproduce exactly and the suite runs offline.

    use super::*;
    use ndc_types::{Coord, NocConfig, SplitMix64};

    const CASES: u64 = 256;

    fn cfg() -> NocConfig {
        NocConfig {
            width: 6,
            height: 6,
            link_bytes: 16,
            hop_cycles: 3,
        }
    }

    fn coord(g: &mut SplitMix64, bound: u64) -> Coord {
        Coord::new(g.below(bound) as u16, g.below(bound) as u16)
    }

    /// XY routes are minimal: hop count equals Manhattan distance.
    #[test]
    fn xy_routes_are_minimal() {
        let mesh = Mesh::new(cfg());
        let mut g = SplitMix64::new(0x10c1);
        for _ in 0..CASES {
            let (s, d) = (coord(&mut g, 6), coord(&mut g, 6));
            let route = mesh.xy_route(s, d);
            assert_eq!(route.links.len() as u32, s.manhattan(d), "{s:?}->{d:?}");
        }
    }

    /// Every link of an XY route connects adjacent nodes and the
    /// route is connected from source to destination.
    #[test]
    fn xy_routes_are_connected() {
        let mesh = Mesh::new(cfg());
        let mut g = SplitMix64::new(0x10c2);
        for _ in 0..CASES {
            let (s, d) = (coord(&mut g, 6), coord(&mut g, 6));
            let route = mesh.xy_route(s, d);
            let mut at = s;
            for &l in &route.links {
                let (from, to) = mesh.link_endpoints(l);
                assert_eq!(from, at, "{s:?}->{d:?}");
                assert_eq!(from.manhattan(to), 1);
                at = to;
            }
            assert_eq!(at, d, "{s:?}->{d:?}");
        }
    }

    /// A route signature has exactly one bit per hop.
    #[test]
    fn signatures_have_hop_many_bits() {
        let mesh = Mesh::new(cfg());
        let mut g = SplitMix64::new(0x10c3);
        for _ in 0..CASES {
            let (s, d) = (coord(&mut g, 6), coord(&mut g, 6));
            let route = mesh.xy_route(s, d);
            let sig = RouteSignature::from_route(&mesh, &route);
            assert_eq!(sig.count_ones(), route.links.len() as u32, "{s:?}->{d:?}");
        }
    }

    /// All enumerated minimal routes have the same (minimal) length
    /// and their count equals the binomial coefficient C(dx+dy, dx).
    #[test]
    fn minimal_route_enumeration_is_complete() {
        let mesh = Mesh::new(cfg());
        let mut g = SplitMix64::new(0x10c4);
        for _ in 0..CASES {
            let (s, d) = (coord(&mut g, 5), coord(&mut g, 5));
            let routes = minimal_routes(&mesh, s, d);
            let ddx = (s.x as i64 - d.x as i64).unsigned_abs();
            let ddy = (s.y as i64 - d.y as i64).unsigned_abs();
            let expect = binomial(ddx + ddy, ddx.min(ddy));
            assert_eq!(routes.len() as u64, expect, "{s:?}->{d:?}");
            for r in &routes {
                assert_eq!(r.links.len() as u32, s.manhattan(d), "{s:?}->{d:?}");
            }
        }
    }

    /// Non-square meshes (width ≠ height): XY routes stay minimal and
    /// connected, `link_endpoints` inverts `link_between`, and link ids
    /// stay inside `num_links`. Guards the 16×16 scale-up work against
    /// any width/height transposition bug in the 4-block link numbering
    /// (square meshes cannot distinguish `w` from `h`).
    #[test]
    fn nonsquare_meshes_route_and_number_links_consistently() {
        let mut g = SplitMix64::new(0x10c7);
        for _ in 0..CASES {
            let w = 2 + g.below(15) as u16;
            let mut h = 2 + g.below(15) as u16;
            if h == w {
                h = if w == 16 { 2 } else { w + 1 };
            }
            let mesh = Mesh::new(NocConfig {
                width: w,
                height: h,
                link_bytes: 16,
                hop_cycles: 3,
            });
            let s = Coord::new(g.below(w as u64) as u16, g.below(h as u64) as u16);
            let d = Coord::new(g.below(w as u64) as u16, g.below(h as u64) as u16);
            let route = mesh.xy_route(s, d);
            assert_eq!(
                route.links.len() as u32,
                s.manhattan(d),
                "{w}x{h} {s:?}->{d:?}"
            );
            let mut at = s;
            for &l in &route.links {
                assert!(l.index() < mesh.num_links(), "{w}x{h}: id out of range");
                let (from, to) = mesh.link_endpoints(l);
                assert_eq!(from, at, "{w}x{h} {s:?}->{d:?}");
                assert_eq!(from.manhattan(to), 1);
                assert_eq!(
                    mesh.link_between(from, to),
                    l,
                    "{w}x{h}: endpoints roundtrip"
                );
                at = to;
            }
            assert_eq!(at, d, "{w}x{h} {s:?}->{d:?}");
        }
    }

    /// The chosen signature pair shares at least as many links as the
    /// plain XY pair (the compiler's reshaping never loses overlap).
    #[test]
    fn best_pair_at_least_xy_overlap() {
        let mesh = Mesh::new(cfg());
        let mut g = SplitMix64::new(0x10c5);
        for _ in 0..CASES {
            let (a, b) = (coord(&mut g, 5), coord(&mut g, 5));
            let (c, e) = (coord(&mut g, 5), coord(&mut g, 5));
            let xy1 = RouteSignature::from_route(&mesh, &mesh.xy_route(a, b));
            let xy2 = RouteSignature::from_route(&mesh, &mesh.xy_route(c, e));
            let xy_common = xy1.and(&xy2).count_ones();
            let best = best_signature_pair(&mesh, a, b, c, e);
            assert!(
                best.common_links >= xy_common,
                "{a:?}->{b:?} / {c:?}->{e:?}: {} < {xy_common}",
                best.common_links
            );
        }
    }

    fn binomial(n: u64, k: u64) -> u64 {
        let mut acc = 1u64;
        for i in 0..k {
            acc = acc * (n - i) / (i + 1);
        }
        acc
    }
}
