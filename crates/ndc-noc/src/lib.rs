//! 2D-mesh network-on-chip substrate.
//!
//! This crate builds the on-chip network the paper's manycore assumes
//! (§2): a `w × h` mesh with static XY routing, 16-byte links, and a
//! 3-cycle router pipeline. Beyond plain routing it implements the
//! route-*signature* machinery of §5.2.1 (third challenge): every
//! minimal path between two nodes is an `L`-bit link set, and the
//! compiler may pick, among the minimal paths of two different accesses,
//! the pair of signatures maximizing the number of common links — each
//! common link is an opportunity to perform the computation at the
//! associated router.
//!
//! The dynamic side ([`Network`]) is a contended-link latency model:
//! each directed link has a `busy_until` horizon; messages serialize on
//! links (occupancy = ⌈bytes / link width⌉ cycles) and pay the router
//! pipeline per hop. This produces realistic queueing-driven jitter in
//! operand arrival times — the raw material of the paper's
//! arrival-window study — without flit-level simulation cost.

pub mod mesh;
pub mod network;
pub mod signature;

pub use mesh::{LinkId, Mesh, Route};
pub use network::{LinkTraversal, Network, TraversalRecord};
pub use signature::{best_signature_pair, minimal_routes, RouteSignature, SignaturePair};

#[cfg(test)]
mod proptests {
    use super::*;
    use ndc_types::{Coord, NocConfig};
    use proptest::prelude::*;

    fn cfg() -> NocConfig {
        NocConfig {
            width: 6,
            height: 6,
            link_bytes: 16,
            hop_cycles: 3,
        }
    }

    proptest! {
        /// XY routes are minimal: hop count equals Manhattan distance.
        #[test]
        fn xy_routes_are_minimal(sx in 0u16..6, sy in 0u16..6, dx in 0u16..6, dy in 0u16..6) {
            let mesh = Mesh::new(cfg());
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            let route = mesh.xy_route(s, d);
            prop_assert_eq!(route.links.len() as u32, s.manhattan(d));
        }

        /// Every link of an XY route connects adjacent nodes and the
        /// route is connected from source to destination.
        #[test]
        fn xy_routes_are_connected(sx in 0u16..6, sy in 0u16..6, dx in 0u16..6, dy in 0u16..6) {
            let mesh = Mesh::new(cfg());
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            let route = mesh.xy_route(s, d);
            let mut at = s;
            for &l in &route.links {
                let (from, to) = mesh.link_endpoints(l);
                prop_assert_eq!(from, at);
                prop_assert_eq!(from.manhattan(to), 1);
                at = to;
            }
            prop_assert_eq!(at, d);
        }

        /// A route signature has exactly one bit per hop.
        #[test]
        fn signatures_have_hop_many_bits(sx in 0u16..6, sy in 0u16..6, dx in 0u16..6, dy in 0u16..6) {
            let mesh = Mesh::new(cfg());
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            let route = mesh.xy_route(s, d);
            let sig = RouteSignature::from_route(&mesh, &route);
            prop_assert_eq!(sig.count_ones(), route.links.len() as u32);
        }

        /// All enumerated minimal routes have the same (minimal) length
        /// and their count equals the binomial coefficient C(dx+dy, dx).
        #[test]
        fn minimal_route_enumeration_is_complete(sx in 0u16..5, sy in 0u16..5, dx in 0u16..5, dy in 0u16..5) {
            let mesh = Mesh::new(cfg());
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            let routes = minimal_routes(&mesh, s, d);
            let ddx = (sx as i64 - dx as i64).unsigned_abs();
            let ddy = (sy as i64 - dy as i64).unsigned_abs();
            let expect = binomial(ddx + ddy, ddx.min(ddy));
            prop_assert_eq!(routes.len() as u64, expect);
            for r in &routes {
                prop_assert_eq!(r.links.len() as u32, s.manhattan(d));
            }
        }

        /// The chosen signature pair shares at least as many links as the
        /// plain XY pair (the compiler's reshaping never loses overlap).
        #[test]
        fn best_pair_at_least_xy_overlap(
            ax in 0u16..5, ay in 0u16..5, bx in 0u16..5, by in 0u16..5,
            cx in 0u16..5, cy in 0u16..5, ex in 0u16..5, ey in 0u16..5,
        ) {
            let mesh = Mesh::new(cfg());
            let (a, b) = (Coord::new(ax, ay), Coord::new(bx, by));
            let (c, e) = (Coord::new(cx, cy), Coord::new(ex, ey));
            let xy1 = RouteSignature::from_route(&mesh, &mesh.xy_route(a, b));
            let xy2 = RouteSignature::from_route(&mesh, &mesh.xy_route(c, e));
            let xy_common = xy1.and(&xy2).count_ones();
            let best = best_signature_pair(&mesh, a, b, c, e);
            prop_assert!(best.common_links >= xy_common);
        }
    }

    fn binomial(n: u64, k: u64) -> u64 {
        let mut acc = 1u64;
        for i in 0..k {
            acc = acc * (n - i) / (i + 1);
        }
        acc
    }
}
