//! Lane-local link progress for the epoch-barriered parallel engine.
//!
//! Each simulation *lane* (a shard of the machine: a group of L2 home
//! banks or one memory controller) plans its epoch's message traversals
//! against a **frozen** snapshot of the live [`Network`] horizons plus a
//! private overlay of what the lane itself has sent this epoch. No
//! shared link state is written during a parallel phase; at the epoch
//! barrier every planner [`commit`](LanePlanner::commit)s its overlay
//! back with a per-link **max-merge** — commutative, so the committed
//! horizons are identical for any lane count and any commit order.
//!
//! The overlay is epoch-tagged and lazily reset: `begin_epoch` is O(1)
//! and a link's overlay entry is live only when its tag matches the
//! current epoch, so a planner touching k links per epoch costs O(k),
//! not O(num_links).

use crate::mesh::{LinkId, Route};
use crate::network::{LinkTraversal, Network, TraversalRecord};
use ndc_types::Cycle;

/// A lane's private view of link horizons: frozen network snapshot plus
/// an epoch-tagged overlay of the lane's own planned traffic.
#[derive(Debug)]
pub struct LanePlanner {
    epoch: u32,
    /// Overlay validity tag per link: the overlay value is live iff
    /// `tag[l] == epoch`.
    tag: Vec<u32>,
    /// Overlay horizon per link (meaningful only when the tag matches).
    overlay: Vec<Cycle>,
    /// Links touched this epoch (each at most once), for commit.
    touched: Vec<u32>,
    /// Planned traffic counters since the last commit.
    messages: u64,
    queueing_cycles: u64,
    flit_hops: u64,
    /// Planned per-hop telemetry samples `(link, occupancy, delay)`,
    /// captured only when the live network has obs enabled.
    obs_log: Vec<(LinkId, u64, Cycle)>,
    /// Planned flit tuples `(link, enter, exit)`, captured only when
    /// the live network has its check log enabled.
    flit_log: Vec<(LinkId, Cycle, Cycle)>,
}

impl LanePlanner {
    pub fn new(num_links: usize) -> Self {
        LanePlanner {
            epoch: 0,
            tag: vec![u32::MAX; num_links],
            overlay: vec![0; num_links],
            touched: Vec::new(),
            messages: 0,
            queueing_cycles: 0,
            flit_hops: 0,
            obs_log: Vec::new(),
            flit_log: Vec::new(),
        }
    }

    /// Start a new epoch: forget the overlay in O(1) (the tag bump
    /// invalidates every entry lazily).
    pub fn begin_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.touched.clear();
        debug_assert!(self.messages == 0, "uncommitted planner traffic");
    }

    fn horizon(&self, frozen: &Network, l: LinkId) -> Cycle {
        let i = l.index();
        let over = if self.tag[i] == self.epoch {
            self.overlay[i]
        } else {
            0
        };
        frozen.horizon(l).max(over)
    }

    fn raise(&mut self, l: LinkId, until: Cycle) {
        let i = l.index();
        if self.tag[i] != self.epoch {
            self.tag[i] = self.epoch;
            self.overlay[i] = until;
            self.touched.push(l.0);
        } else {
            self.overlay[i] = self.overlay[i].max(until);
        }
    }

    /// Plan a traversal of `bytes` along `route` starting at `start`:
    /// the same enter/occupancy/exit arithmetic as
    /// [`Network::traverse`], but against the frozen horizons plus this
    /// lane's overlay, with all side effects kept lane-local until
    /// [`commit`](LanePlanner::commit).
    pub fn traverse(
        &mut self,
        frozen: &Network,
        route: &Route,
        start: Cycle,
        bytes: u64,
    ) -> TraversalRecord {
        let hop = frozen.mesh().config().hop_cycles;
        let occupancy = bytes.div_ceil(frozen.mesh().config().link_bytes).max(1);
        let mut t = start;
        let mut rec = TraversalRecord {
            links: Vec::with_capacity(route.links.len()),
            departed: start,
            arrived: start,
            flit_hops: occupancy * route.links.len() as u64,
        };
        self.messages += 1;
        self.flit_hops += rec.flit_hops;
        for &l in &route.links {
            let enter = t.max(self.horizon(frozen, l));
            self.queueing_cycles += enter - t;
            if frozen.obs_enabled() {
                self.obs_log.push((l, occupancy, enter - t));
            }
            self.raise(l, enter + occupancy);
            let exit = enter + hop;
            if frozen.check_log_enabled() {
                self.flit_log.push((l, enter, exit));
            }
            rec.links.push(LinkTraversal {
                link: l,
                enter,
                exit,
                router: frozen.mesh().link_router(l),
            });
            t = exit;
        }
        rec.arrived = t;
        rec
    }

    /// Commit the epoch's planned traffic into the live network:
    /// max-merge horizons, sum counters, append telemetry and flits.
    /// Horizon and counter merges are commutative; the flit/obs logs
    /// are appended in whatever order the caller commits planners, so
    /// the caller must iterate shards in a fixed order for byte-stable
    /// logs.
    pub fn commit(&mut self, net: &mut Network) {
        for &raw in &self.touched {
            let l = LinkId(raw);
            net.raise_horizon(l, self.overlay[l.index()]);
        }
        self.touched.clear();
        net.add_traffic(self.messages, self.queueing_cycles, self.flit_hops);
        self.messages = 0;
        self.queueing_cycles = 0;
        self.flit_hops = 0;
        for (l, occ, delay) in self.obs_log.drain(..) {
            net.record_obs_sample(l, occ, delay);
        }
        for (l, enter, exit) in self.flit_log.drain(..) {
            net.log_flit(l, enter, exit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;
    use ndc_types::{Coord, NocConfig};

    fn net() -> Network {
        Network::new(Mesh::new(NocConfig {
            width: 5,
            height: 5,
            link_bytes: 16,
            hop_cycles: 3,
        }))
    }

    #[test]
    fn planned_traversal_matches_live_traverse() {
        let mut live = net();
        let frozen = net();
        let mesh = frozen.mesh().clone();
        let mut planner = LanePlanner::new(mesh.num_links());
        planner.begin_epoch();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(3, 2));
        let planned = planner.traverse(&frozen, &r, 100, 64);
        let actual = live.traverse(&r, 100, 64);
        assert_eq!(planned.links, actual.links);
        assert_eq!(planned.arrived, actual.arrived);
    }

    #[test]
    fn overlay_sees_own_traffic_within_epoch() {
        let frozen = net();
        let mesh = frozen.mesh().clone();
        let mut planner = LanePlanner::new(mesh.num_links());
        planner.begin_epoch();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(1, 0));
        let first = planner.traverse(&frozen, &r, 0, 64);
        let second = planner.traverse(&frozen, &r, 0, 64);
        assert_eq!(first.links[0].enter, 0);
        // The second message queues behind the lane's own first one.
        assert_eq!(second.links[0].enter, 4);
    }

    #[test]
    fn commit_merge_is_order_independent() {
        let frozen = net();
        let mesh = frozen.mesh().clone();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(2, 0));
        let plan = |starts: &[Cycle]| {
            let mut p = LanePlanner::new(mesh.num_links());
            p.begin_epoch();
            for &s in starts {
                p.traverse(&frozen, &r, s, 64);
            }
            p
        };
        let mut a = plan(&[0, 10]);
        let mut b = plan(&[5]);
        let mut net_ab = net();
        a.commit(&mut net_ab);
        b.commit(&mut net_ab);
        let mut a2 = plan(&[0, 10]);
        let mut b2 = plan(&[5]);
        let mut net_ba = net();
        b2.commit(&mut net_ba);
        a2.commit(&mut net_ba);
        for l in &r.links {
            assert_eq!(net_ab.horizon(*l), net_ba.horizon(*l));
        }
        assert_eq!(net_ab.messages, net_ba.messages);
        assert_eq!(net_ab.queueing_cycles, net_ba.queueing_cycles);
        assert_eq!(net_ab.flit_hops, net_ba.flit_hops);
        // 3 messages × 4-cycle occupancy × 2 hops.
        assert_eq!(net_ab.flit_hops, 24);
    }

    #[test]
    fn epoch_reset_forgets_overlay_but_commit_persists() {
        let mut live = net();
        let mesh = live.mesh().clone();
        let mut planner = LanePlanner::new(mesh.num_links());
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(1, 0));

        planner.begin_epoch();
        planner.traverse(&live, &r, 0, 64); // raises overlay to 4
        planner.commit(&mut live);
        assert_eq!(live.horizon(r.links[0]), 4);

        planner.begin_epoch();
        // New epoch: overlay gone, but the committed live horizon queues us.
        let rec = planner.traverse(&live, &r, 0, 64);
        assert_eq!(rec.links[0].enter, 4);
        planner.commit(&mut live);
        assert_eq!(live.horizon(r.links[0]), 8);
        assert_eq!(live.messages, 2);
        assert_eq!(live.queueing_cycles, 4);
    }

    #[test]
    fn planner_captures_obs_and_flits_when_enabled() {
        let mut live = net();
        live.enable_obs();
        live.enable_check_log();
        let mesh = live.mesh().clone();
        let mut planner = LanePlanner::new(mesh.num_links());
        planner.begin_epoch();
        let r = mesh.xy_route(Coord::new(0, 0), Coord::new(2, 0));
        planner.traverse(&live, &r, 0, 64);
        planner.traverse(&live, &r, 0, 64);
        planner.commit(&mut live);
        let l = r.links[0].index();
        let obs = live.link_obs().unwrap();
        assert_eq!(obs[l].traversals, 2);
        assert_eq!(obs[l].busy_cycles, 8);
        assert_eq!(obs[l].queue_delay.count(1), 1); // the 4-cycle delay
        assert_eq!(live.check_log().unwrap().len(), 4); // 2 msgs × 2 hops
    }
}
