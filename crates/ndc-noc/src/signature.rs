//! Route signatures and minimal-path selection (§5.2.1, third
//! challenge).
//!
//! A signature `S{(p1,q1),(p2,q2)}` is an `L`-bit set over the mesh's
//! directed links marking which links a (minimal) path uses. Given two
//! accesses `x` and `y` with sources `(px,qx)`, `(py,qy)` and
//! destinations `(pr,qr)`, `(ps,qs)`, the compiler selects signatures
//! maximizing `|Sx ∩ Sy|` — every common link is a router where the NDC
//! computation `x op y` can be performed.

use crate::mesh::{LinkId, Mesh, Route};
use ndc_types::Coord;

/// An `L`-bit link set, stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteSignature {
    words: Vec<u64>,
    num_links: usize,
}

impl RouteSignature {
    pub fn empty(mesh: &Mesh) -> Self {
        let n = mesh.num_links();
        RouteSignature {
            words: vec![0; n.div_ceil(64)],
            num_links: n,
        }
    }

    pub fn from_route(mesh: &Mesh, route: &Route) -> Self {
        let mut s = Self::empty(mesh);
        for &l in &route.links {
            s.set(l);
        }
        s
    }

    pub fn set(&mut self, l: LinkId) {
        debug_assert!(l.index() < self.num_links);
        self.words[l.index() / 64] |= 1 << (l.index() % 64);
    }

    pub fn get(&self, l: LinkId) -> bool {
        self.words[l.index() / 64] & (1 << (l.index() % 64)) != 0
    }

    /// Bitwise intersection (the paper's `∩`).
    pub fn and(&self, other: &RouteSignature) -> RouteSignature {
        debug_assert_eq!(self.num_links, other.num_links);
        RouteSignature {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b)
                .collect(),
            num_links: self.num_links,
        }
    }

    /// Number of set bits ("the total number of 1s").
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterate over the set links.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(LinkId((wi as u32) * 64 + b))
            })
        })
    }
}

/// Displacement (in hops) up to which every minimal route is
/// enumerated: `C(10, 5) = 252` routes at worst, which covers any
/// endpoint pair on the paper's 5×5 mesh exactly as before. Beyond
/// this, exhaustive enumeration is combinatorial — `C(30, 15) ≈ 155
/// million` routes for opposite corners of the 16×16 scale-up mesh —
/// so the enumeration falls back to [`bounded_routes`].
const MAX_EXHAUSTIVE_HOPS: u16 = 10;

/// Enumerate minimal (monotone, Manhattan-length) routes between two
/// coordinates. For displacements up to [`MAX_EXHAUSTIVE_HOPS`] this
/// is every such route (`C(dx+dy, dx)` of them); for larger
/// displacements it is the two-bend staircase family — `O(dx + dy)`
/// routes including the XY and YX extremes — which preserves route
/// *diversity* (which links a route can occupy) without the
/// combinatorial blowup that made signature selection intractable at
/// 12×12 and beyond.
pub fn minimal_routes(mesh: &Mesh, src: Coord, dst: Coord) -> Vec<Route> {
    let dist = src.x.abs_diff(dst.x) + src.y.abs_diff(dst.y);
    if dist > MAX_EXHAUSTIVE_HOPS {
        return bounded_routes(mesh, src, dst);
    }
    let mut out = Vec::new();
    let mut path = vec![src];
    recurse(mesh, dst, &mut path, &mut out);
    out
}

/// Walk from `a` to `b` inclusive, one hop at a time, in either axis
/// direction.
fn axis_walk(a: u16, b: u16) -> Box<dyn Iterator<Item = u16>> {
    if a <= b {
        Box::new(a..=b)
    } else {
        Box::new((b..=a).rev())
    }
}

/// Monotone routes with at most two bends: `x–y–x` staircases through
/// every intermediate column and `y–x–y` staircases through every
/// interior row. Both L-shaped (XY, YX) routes are members (the
/// `x–y–x` family at the extreme columns), and the set spans every
/// link an exhaustive enumeration could reach, so link-overlap
/// maximization still has the full rectangle to work with.
fn bounded_routes(mesh: &Mesh, src: Coord, dst: Coord) -> Vec<Route> {
    if src.x == dst.x || src.y == dst.y {
        // Straight line: a single minimal route.
        return vec![mesh.xy_route(src, dst)];
    }
    let mut out = Vec::new();
    let mut push = |via: &[Coord]| {
        let mut path = vec![src];
        for w in via.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.x == b.x {
                for y in axis_walk(a.y, b.y).skip(1) {
                    path.push(Coord::new(a.x, y));
                }
            } else {
                for x in axis_walk(a.x, b.x).skip(1) {
                    path.push(Coord::new(x, a.y));
                }
            }
        }
        out.push(mesh.route_via(&path));
    };
    // x–y–x through every column between the endpoints (the first,
    // `mx = src.x`, is the YX route; the last, `mx = dst.x`, is XY).
    for mx in axis_walk(src.x, dst.x) {
        push(&[src, Coord::new(mx, src.y), Coord::new(mx, dst.y), dst]);
    }
    // y–x–y through interior rows (the boundary rows duplicate the XY
    // and YX routes already emitted above).
    for my in axis_walk(src.y, dst.y).skip(1) {
        if my == dst.y {
            continue;
        }
        push(&[src, Coord::new(src.x, my), Coord::new(dst.x, my), dst]);
    }
    out
}

fn recurse(mesh: &Mesh, dst: Coord, path: &mut Vec<Coord>, out: &mut Vec<Route>) {
    let at = *path.last().unwrap();
    if at == dst {
        out.push(mesh.route_via(path));
        return;
    }
    // Move one step closer in X, then (as an alternative) in Y —
    // exploring both orders yields every monotone staircase.
    if at.x != dst.x {
        let next = if dst.x > at.x {
            Coord::new(at.x + 1, at.y)
        } else {
            Coord::new(at.x - 1, at.y)
        };
        path.push(next);
        recurse(mesh, dst, path, out);
        path.pop();
    }
    if at.y != dst.y {
        let next = if dst.y > at.y {
            Coord::new(at.x, at.y + 1)
        } else {
            Coord::new(at.x, at.y - 1)
        };
        path.push(next);
        recurse(mesh, dst, path, out);
        path.pop();
    }
}

/// The result of signature selection for a pair of accesses.
#[derive(Debug, Clone)]
pub struct SignaturePair {
    pub route_a: Route,
    pub route_b: Route,
    pub sig_a: RouteSignature,
    pub sig_b: RouteSignature,
    /// `|Sa ∩ Sb|` — the number of routers where the two operands'
    /// messages share a link buffer.
    pub common_links: u32,
}

/// Select, among all minimal routes of `(a_src → a_dst)` and
/// `(b_src → b_dst)`, the pair maximizing the number of common links
/// (§5.2.1: "selects signatures carefully in an attempt to maximize 1s
/// in S{...} ∩ S{...}"). Ties prefer the XY route (index 0 of the
/// enumeration explores X-first moves first), keeping the baseline
/// routing when reshaping buys nothing.
pub fn best_signature_pair(
    mesh: &Mesh,
    a_src: Coord,
    a_dst: Coord,
    b_src: Coord,
    b_dst: Coord,
) -> SignaturePair {
    let routes_a = minimal_routes(mesh, a_src, a_dst);
    let routes_b = minimal_routes(mesh, b_src, b_dst);
    let sigs_a: Vec<RouteSignature> = routes_a
        .iter()
        .map(|r| RouteSignature::from_route(mesh, r))
        .collect();
    let sigs_b: Vec<RouteSignature> = routes_b
        .iter()
        .map(|r| RouteSignature::from_route(mesh, r))
        .collect();

    let mut best: Option<(usize, usize, u32)> = None;
    for (i, sa) in sigs_a.iter().enumerate() {
        for (j, sb) in sigs_b.iter().enumerate() {
            let common = sa.and(sb).count_ones();
            let better = match best {
                None => true,
                Some((_, _, c)) => common > c,
            };
            if better {
                best = Some((i, j, common));
            }
        }
    }
    let (i, j, common) = best.expect("route enumerations are never empty");
    SignaturePair {
        route_a: routes_a[i].clone(),
        route_b: routes_b[j].clone(),
        sig_a: sigs_a[i].clone(),
        sig_b: sigs_b[j].clone(),
        common_links: common,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_types::NocConfig;

    fn mesh6() -> Mesh {
        Mesh::new(NocConfig {
            width: 6,
            height: 6,
            link_bytes: 16,
            hop_cycles: 3,
        })
    }

    #[test]
    fn signature_set_get_and_count() {
        let m = mesh6();
        let r = m.xy_route(Coord::new(0, 0), Coord::new(3, 2));
        let s = RouteSignature::from_route(&m, &r);
        assert_eq!(s.count_ones(), 5);
        for &l in &r.links {
            assert!(s.get(l));
        }
        let collected: Vec<LinkId> = s.links().collect();
        assert_eq!(collected.len(), 5);
        let mut sorted = r.links.clone();
        sorted.sort();
        assert_eq!(collected, sorted);
    }

    #[test]
    fn intersection_of_disjoint_routes_is_empty() {
        let m = mesh6();
        let r1 = m.xy_route(Coord::new(0, 0), Coord::new(2, 0));
        let r2 = m.xy_route(Coord::new(0, 5), Coord::new(2, 5));
        let s1 = RouteSignature::from_route(&m, &r1);
        let s2 = RouteSignature::from_route(&m, &r2);
        assert_eq!(s1.and(&s2).count_ones(), 0);
    }

    #[test]
    fn minimal_route_counts() {
        let m = mesh6();
        // (0,0) -> (2,2): C(4,2) = 6 staircases.
        let routes = minimal_routes(&m, Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(routes.len(), 6);
        // Straight line: exactly one.
        let routes = minimal_routes(&m, Coord::new(0, 0), Coord::new(0, 4));
        assert_eq!(routes.len(), 1);
        // Self: one empty route.
        let routes = minimal_routes(&m, Coord::new(3, 3), Coord::new(3, 3));
        assert_eq!(routes.len(), 1);
        assert!(routes[0].links.is_empty());
    }

    /// Reproduces the Figure 11 scenario: two accesses whose XY routes
    /// do not share a link, but reshaped minimal routes share several.
    #[test]
    fn reshaping_creates_overlap_fig11() {
        let m = mesh6();
        // Access a: (0,0) -> (3,3); access b: (0,3)->(3,0) region chosen
        // so XY routes are disjoint on inner links but staircases can
        // overlap.
        let a_src = Coord::new(0, 1);
        let a_dst = Coord::new(3, 2);
        let b_src = Coord::new(1, 0);
        let b_dst = Coord::new(2, 3);
        let xy1 = RouteSignature::from_route(&m, &m.xy_route(a_src, a_dst));
        let xy2 = RouteSignature::from_route(&m, &m.xy_route(b_src, b_dst));
        let xy_common = xy1.and(&xy2).count_ones();
        let best = best_signature_pair(&m, a_src, a_dst, b_src, b_dst);
        assert!(
            best.common_links > xy_common,
            "reshaping should beat XY here: best {} vs xy {}",
            best.common_links,
            xy_common
        );
        assert!(best.common_links >= 1);
    }

    #[test]
    fn same_source_and_dest_share_everything() {
        let m = mesh6();
        let s = Coord::new(1, 1);
        let d = Coord::new(4, 1);
        let best = best_signature_pair(&m, s, d, s, d);
        assert_eq!(best.common_links, 3);
    }

    #[test]
    fn chosen_routes_remain_minimal() {
        let m = mesh6();
        let a_src = Coord::new(0, 0);
        let a_dst = Coord::new(2, 2);
        let b_src = Coord::new(2, 0);
        let b_dst = Coord::new(0, 2);
        let best = best_signature_pair(&m, a_src, a_dst, b_src, b_dst);
        assert_eq!(best.route_a.hops() as u32, a_src.manhattan(a_dst));
        assert_eq!(best.route_b.hops() as u32, b_src.manhattan(b_dst));
    }
}
