//! Zero-dependency deterministic fork-join runtime.
//!
//! The paper's evaluation is hundreds of independent trace-driven
//! simulations (20 benchmarks × ~7 execution schemes × sensitivity
//! sweeps). Each job is pure — a function of its inputs — so the only
//! thing a parallel runtime must guarantee is that *results come back
//! in input order*, making parallel and serial runs bit-identical.
//!
//! This crate provides exactly that on `std::thread::scope`:
//!
//! * **Chunked work-stealing**: workers claim contiguous index chunks
//!   from a shared `AtomicUsize` cursor, so an expensive item (a `paper`
//!   scale simulation) doesn't leave the other workers idle behind a
//!   static partition.
//! * **Ordered collection**: each result is written to its input index;
//!   output order never depends on thread scheduling.
//! * **Sized by the host**: thread count comes from
//!   `std::thread::available_parallelism`, overridable with the
//!   `NDC_THREADS` environment variable (`NDC_THREADS=1` forces the
//!   serial path — the determinism baseline `scripts/verify.sh` diffs
//!   against).
//! * **No nested oversubscription**: a `parallel_map` issued from inside
//!   a worker runs serially on that worker. The experiment harness fans
//!   out per-benchmark and then per-scheme; only the outer level spawns.
//!
//! Panics in a worker propagate to the caller (the scope re-raises
//! them), so assertion failures inside parallel property tests behave
//! like serial ones.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set while the current thread is an ndc-par worker; nested
    /// `parallel_map` calls observe it and degrade to serial execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a top-level `parallel_map` will use:
/// `NDC_THREADS` if set to a positive integer, else the host's
/// available parallelism, else 1.
pub fn num_threads() -> usize {
    std::env::var("NDC_THREADS")
        .ok()
        .and_then(|v| parse_threads(&v))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Parse an `NDC_THREADS` value: a positive integer (surrounding
/// whitespace tolerated) or `None` for anything else — empty, garbage,
/// and `0` all fall back to the host's available parallelism rather
/// than silently forcing a serial run.
pub fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// True when called from inside an ndc-par worker thread.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Apply `f` to every element of `items`, in parallel, returning the
/// results **in input order** regardless of thread count or scheduling.
///
/// `f` must be a pure function of its argument for the determinism
/// guarantee to mean anything; every call site in this workspace
/// satisfies that (simulations are deterministic given their inputs).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(items.len(), |i| f(&items[i]))
}

/// Like [`parallel_map`] but hands the closure the element index —
/// useful for seeding per-case PRNGs in property tests.
pub fn parallel_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed(items.len(), |i| f(i, &items[i]))
}

/// Core driver: evaluate `f(0..n)` across the worker pool, ordered.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = if in_worker() {
        1
    } else {
        num_threads().min(n.max(1))
    };
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    // Small chunks keep the pool balanced when item costs are skewed
    // (one `paper`-scale benchmark vs. nineteen `test`-scale ones);
    // claiming by chunk keeps cursor contention negligible.
    let chunk = (n / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        local.push((i, f(i)));
                    }
                }
                results.lock().unwrap().extend(local);
                IN_WORKER.with(|flag| flag.set(false));
            });
        }
    });

    let mut pairs = results.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Run two independent closures, potentially in parallel, returning
/// both results. Serial when nested inside a worker.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if in_worker() || num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            IN_WORKER.with(|flag| flag.set(true));
            let r = b();
            IN_WORKER.with(|flag| flag.set(false));
            r
        });
        // The caller's thread is the pool's other worker while `a()`
        // runs: without the mark, a nested `parallel_map` inside `a()`
        // would spawn a second full pool while `b()` is still running,
        // oversubscribing the host.
        let was = IN_WORKER.with(|flag| flag.replace(true));
        let ra = a();
        IN_WORKER.with(|flag| flag.set(was));
        (ra, hb.join().unwrap())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn ordered_results_match_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = parallel_map(&items, |x| x * x + 1);
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn indexed_variant_sees_indices() {
        let items = ["a", "b", "c"];
        let out = parallel_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn nested_calls_run_serially() {
        let saw_nested_parallel = AtomicBool::new(false);
        let outer: Vec<usize> = (0..8).collect();
        let out = parallel_map(&outer, |&i| {
            // Inside a worker, a nested map must not spawn again.
            let inner: Vec<usize> = (0..4).collect();
            let r = parallel_map(&inner, |&j| {
                if !in_worker() {
                    saw_nested_parallel.store(true, Ordering::Relaxed);
                }
                i * 10 + j
            });
            r.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        // When the outer map parallelized, inner closures ran on worker
        // threads; either way nothing escaped the pool.
        assert!(!saw_nested_parallel.load(Ordering::Relaxed) || num_threads() == 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn parse_threads_rejects_garbage_and_zero() {
        // Garbage, empty, and zero must fall back (None), not force 1.
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        // Valid values parse, with surrounding whitespace tolerated.
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("16"), Some(16));
    }

    #[test]
    fn join_marks_caller_side_as_worker() {
        // Both closures must see themselves inside the pool, so nested
        // parallel_map calls in either arm degrade to serial instead of
        // spawning a second pool. When the host is serial (1 thread),
        // join never spawns and the flags legitimately stay unset.
        if num_threads() <= 1 {
            return;
        }
        let (a_marked, b_marked) = join(in_worker, in_worker);
        assert!(a_marked, "caller side of join must be marked as a worker");
        assert!(b_marked, "spawned side of join must be marked as a worker");
        // The mark is scoped to the join: the caller is clean afterwards.
        assert!(!in_worker());
    }

    #[test]
    fn nothing_nested_escapes_join() {
        if num_threads() <= 1 {
            return;
        }
        let escaped = AtomicBool::new(false);
        let nested = |tag: usize| {
            let items: Vec<usize> = (0..8).collect();
            let out = parallel_map(&items, |&j| {
                if !in_worker() {
                    escaped.store(true, Ordering::Relaxed);
                }
                tag * 100 + j
            });
            out.iter().sum::<usize>()
        };
        let (ra, rb) = join(|| nested(1), || nested(2));
        assert_eq!(ra, (0..8).map(|j| 100 + j).sum::<usize>());
        assert_eq!(rb, (0..8).map(|j| 200 + j).sum::<usize>());
        assert!(
            !escaped.load(Ordering::Relaxed),
            "a nested parallel_map inside join spawned a second pool"
        );
    }

    #[test]
    fn skewed_costs_still_ordered() {
        // Make early items much slower than late ones so chunks finish
        // out of order; output order must not change.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        let _ = parallel_map(&items, |&x| {
            assert!(x != 17, "boom");
            x
        });
    }
}
