//! Zero-dependency deterministic fork-join runtime.
//!
//! The paper's evaluation is hundreds of independent trace-driven
//! simulations (20 benchmarks × ~7 execution schemes × sensitivity
//! sweeps). Each job is pure — a function of its inputs — so the only
//! thing a parallel runtime must guarantee is that *results come back
//! in input order*, making parallel and serial runs bit-identical.
//!
//! This crate provides exactly that on `std::thread::scope`:
//!
//! * **Chunked work-stealing**: workers claim contiguous index chunks
//!   from a shared `AtomicUsize` cursor, so an expensive item (a `paper`
//!   scale simulation) doesn't leave the other workers idle behind a
//!   static partition.
//! * **Ordered collection**: each result is written to its input index;
//!   output order never depends on thread scheduling.
//! * **Sized by the host**: thread count comes from
//!   `std::thread::available_parallelism`, overridable with the
//!   `NDC_THREADS` environment variable (`NDC_THREADS=1` forces the
//!   serial path — the determinism baseline `scripts/verify.sh` diffs
//!   against).
//! * **No nested oversubscription**: a `parallel_map` issued from inside
//!   a worker runs serially on that worker. The experiment harness fans
//!   out per-benchmark and then per-scheme; only the outer level spawns.
//!
//! Panics in a worker propagate to the caller (the scope re-raises
//! them), so assertion failures inside parallel property tests behave
//! like serial ones.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    /// Set while the current thread is an ndc-par worker; nested
    /// `parallel_map` calls observe it and degrade to serial execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a top-level `parallel_map` will use:
/// `NDC_THREADS` if set to a positive integer, else the host's
/// available parallelism, else 1.
pub fn num_threads() -> usize {
    std::env::var("NDC_THREADS")
        .ok()
        .and_then(|v| parse_threads(&v))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Parse an `NDC_THREADS` value: a positive integer (surrounding
/// whitespace tolerated) or `None` for anything else — empty, garbage,
/// and `0` all fall back to the host's available parallelism rather
/// than silently forcing a serial run.
pub fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// True when called from inside an ndc-par worker thread.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Apply `f` to every element of `items`, in parallel, returning the
/// results **in input order** regardless of thread count or scheduling.
///
/// `f` must be a pure function of its argument for the determinism
/// guarantee to mean anything; every call site in this workspace
/// satisfies that (simulations are deterministic given their inputs).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(items.len(), |i| f(&items[i]))
}

/// Like [`parallel_map`] but hands the closure the element index —
/// useful for seeding per-case PRNGs in property tests.
pub fn parallel_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed(items.len(), |i| f(i, &items[i]))
}

/// Core driver: evaluate `f(0..n)` across the worker pool, ordered.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = if in_worker() {
        1
    } else {
        num_threads().min(n.max(1))
    };
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    // Small chunks keep the pool balanced when item costs are skewed
    // (one `paper`-scale benchmark vs. nineteen `test`-scale ones);
    // claiming by chunk keeps cursor contention negligible.
    let chunk = (n / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        local.push((i, f(i)));
                    }
                }
                results.lock().unwrap().extend(local);
                IN_WORKER.with(|flag| flag.set(false));
            });
        }
    });

    let mut pairs = results.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Run two independent closures, potentially in parallel, returning
/// both results. Serial when nested inside a worker.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if in_worker() || num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            IN_WORKER.with(|flag| flag.set(true));
            let r = b();
            IN_WORKER.with(|flag| flag.set(false));
            r
        });
        // The caller's thread is the pool's other worker while `a()`
        // runs: without the mark, a nested `parallel_map` inside `a()`
        // would spawn a second full pool while `b()` is still running,
        // oversubscribing the host.
        let was = IN_WORKER.with(|flag| flag.replace(true));
        let ra = a();
        IN_WORKER.with(|flag| flag.set(was));
        (ra, hb.join().unwrap())
    })
}

// ---------------------------------------------------------------------------
// Lane pool: persistent workers with a reusable barrier.
//
// `parallel_map` fork-joins per call — fine for coarse experiment
// fan-out, far too heavy for the intra-run lane engine, which crosses a
// barrier every simulation epoch (thousands of times per run). The
// `LanePool` spawns its workers once and reuses them: each `run` call
// publishes one type-erased closure under a generation counter, every
// worker executes it with its own lane index, and the caller doubles as
// lane 0 so `lanes == 1` never context-switches at all.
// ---------------------------------------------------------------------------

/// A type-erased borrow of the per-epoch closure. The raw pointer is
/// only dereferenced between the generation bump that publishes it and
/// the matching `pending == 0` handshake — i.e. strictly within the
/// `run` call that owns the referent — so the `Send`/`Sync` assertion
/// below is sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

struct PoolState {
    /// Bumped once per `run`; workers execute each generation exactly once.
    generation: u64,
    job: Option<JobPtr>,
    /// Workers still running the current generation.
    pending: usize,
    /// Workers that panicked in the current generation (re-raised on the caller).
    panicked: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers: new generation published (or shutdown).
    go: Condvar,
    /// Signals the caller: all workers finished the generation.
    done: Condvar,
}

/// Persistent worker pool for epoch-barriered lane execution.
///
/// `run(f)` executes `f(lane)` once per lane, `0..lanes()`, with lane 0
/// on the calling thread, and returns only when every lane finished —
/// the return *is* the epoch barrier. Workers park on a condvar between
/// epochs instead of being respawned, so a simulation crossing tens of
/// thousands of barriers pays thread-spawn cost exactly once.
///
/// Determinism contract: the pool decides only *where* work runs. Lane
/// engines must key all work and all output buffers by shard index, not
/// lane index, so results are invariant under `NDC_THREADS`.
pub struct LanePool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    lanes: usize,
}

impl LanePool {
    /// A pool with `lanes` lanes (clamped to ≥ 1); spawns `lanes - 1`
    /// worker threads, the caller being lane 0.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                pending: 0,
                panicked: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, lane))
            })
            .collect();
        Self {
            shared,
            workers,
            lanes,
        }
    }

    /// Pool sized for the environment: `NDC_THREADS` (or host
    /// parallelism), degraded to a single lane when already inside an
    /// ndc-par worker — a lane engine nested under experiment fan-out
    /// must not oversubscribe the host.
    pub fn for_env() -> Self {
        Self::new(if in_worker() { 1 } else { num_threads() })
    }

    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Execute `f(lane)` on every lane and wait for all of them: one
    /// epoch. Serial pools (one lane) call `f(0)` inline with zero
    /// synchronization. Worker panics are re-raised here after the
    /// barrier, so a failed assertion inside a lane behaves like a
    /// failed assertion in a serial run.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.lanes == 1 {
            f(0);
            return;
        }
        // Erase the borrow's lifetime to park it in the shared slot;
        // `run` does not return until every worker is done with it.
        let erased: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(JobPtr(erased));
            st.pending = self.lanes - 1;
            st.panicked = 0;
            st.generation += 1;
            self.shared.go.notify_all();
        }
        // The caller is lane 0. Catching the unwind keeps the barrier
        // intact (workers must never observe a torn generation).
        let lane0 = std::panic::catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let worker_panics = st.panicked;
        drop(st);
        if let Err(payload) = lane0 {
            std::panic::resume_unwind(payload);
        }
        assert!(
            worker_panics == 0,
            "{worker_panics} lane worker(s) panicked"
        );
    }

    /// Shard helper: `f(i, &mut items[i])` for every item, items
    /// distributed round-robin over lanes (`i % lanes`). The fixed
    /// item→lane map plus `&mut` disjointness is what makes per-shard
    /// mutation safe without locks.
    pub fn run_sharded<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let lanes = self.lanes;
        let base = SendPtr(items.as_mut_ptr());
        self.run(&move |lane| {
            let mut i = lane;
            while i < n {
                // SAFETY: lane `l` visits exactly the indices ≡ l (mod
                // lanes); distinct lanes touch disjoint elements, and
                // `run` keeps the borrow of `items` alive past every
                // worker's last access.
                let item = unsafe { &mut *base.at(i) };
                f(i, item);
                i += lanes;
            }
        });
    }
}

/// Raw-pointer wrapper whose `Send`/`Sync` is justified at each use
/// site (disjoint strided access under a joined scope).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than a public field) so closures capture the
    /// `Sync` wrapper, not the raw pointer, under disjoint capture.
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.go.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, lane: usize) {
    IN_WORKER.with(|flag| flag.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("published generation carries a job");
                }
                st = shared.go.wait(st).unwrap();
            }
        };
        // SAFETY: `run` owns this generation and blocks until `pending`
        // drains; the closure outlives this call.
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(lane) }));
        let mut st = shared.state.lock().unwrap();
        if res.is_err() {
            st.panicked += 1;
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn ordered_results_match_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = parallel_map(&items, |x| x * x + 1);
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn indexed_variant_sees_indices() {
        let items = ["a", "b", "c"];
        let out = parallel_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn nested_calls_run_serially() {
        let saw_nested_parallel = AtomicBool::new(false);
        let outer: Vec<usize> = (0..8).collect();
        let out = parallel_map(&outer, |&i| {
            // Inside a worker, a nested map must not spawn again.
            let inner: Vec<usize> = (0..4).collect();
            let r = parallel_map(&inner, |&j| {
                if !in_worker() {
                    saw_nested_parallel.store(true, Ordering::Relaxed);
                }
                i * 10 + j
            });
            r.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        // When the outer map parallelized, inner closures ran on worker
        // threads; either way nothing escaped the pool.
        assert!(!saw_nested_parallel.load(Ordering::Relaxed) || num_threads() == 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn parse_threads_rejects_garbage_and_zero() {
        // Garbage, empty, and zero must fall back (None), not force 1.
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        // Valid values parse, with surrounding whitespace tolerated.
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("16"), Some(16));
    }

    #[test]
    fn join_marks_caller_side_as_worker() {
        // Both closures must see themselves inside the pool, so nested
        // parallel_map calls in either arm degrade to serial instead of
        // spawning a second pool. When the host is serial (1 thread),
        // join never spawns and the flags legitimately stay unset.
        if num_threads() <= 1 {
            return;
        }
        let (a_marked, b_marked) = join(in_worker, in_worker);
        assert!(a_marked, "caller side of join must be marked as a worker");
        assert!(b_marked, "spawned side of join must be marked as a worker");
        // The mark is scoped to the join: the caller is clean afterwards.
        assert!(!in_worker());
    }

    #[test]
    fn nothing_nested_escapes_join() {
        if num_threads() <= 1 {
            return;
        }
        let escaped = AtomicBool::new(false);
        let nested = |tag: usize| {
            let items: Vec<usize> = (0..8).collect();
            let out = parallel_map(&items, |&j| {
                if !in_worker() {
                    escaped.store(true, Ordering::Relaxed);
                }
                tag * 100 + j
            });
            out.iter().sum::<usize>()
        };
        let (ra, rb) = join(|| nested(1), || nested(2));
        assert_eq!(ra, (0..8).map(|j| 100 + j).sum::<usize>());
        assert_eq!(rb, (0..8).map(|j| 200 + j).sum::<usize>());
        assert!(
            !escaped.load(Ordering::Relaxed),
            "a nested parallel_map inside join spawned a second pool"
        );
    }

    #[test]
    fn skewed_costs_still_ordered() {
        // Make early items much slower than late ones so chunks finish
        // out of order; output order must not change.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        let _ = parallel_map(&items, |&x| {
            assert!(x != 17, "boom");
            x
        });
    }

    #[test]
    fn lane_pool_visits_every_lane_each_epoch() {
        let pool = LanePool::new(4);
        assert_eq!(pool.lanes(), 4);
        for _epoch in 0..100 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|lane| {
                hits[lane].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
    }

    #[test]
    fn lane_pool_serial_runs_inline() {
        let pool = LanePool::new(1);
        let mut order = Vec::new();
        // With one lane the closure runs on the caller; a non-Sync
        // side effect through a cell would not compile, so collect via
        // an atomic and assert single execution.
        let count = AtomicUsize::new(0);
        pool.run(&|lane| {
            assert_eq!(lane, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        order.push(count.load(Ordering::Relaxed));
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn run_sharded_touches_each_item_once() {
        let pool = LanePool::new(3);
        let mut items: Vec<u64> = vec![0; 17];
        pool.run_sharded(&mut items, |i, v| {
            *v += 1 + i as u64;
        });
        let expect: Vec<u64> = (0..17).map(|i| 1 + i as u64).collect();
        assert_eq!(items, expect);
        // Barrier reuse: a second epoch over the same pool.
        pool.run_sharded(&mut items, |_, v| *v *= 2);
        let expect2: Vec<u64> = expect.iter().map(|v| v * 2).collect();
        assert_eq!(items, expect2);
    }

    #[test]
    fn lane_pool_workers_are_marked_as_workers() {
        let pool = LanePool::new(2);
        let outside = AtomicBool::new(false);
        pool.run(&|lane| {
            if lane > 0 && !in_worker() {
                outside.store(true, Ordering::Relaxed);
            }
        });
        assert!(!outside.load(Ordering::Relaxed));
    }

    #[test]
    #[should_panic]
    fn lane_pool_worker_panic_reaches_caller() {
        let pool = LanePool::new(2);
        pool.run(&|lane| {
            assert!(lane != 1, "lane boom");
        });
    }
}
