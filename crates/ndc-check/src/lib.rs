//! Correctness layer for the NDC stack: a differential oracle over the
//! IR interpreter, conservation-law invariants over the simulator's
//! check-event stream, and a seeded fault-injection harness proving the
//! invariants actually fire.
//!
//! The paper's claims rest on two trust anchors this crate hardens:
//!
//! * **Semantic equivalence** of Algorithm 1/2 schedules. A single
//!   `f64` checksum can collide under compensating element-wise errors
//!   (see `oracle::tests::illegal_interchange_caught_despite_checksum_collision`),
//!   so [`oracle`] diffs array contents element-wise and reports the
//!   first divergent array/index, sweeping every workload × every
//!   candidate transform through `Interpreter::run` vs `run_scheduled`.
//! * **Simulator bookkeeping**. [`invariant`] asserts, over the
//!   [`ndc_sim::CheckData`] stream a `CheckLevel::full()` run records:
//!   every issued request retires exactly once; per-link flit
//!   occupancy is matched and drains to zero; timestamps are monotonic
//!   along each request path; `ndc_performed + per-reason aborts ==
//!   ndc_attempts`; and DRAM row-buffer outcomes account for every
//!   request.
//! * **The checker itself** is tested by [`fault`]: `SplitMix64`-seeded
//!   injections (dropped flit, delayed DRAM response, stale
//!   offload-table window, corrupted reshape tally) each trip exactly
//!   the invariant that guards against them. Schedule-level injections
//!   (illegal transform, swapped dependent statements, corrupted
//!   permutation, non-unimodular transform) likewise each draw exactly
//!   the `ndc-lint` error that guards against them, closing the loop
//!   between the static checker and the runtime oracle.
//! * **The static cost model's inputs**. [`reuse_check`] holds
//!   `ndc-reuse`'s soundness contract — interpreter-measured distinct
//!   line/byte footprints equal every `Exact`-tagged count and never
//!   exceed a `Bound`-tagged one — and proves the check fires via a
//!   seeded corrupted-reuse-vector fault.
//!
//! Zero-dependency like the rest of the workspace; everything here is
//! deterministic (seeded PRNG, no clocks).

pub mod fault;
pub mod invariant;
pub mod oracle;
pub mod reuse_check;

pub use fault::{
    inject, inject_ledger, inject_schedule, Fault, LedgerFault, ScheduleFault, ALL_FAULTS,
    ALL_LEDGER_FAULTS, ALL_SCHEDULE_FAULTS,
};
pub use invariant::{
    check_counters, check_engine_output, check_ledger, check_run, check_spans, CheckReport,
    Invariant, Violation,
};
pub use oracle::{
    check_schedule, first_divergence, sweep_workload, sweep_workload_with, Divergence,
    OracleSummary, SweepFailure, SweepOptions,
};
pub use reuse_check::{
    cross_check_workload, inject_reuse, CORRUPTED_REUSE_VECTOR, REUSE_SOUNDNESS,
};

pub use ndc_obs::CheckLevel;
pub use ndc_sim::simulate_checked;
