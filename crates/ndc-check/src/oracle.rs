//! The differential correctness oracle.
//!
//! A transformation is correct iff executing the scheduled program
//! (`Interpreter::run_scheduled`) leaves every array bit-identical to
//! the original execution order (`Interpreter::run`). Checksums are not
//! enough: compensating errors — two equal-weight elements swapping
//! values — leave the digest unchanged. The oracle therefore compares
//! element-wise and reports the *first* divergent array element, with
//! its multi-dimensional index recovered from the flat position.

use ndc_ir::matrix::candidate_transforms;
use ndc_ir::{ArrayId, DataStore, DependenceGraph, IMat, Interpreter, Program, Schedule};

/// The first point where two stores disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Array name (and id) holding the divergent element.
    pub array: String,
    /// Flat element position within the array.
    pub flat_index: u64,
    /// The element's multi-dimensional index (row-major delinearized).
    pub index: Vec<i64>,
    /// Value produced by the reference (original-order) execution.
    pub expected: f64,
    /// Value produced by the scheduled execution.
    pub actual: f64,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{:?} (flat {}): expected {}, got {}",
            self.array, self.index, self.flat_index, self.expected, self.actual
        )
    }
}

/// Recover a row-major multi-dimensional index from a flat position.
fn delinearize(dims: &[u64], mut flat: u64) -> Vec<i64> {
    let mut idx = vec![0i64; dims.len()];
    for d in (0..dims.len()).rev() {
        if dims[d] == 0 {
            return idx;
        }
        idx[d] = (flat % dims[d]) as i64;
        flat /= dims[d];
    }
    idx
}

/// Element-wise comparison of two stores over `prog`'s arrays, in
/// declaration order. Bit-equality is intentional: a legal reordering
/// performs the same writes with the same operand values per element,
/// so even floating-point results must match exactly.
pub fn first_divergence(
    prog: &Program,
    expected: &DataStore,
    actual: &DataStore,
) -> Option<Divergence> {
    for (ai, decl) in prog.arrays.iter().enumerate() {
        let id = ArrayId(ai as u32);
        let ea = expected.array(id);
        let aa = actual.array(id);
        debug_assert_eq!(ea.len(), aa.len());
        for (i, (&e, &a)) in ea.iter().zip(aa.iter()).enumerate() {
            if e.to_bits() != a.to_bits() {
                return Some(Divergence {
                    array: decl.name.clone(),
                    flat_index: i as u64,
                    index: delinearize(&decl.dims, i as u64),
                    expected: e,
                    actual: a,
                });
            }
        }
    }
    None
}

/// Run `prog` both ways — original order and under `schedule` — from
/// identical initial stores, and element-wise diff the results.
pub fn check_schedule(prog: &Program, schedule: &Schedule) -> Result<(), Divergence> {
    let mut reference = DataStore::init(prog);
    Interpreter::new(prog).run(&mut reference);
    let mut scheduled = DataStore::init(prog);
    Interpreter::new(prog).run_scheduled(&mut scheduled, schedule);
    match first_divergence(prog, &reference, &scheduled) {
        None => Ok(()),
        Some(d) => Err(d),
    }
}

/// One sweep failure: a dependence-legal transform that nevertheless
/// diverged (an oracle or dependence-analysis bug if it ever happens).
#[derive(Debug, Clone)]
pub struct SweepFailure {
    pub nest: u32,
    pub transform: IMat,
    pub divergence: Divergence,
}

/// Outcome of sweeping one workload through the candidate-transform
/// space.
#[derive(Debug, Clone, Default)]
pub struct OracleSummary {
    pub workload: String,
    pub nests: usize,
    /// Lint-certified non-identity candidates verified element-wise.
    pub legal_checked: usize,
    /// Candidates rejected statically and (in gated sweeps) not
    /// executed.
    pub illegal_skipped: usize,
    /// Certified candidates the *unrefined* dependence analysis would
    /// have rejected — admitted only by the GCD/Banerjee refinement.
    pub refined_admitted: usize,
    /// Ungated sweeps only: executed candidates that diverged *and*
    /// were lint-rejected — each one is a lint verdict confirmed by the
    /// oracle.
    pub divergent_rejected: usize,
    /// Ungated sweeps only: executed candidates that matched the
    /// reference despite lint rejection. Lint conservatism; sound.
    pub conservative_rejects: usize,
    /// Out-of-bounds (halo) reads observed during the reference run.
    pub oob_reads: u64,
    /// Lint-certified candidates that nevertheless diverged — a static
    /// false negative (a lint or oracle bug if it ever happens).
    pub failures: Vec<SweepFailure>,
}

impl OracleSummary {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The summary as an `ndc-obs` metrics tree (the auditable surface
    /// for halo reads and sweep coverage).
    pub fn metrics(&self) -> ndc_obs::Metrics {
        let mut m = ndc_obs::Metrics::new();
        m.counter("nests", self.nests as u64)
            .counter("legal_checked", self.legal_checked as u64)
            .counter("illegal_skipped", self.illegal_skipped as u64)
            .counter("refined_admitted", self.refined_admitted as u64)
            .counter("divergent_rejected", self.divergent_rejected as u64)
            .counter("conservative_rejects", self.conservative_rejects as u64)
            .counter("oob_reads", self.oob_reads)
            .counter("failures", self.failures.len() as u64);
        m
    }
}

/// How [`sweep_workload_with`] walks the candidate-transform space.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Skew magnitude passed to `candidate_transforms`.
    pub max_skew: i64,
    /// When `true` (the default), candidates `ndc-lint` cannot certify
    /// are skipped without execution — the static pruning the compiler
    /// itself relies on. When `false` every candidate executes and the
    /// lint verdict is cross-checked against the oracle's: a certified
    /// candidate that diverges is a failure, a rejected one that
    /// diverges confirms the rejection.
    pub lint_gate: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            max_skew: 1,
            lint_gate: true,
        }
    }
}

/// Sweep one workload: run the reference once, then for every nest and
/// every non-identity candidate transform that `ndc-lint` certifies
/// (`T·D` lex-positivity over the refined dependence graph), execute
/// the scheduled program from the same initial store and element-wise
/// diff against the reference. Statically-illegal candidates are
/// skipped, not executed.
pub fn sweep_workload(prog: &Program, max_skew: i64) -> OracleSummary {
    sweep_workload_with(
        prog,
        SweepOptions {
            max_skew,
            lint_gate: true,
        },
    )
}

/// [`sweep_workload`] with explicit [`SweepOptions`].
pub fn sweep_workload_with(prog: &Program, opts: SweepOptions) -> OracleSummary {
    let init = DataStore::init(prog);
    let mut reference = init.clone();
    Interpreter::new(prog).run(&mut reference);
    let mut summary = OracleSummary {
        workload: prog.name.clone(),
        nests: prog.nests.len(),
        oob_reads: reference.oob_reads(),
        ..Default::default()
    };
    for nest in &prog.nests {
        let depth = nest.depth();
        let base = DependenceGraph::analyze(nest);
        let (refined, stats) = ndc_lint::refined_graph(nest, &base);
        let identity = IMat::identity(depth);
        for t in candidate_transforms(depth, opts.max_skew) {
            if t == identity {
                continue;
            }
            let certified = ndc_lint::certify_with(nest, &refined, &stats, &t).is_ok();
            if opts.lint_gate && !certified {
                summary.illegal_skipped += 1;
                continue;
            }
            let mut sched = Schedule::default();
            sched.transforms.insert(nest.id, t.clone());
            let mut store = init.clone();
            Interpreter::new(prog).run_scheduled(&mut store, &sched);
            let divergence = first_divergence(prog, &reference, &store);
            match (certified, divergence) {
                (true, None) => {
                    summary.legal_checked += 1;
                    if !base.transformation_legal(&t) {
                        summary.refined_admitted += 1;
                    }
                }
                (true, Some(divergence)) => summary.failures.push(SweepFailure {
                    nest: nest.id.0,
                    transform: t,
                    divergence,
                }),
                (false, Some(_)) => summary.divergent_rejected += 1,
                (false, None) => summary.conservative_rejects += 1,
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::{ArrayDecl, ArrayRef, LoopNest, NestId, Ref, Stmt};

    /// The satellite-5 construction: a depth-2 nest whose interchange
    /// is dependence-violating yet checksum-invisible.
    ///
    /// `X` has 28 elements, all first set to 0.25 (nest 0), so every
    /// value in the store is an exact multiple of 1/4 and the checksum
    /// is computed without rounding. Nest 1 iterates (i, k) ∈ 2×2 and
    /// writes two constants to cells c(i,k) = X[7·(2i+k)]:
    ///
    /// * S0: X[14i + 7k]        = 5.0   (writes c(i,k))
    /// * S1: X[21 − 14i − 7k]   = 9.0   (writes the antipodal cell)
    ///
    /// Original order leaves (c0,c1,c2,c3) = (9,9,5,5); interchanged
    /// order leaves (9,5,9,5). The touched cells sit at flat indices
    /// 0, 7, 14, 21 — all ≡ 0 (mod 7), so `checksum()` weights them
    /// equally and both outcomes digest to the same value, while the
    /// element-wise oracle sees the swap at flat index 7.
    fn collision_prog() -> Program {
        let mut p = Program::new("collision");
        let x = p.add_array(ArrayDecl::new("X", vec![28], 8));
        let fill = Stmt::copy(0, ArrayRef::identity(x, 1, vec![0]), Ref::Const(0.25), 0);
        p.nests
            .push(LoopNest::new(0, vec![0], vec![28], vec![fill]));
        let s0 = Stmt::copy(
            1,
            ArrayRef::affine(x, IMat::from_rows(&[&[14, 7]]), vec![0]),
            Ref::Const(5.0),
            0,
        );
        let s1 = Stmt::copy(
            2,
            ArrayRef::affine(x, IMat::from_rows(&[&[-14, -7]]), vec![21]),
            Ref::Const(9.0),
            0,
        );
        p.nests
            .push(LoopNest::new(1, vec![0, 0], vec![2, 2], vec![s0, s1]));
        p.assign_layout(0, 64);
        p
    }

    #[test]
    fn illegal_interchange_caught_despite_checksum_collision() {
        let p = collision_prog();
        let interchange = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        // The interchange really is dependence-violating: the nest's
        // cross-iteration output dependences reject it (distances are
        // unknown — differing subscript matrices — so nothing non-
        // identity is admitted).
        let graph = DependenceGraph::analyze(&p.nests[1]);
        assert!(!graph.transformation_legal(&interchange));
        // The static certificate engine refuses it too — and the
        // GCD/Banerjee refinement cannot argue the edges away (gcd 7
        // divides 21, which lies inside the Banerjee range).
        assert!(ndc_lint::certify(&p.nests[1], &interchange).is_err());

        let mut reference = DataStore::init(&p);
        Interpreter::new(&p).run(&mut reference);
        let mut sched = Schedule::default();
        sched.transforms.insert(NestId(1), interchange);
        let mut twisted = DataStore::init(&p);
        Interpreter::new(&p).run_scheduled(&mut twisted, &sched);

        // The checksums collide bit-for-bit...
        assert_eq!(
            reference.checksum().to_bits(),
            twisted.checksum().to_bits(),
            "construction broken: checksums no longer collide"
        );
        // ...but the stores differ, and the element-wise oracle says
        // exactly where.
        assert_ne!(reference, twisted);
        let d = first_divergence(&p, &reference, &twisted).expect("divergence");
        assert_eq!(d.array, "X");
        assert_eq!(d.flat_index, 7);
        assert_eq!(d.index, vec![7]);
        assert_eq!(d.expected, 9.0);
        assert_eq!(d.actual, 5.0);
        // check_schedule reports the same rejection.
        assert!(check_schedule(&p, &sched).is_err());
    }

    #[test]
    fn identity_schedule_has_no_divergence() {
        let p = collision_prog();
        assert!(check_schedule(&p, &Schedule::default()).is_ok());
    }

    #[test]
    fn delinearize_is_row_major() {
        assert_eq!(delinearize(&[4, 3], 0), vec![0, 0]);
        assert_eq!(delinearize(&[4, 3], 5), vec![1, 2]);
        assert_eq!(delinearize(&[4, 3], 11), vec![3, 2]);
        assert_eq!(delinearize(&[7], 6), vec![6]);
    }

    #[test]
    fn divergence_reports_first_element_in_declaration_order() {
        let mut p = Program::new("two");
        let a = p.add_array(ArrayDecl::new("A", vec![4], 8));
        let _b = p.add_array(ArrayDecl::new("B", vec![4], 8));
        p.assign_layout(0, 64);
        let s1 = DataStore::init(&p);
        let mut s2 = DataStore::init(&p);
        // Perturb A[2] via a legitimate write.
        let aref = ArrayRef::identity(a, 1, vec![0]);
        let old = s2.read(&p, &aref, &[2]);
        s2.write(&p, &aref, &[2], old + 1.0);
        let d = first_divergence(&p, &s1, &s2).expect("diff");
        assert_eq!(d.array, "A");
        assert_eq!(d.flat_index, 2);
        assert_eq!(d.actual, d.expected + 1.0);
        assert!(format!("{d}").contains("A[2]"));
    }

    #[test]
    fn sweep_accepts_an_independent_nest() {
        // Element-wise add: every candidate transform is legal and
        // none may diverge.
        let mut p = Program::new("add");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![8, 8], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(x, 2, vec![0, 0]),
            ndc_types::Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(y, 2, vec![0, 0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0, 0], vec![8, 8], vec![s]));
        p.assign_layout(0, 64);
        let summary = sweep_workload(&p, 1);
        assert!(summary.passed(), "{:?}", summary.failures);
        // 12 candidates at depth 2 (skew 1) minus identity.
        assert_eq!(summary.legal_checked + summary.illegal_skipped, 11);
        assert!(summary.legal_checked >= 8);
        assert_eq!(summary.oob_reads, 0);
        assert_eq!(summary.metrics().counter_value("oob_reads"), Some(0));
    }

    #[test]
    fn ungated_sweep_cross_checks_lint_against_the_oracle() {
        // The collision program's second nest rejects every non-
        // identity candidate (unknown distances); executing them anyway
        // must only ever *confirm* the rejections — a lint-certified
        // divergence would be a failure.
        let p = collision_prog();
        let summary = sweep_workload_with(
            &p,
            SweepOptions {
                max_skew: 1,
                lint_gate: false,
            },
        );
        assert!(summary.passed(), "{:?}", summary.failures);
        assert_eq!(summary.illegal_skipped, 0, "nothing skipped ungated");
        assert!(
            summary.divergent_rejected > 0,
            "the illegal interchange must execute, diverge, and stand rejected"
        );
        // Every executed candidate is accounted for exactly once.
        let depth2 = 11; // non-identity candidates for nest 1
        let depth1 = 1; // the reversal for nest 0's fill loop
        assert_eq!(
            summary.legal_checked
                + summary.divergent_rejected
                + summary.conservative_rejects
                + summary.failures.len(),
            depth1 + depth2
        );
    }
}
