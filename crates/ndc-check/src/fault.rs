//! Seeded fault injection: corrupt a recorded run or a compiler
//! schedule in a controlled way and prove the matching checker fires.
//!
//! Each [`Fault`] models a concrete simulator bug class and maps to
//! exactly one [`Invariant`]; each [`ScheduleFault`] models a concrete
//! compiler bug class and maps to the `ndc-lint` error it must draw.
//! Victim selection is driven by [`SplitMix64`] so every injection is
//! reproducible from its seed.

use crate::invariant::Invariant;
use ndc_ir::deps::{DependenceGraph, DistanceVector};
use ndc_ir::matrix::{candidate_transforms, IMat};
use ndc_ir::{Program, Schedule};
use ndc_obs::chk;
use ndc_obs::ledger::{AttributionLedger, NUM_LOCATIONS};
use ndc_sim::{CheckData, SimResult};
use ndc_types::SplitMix64;

/// A class of injected simulator fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A flit vanishes in the network: one `FLIT_EXIT` event is removed,
    /// so that link's occupancy never drains back to zero.
    DroppedFlit,
    /// A DRAM response is delayed past the rest of its request's path:
    /// one `MEM_DONE` timestamp jumps far into the future, breaking
    /// per-request timestamp monotonicity.
    DelayedDramResponse,
    /// A stale offload-table window replays a completed request: one
    /// `RETIRE` event is duplicated, so the request retires twice.
    StaleOffloadWindow,
    /// A corrupted reshape tally: `ndc_attempts` is bumped without a
    /// matching performed/abort outcome, breaking NDC accounting.
    CorruptedReshape,
}

/// All fault classes, in a fixed order for deterministic matrices.
pub const ALL_FAULTS: [Fault; 4] = [
    Fault::DroppedFlit,
    Fault::DelayedDramResponse,
    Fault::StaleOffloadWindow,
    Fault::CorruptedReshape,
];

impl Fault {
    pub fn label(&self) -> &'static str {
        match self {
            Fault::DroppedFlit => "dropped-flit",
            Fault::DelayedDramResponse => "delayed-dram-response",
            Fault::StaleOffloadWindow => "stale-offload-window",
            Fault::CorruptedReshape => "corrupted-reshape",
        }
    }

    /// The invariant this fault class is designed to violate.
    pub fn expected_invariant(&self) -> Invariant {
        match self {
            Fault::DroppedFlit => Invariant::LinkOccupancy,
            Fault::DelayedDramResponse => Invariant::PathMonotonic,
            Fault::StaleOffloadWindow => Invariant::RetireOnce,
            Fault::CorruptedReshape => Invariant::NdcAccounting,
        }
    }
}

/// Pick a seeded victim among event indices whose name matches `name`.
fn pick_index(data: &CheckData, name: &str, rng: &mut SplitMix64) -> Option<usize> {
    let sites: Vec<usize> = data
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.name == name)
        .map(|(i, _)| i)
        .collect();
    if sites.is_empty() {
        None
    } else {
        Some(sites[rng.below(sites.len() as u64) as usize])
    }
}

/// Inject `fault` into a recorded run. Returns `false` when the run has
/// no applicable site (e.g. no DRAM traffic to delay), in which case
/// nothing is modified.
pub fn inject(data: &mut CheckData, result: &mut SimResult, fault: Fault, seed: u64) -> bool {
    let mut rng = SplitMix64::new(seed);
    match fault {
        Fault::DroppedFlit => match pick_index(data, chk::FLIT_EXIT, &mut rng) {
            Some(i) => {
                data.events.remove(i);
                true
            }
            None => false,
        },
        Fault::DelayedDramResponse => match pick_index(data, chk::MEM_DONE, &mut rng) {
            Some(i) => {
                data.events[i].ts += 1_000_000_000;
                true
            }
            None => false,
        },
        Fault::StaleOffloadWindow => match pick_index(data, chk::RETIRE, &mut rng) {
            Some(i) => {
                let dup = data.events[i].clone();
                data.events.push(dup);
                true
            }
            None => false,
        },
        Fault::CorruptedReshape => {
            if result.ndc_attempts == 0 {
                return false;
            }
            result.ndc_attempts += 1 + rng.below(7);
            true
        }
    }
}

/// A class of injected attribution mis-charge. Each models a concrete
/// bug in the ledger plumbing — a charge site that was skipped, ran
/// twice, clamped a component, or invented a request — and every one
/// must trip [`Invariant::LedgerConservation`] when the corrupted
/// ledger is checked against the run's untouched global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerFault {
    /// A traverse went uncharged: one message and its flit-hops vanish
    /// from a tenant row, so the NoC column sums fall short.
    DroppedTraverse,
    /// A DRAM charge site ran twice: one row gains a phantom line's
    /// worth of bytes the controllers never moved.
    DoubleChargedDram,
    /// A mis-clamped decomposition: one location's wait component is
    /// shaved, so gather+wait+exec+feed no longer tiles the offload
    /// column (and the wait column sum drifts off `SimResult`).
    TruncatedWait,
    /// A request charged without its latency sample: the row's request
    /// count and its latency sketch disagree.
    PhantomRequest,
}

/// All ledger-fault classes, in a fixed order for deterministic
/// matrices.
pub const ALL_LEDGER_FAULTS: [LedgerFault; 4] = [
    LedgerFault::DroppedTraverse,
    LedgerFault::DoubleChargedDram,
    LedgerFault::TruncatedWait,
    LedgerFault::PhantomRequest,
];

impl LedgerFault {
    pub fn label(&self) -> &'static str {
        match self {
            LedgerFault::DroppedTraverse => "dropped-traverse",
            LedgerFault::DoubleChargedDram => "double-charged-dram",
            LedgerFault::TruncatedWait => "truncated-wait",
            LedgerFault::PhantomRequest => "phantom-request",
        }
    }

    /// Every mis-charge breaks the same law from a different direction.
    pub fn expected_invariant(&self) -> Invariant {
        Invariant::LedgerConservation
    }
}

/// Inject `fault` into an attribution ledger. Returns `false` when no
/// row has the traffic the fault needs (e.g. no NDC offloads to
/// truncate), in which case the ledger is unchanged.
pub fn inject_ledger(ledger: &mut AttributionLedger, fault: LedgerFault, seed: u64) -> bool {
    let mut rng = SplitMix64::new(seed);
    // Seeded victim row among those where `applicable` holds.
    fn pick_row(
        ledger: &AttributionLedger,
        rng: &mut SplitMix64,
        applicable: impl Fn(&ndc_obs::ledger::TenantRow) -> bool,
    ) -> Option<u16> {
        let rows: Vec<u16> = ledger
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, r)| applicable(r))
            .map(|(t, _)| t as u16)
            .collect();
        if rows.is_empty() {
            None
        } else {
            Some(rows[rng.below(rows.len() as u64) as usize])
        }
    }
    match fault {
        LedgerFault::DroppedTraverse => match pick_row(ledger, &mut rng, |r| r.noc_messages > 0) {
            Some(t) => {
                let row = ledger.row_mut(t);
                row.noc_messages -= 1;
                row.noc_flit_hops = row.noc_flit_hops.saturating_sub(1 + rng.below(8));
                true
            }
            None => false,
        },
        LedgerFault::DoubleChargedDram => match pick_row(ledger, &mut rng, |r| r.dram_bytes > 0) {
            Some(t) => {
                let row = ledger.row_mut(t);
                row.dram_bytes += row.dram_bytes.min(256);
                true
            }
            None => false,
        },
        LedgerFault::TruncatedWait => {
            let has_wait = |r: &ndc_obs::ledger::TenantRow| {
                (0..NUM_LOCATIONS).any(|i| r.ndc_wait_cycles[i] > 0)
            };
            match pick_row(ledger, &mut rng, has_wait) {
                Some(t) => {
                    let row = ledger.row_mut(t);
                    let locs: Vec<usize> = (0..NUM_LOCATIONS)
                        .filter(|&i| row.ndc_wait_cycles[i] > 0)
                        .collect();
                    let loc = locs[rng.below(locs.len() as u64) as usize];
                    row.ndc_wait_cycles[loc] -= 1;
                    true
                }
                None => false,
            }
        }
        LedgerFault::PhantomRequest => match pick_row(ledger, &mut rng, |r| r.requests > 0) {
            Some(t) => {
                ledger.row_mut(t).requests += 1;
                true
            }
            None => false,
        },
    }
}

/// A class of injected compiler-schedule fault. Unlike [`Fault`] these
/// corrupt the *input* to execution, so the differential oracle (not a
/// simulator invariant) is the runtime witness — and `ndc-lint` must
/// reject every corruption the oracle would report as divergent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleFault {
    /// Replace a nest's transform with a unimodular but
    /// dependence-violating candidate (e.g. the Figure 10 interchange).
    IllegalTransform,
    /// Reorder two statements linked by a loop-independent (zero
    /// distance) dependence so the consumer runs first.
    SwappedDependentStmts,
    /// Corrupt a statement order into a non-permutation by duplicating
    /// one entry.
    CorruptedPermutation,
    /// Replace a nest's transform with `2·I` — volume-changing, so not
    /// a reordering at all.
    NonUnimodularTransform,
}

/// All schedule-fault classes, in a fixed order for deterministic
/// matrices.
pub const ALL_SCHEDULE_FAULTS: [ScheduleFault; 4] = [
    ScheduleFault::IllegalTransform,
    ScheduleFault::SwappedDependentStmts,
    ScheduleFault::CorruptedPermutation,
    ScheduleFault::NonUnimodularTransform,
];

impl ScheduleFault {
    pub fn label(&self) -> &'static str {
        match self {
            ScheduleFault::IllegalTransform => "illegal-transform-fault",
            ScheduleFault::SwappedDependentStmts => "swapped-dependent-stmts",
            ScheduleFault::CorruptedPermutation => "corrupted-permutation",
            ScheduleFault::NonUnimodularTransform => "non-unimodular-transform",
        }
    }

    /// The [`ndc_lint::LintError::label`] this fault class must draw.
    pub fn expected_lint(&self) -> &'static str {
        match self {
            ScheduleFault::IllegalTransform => "illegal-transform",
            ScheduleFault::SwappedDependentStmts => "order-violates-dependence",
            ScheduleFault::CorruptedPermutation => "order-not-permutation",
            ScheduleFault::NonUnimodularTransform => "non-unimodular",
        }
    }
}

/// Inject `fault` into a schedule for `prog`. Returns `false` when the
/// program has no applicable site (e.g. no nest with a reorderable
/// dependent statement pair), in which case the schedule is unchanged.
pub fn inject_schedule(
    prog: &Program,
    schedule: &mut Schedule,
    fault: ScheduleFault,
    seed: u64,
) -> bool {
    fn pick<T>(mut sites: Vec<T>, rng: &mut SplitMix64) -> Option<T> {
        if sites.is_empty() {
            None
        } else {
            let i = rng.below(sites.len() as u64) as usize;
            Some(sites.swap_remove(i))
        }
    }
    let mut rng = SplitMix64::new(seed);
    match fault {
        ScheduleFault::IllegalTransform => {
            // Any unimodular candidate lint cannot certify. The shape
            // and unimodularity checks pass by construction, so the
            // schedule's sole lint error is the failed certificate.
            let mut sites = Vec::new();
            for nest in &prog.nests {
                let depth = nest.depth();
                let identity = IMat::identity(depth);
                for t in candidate_transforms(depth, 1) {
                    if t != identity && ndc_lint::certify(nest, &t).is_err() {
                        sites.push((nest.id, t));
                    }
                }
            }
            match pick(sites, &mut rng) {
                Some((nest, t)) => {
                    schedule.transforms.insert(nest, t);
                    true
                }
                None => false,
            }
        }
        ScheduleFault::SwappedDependentStmts => {
            let mut sites = Vec::new();
            for nest in &prog.nests {
                let graph = DependenceGraph::analyze(nest);
                for e in &graph.edges {
                    if !e.kind.constrains() || e.src == e.dst {
                        continue;
                    }
                    let DistanceVector::Constant(d) = &e.distance else {
                        continue;
                    };
                    if d.iter().any(|&x| x != 0) {
                        continue;
                    }
                    if let (Some(sp), Some(dp)) = (nest.stmt_pos(e.src), nest.stmt_pos(e.dst)) {
                        if sp != dp {
                            sites.push((nest.id, nest.body.len(), sp, dp));
                        }
                    }
                }
            }
            match pick(sites, &mut rng) {
                Some((nest, len, sp, dp)) => {
                    let mut order: Vec<usize> = (0..len).collect();
                    order.swap(sp, dp);
                    schedule.stmt_order.insert(nest, order);
                    true
                }
                None => false,
            }
        }
        ScheduleFault::CorruptedPermutation => {
            let sites: Vec<_> = prog
                .nests
                .iter()
                .filter(|n| n.body.len() >= 2)
                .map(|n| (n.id, n.body.len()))
                .collect();
            match pick(sites, &mut rng) {
                Some((nest, len)) => {
                    let mut order: Vec<usize> = (0..len).collect();
                    order[len - 1] = order[0];
                    schedule.stmt_order.insert(nest, order);
                    true
                }
                None => false,
            }
        }
        ScheduleFault::NonUnimodularTransform => {
            let sites: Vec<_> = prog.nests.iter().map(|n| (n.id, n.depth())).collect();
            match pick(sites, &mut rng) {
                Some((nest, depth)) => {
                    let mut t = IMat::identity(depth);
                    for i in 0..depth {
                        t[(i, i)] = 2;
                    }
                    schedule.transforms.insert(nest, t);
                    true
                }
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::check_run;
    use ndc_ir::{lower, LowerOptions};
    use ndc_sim::{simulate_checked, Scheme, WaitBudget};
    use ndc_types::ArchConfig;
    use ndc_workloads::{by_name, Scale};

    /// A real checked run with NDC traffic so every fault class has an
    /// injection site (kdtree offloads on every chain).
    fn checked_run() -> (CheckData, SimResult) {
        let cfg = ArchConfig::paper_default();
        let prog = by_name("kdtree").unwrap().build_timesteps(Scale::Test, 1);
        let traces = lower(
            &prog,
            &LowerOptions {
                cores: cfg.nodes(),
                emit_busy: true,
            },
            None,
        );
        let out = simulate_checked(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::PctOfCap(50),
            },
        );
        (
            out.check.expect("checked run records CheckData"),
            out.result,
        )
    }

    #[test]
    fn healthy_run_passes_all_invariants() {
        let (data, result) = checked_run();
        let report = check_run(&data, &result);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.requests > 0);
        assert!(data.dram_requests > 0);
        assert!(result.ndc_attempts > 0, "need NDC traffic for the matrix");
    }

    #[test]
    fn every_fault_trips_exactly_its_invariant() {
        let (clean_data, clean_result) = checked_run();
        for (k, fault) in ALL_FAULTS.iter().enumerate() {
            let mut data = clean_data.clone();
            let mut result = clean_result.clone();
            let injected = inject(&mut data, &mut result, *fault, 0x9E37 + k as u64);
            assert!(
                injected,
                "{}: no injection site in a real run",
                fault.label()
            );
            let report = check_run(&data, &result);
            assert!(
                report.violated(fault.expected_invariant()),
                "{}: expected a {} violation, got {:?}",
                fault.label(),
                fault.expected_invariant().label(),
                report.violations
            );
        }
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let (clean_data, clean_result) = checked_run();
        let mut a = (clean_data.clone(), clean_result.clone());
        let mut b = (clean_data, clean_result);
        assert!(inject(&mut a.0, &mut a.1, Fault::DroppedFlit, 42));
        assert!(inject(&mut b.0, &mut b.1, Fault::DroppedFlit, 42));
        assert_eq!(a.0.events.len(), b.0.events.len());
        let same =
            a.0.events
                .iter()
                .zip(b.0.events.iter())
                .all(|(x, y)| x.name == y.name && x.ts == y.ts && x.pid == y.pid && x.tid == y.tid);
        assert!(same, "same seed must pick the same victim");
    }

    #[test]
    fn inject_reports_missing_sites() {
        let mut data = CheckData::default();
        let mut result = SimResult::default();
        for fault in ALL_FAULTS {
            assert!(
                !inject(&mut data, &mut result, fault, 1),
                "{}: empty run has no injection site",
                fault.label()
            );
        }
    }

    /// A full checked run whose `EngineOutput` carries the attribution
    /// ledger (enabled whenever invariants are checked).
    fn checked_output() -> ndc_sim::EngineOutput {
        let cfg = ArchConfig::paper_default();
        let prog = by_name("kdtree").unwrap().build_timesteps(Scale::Test, 1);
        let traces = lower(
            &prog,
            &LowerOptions {
                cores: cfg.nodes(),
                emit_busy: true,
            },
            None,
        );
        simulate_checked(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::PctOfCap(50),
            },
        )
    }

    #[test]
    fn healthy_ledger_passes_conservation() {
        let out = checked_output();
        assert!(out.ledger.is_some(), "checked runs must carry a ledger");
        let report = crate::invariant::check_engine_output(&out);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn every_ledger_fault_trips_conservation() {
        let clean = checked_output();
        for (k, fault) in ALL_LEDGER_FAULTS.iter().enumerate() {
            let mut out = checked_output();
            out.ledger = clean.ledger.clone();
            let ledger = out.ledger.as_mut().expect("checked run carries a ledger");
            assert!(
                inject_ledger(ledger, *fault, 0xADD5 + k as u64),
                "{}: no injection site in a real run",
                fault.label()
            );
            let report = crate::invariant::check_engine_output(&out);
            assert!(
                report.violated(fault.expected_invariant()),
                "{}: expected a {} violation, got {:?}",
                fault.label(),
                fault.expected_invariant().label(),
                report.violations
            );
        }
    }

    #[test]
    fn ledger_injection_is_seed_deterministic_and_reports_missing_sites() {
        let clean = checked_output().ledger.unwrap();
        for fault in ALL_LEDGER_FAULTS {
            let mut a = clean.clone();
            let mut b = clean.clone();
            assert!(inject_ledger(&mut a, fault, 99));
            assert!(inject_ledger(&mut b, fault, 99));
            assert_eq!(
                a,
                b,
                "{}: same seed must pick the same victim",
                fault.label()
            );
        }
        let mut empty = AttributionLedger::new(1);
        for fault in ALL_LEDGER_FAULTS {
            assert!(
                !inject_ledger(&mut empty, fault, 1),
                "{}: empty ledger has no injection site",
                fault.label()
            );
        }
    }

    /// Two dependent statements (S0 writes Z, S1 reads it) plus a
    /// wavefront carried dependence: every schedule-fault class has an
    /// injection site.
    fn faultable_prog() -> ndc_ir::Program {
        use ndc_ir::{ArrayDecl, ArrayRef, LoopNest, Ref, Stmt};
        use ndc_types::Op;
        let mut p = ndc_ir::Program::new("faultable");
        let z = p.add_array(ArrayDecl::new("Z", vec![17, 16], 8));
        let w = p.add_array(ArrayDecl::new("W", vec![17, 16], 8));
        let s0 = Stmt::binary(
            0,
            ArrayRef::identity(z, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(z, 2, vec![-1, 1])),
            Ref::Const(1.0),
            1,
        );
        let s1 = Stmt::binary(
            1,
            ArrayRef::identity(w, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(z, 2, vec![0, 0])),
            Ref::Const(0.0),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![1, 0], vec![16, 15], vec![s0, s1]));
        p.assign_layout(0, 4096);
        p
    }

    #[test]
    fn every_schedule_fault_draws_exactly_its_lint_error() {
        let p = faultable_prog();
        for (k, fault) in ALL_SCHEDULE_FAULTS.iter().enumerate() {
            let mut sched = Schedule::default();
            assert!(
                inject_schedule(&p, &mut sched, *fault, 0xC0FF + k as u64),
                "{}: no injection site",
                fault.label()
            );
            let report = ndc_lint::lint_schedule(&p, &sched);
            assert!(
                report
                    .errors
                    .iter()
                    .any(|e| e.label() == fault.expected_lint()),
                "{}: expected a {} error, got {:?}",
                fault.label(),
                fault.expected_lint(),
                report.errors
            );
        }
    }

    #[test]
    fn schedule_injection_is_seed_deterministic() {
        let p = faultable_prog();
        for fault in ALL_SCHEDULE_FAULTS {
            let mut a = Schedule::default();
            let mut b = Schedule::default();
            assert!(inject_schedule(&p, &mut a, fault, 77));
            assert!(inject_schedule(&p, &mut b, fault, 77));
            assert_eq!(a.transforms, b.transforms, "{}", fault.label());
            assert_eq!(a.stmt_order, b.stmt_order, "{}", fault.label());
        }
    }

    #[test]
    fn schedule_inject_reports_missing_sites() {
        use ndc_ir::{ArrayDecl, ArrayRef, LoopNest, Ref, Stmt};
        // A single-statement dependence-free nest: nothing to swap and
        // no dependent pair, so the order faults have no site; the
        // transform faults always do.
        let mut p = ndc_ir::Program::new("clean");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        let s = Stmt::copy(0, ArrayRef::identity(x, 1, vec![0]), Ref::Const(1.0), 0);
        p.nests.push(LoopNest::new(0, vec![0], vec![8], vec![s]));
        p.assign_layout(0, 64);
        let mut sched = Schedule::default();
        assert!(!inject_schedule(
            &p,
            &mut sched,
            ScheduleFault::SwappedDependentStmts,
            1
        ));
        assert!(!inject_schedule(
            &p,
            &mut sched,
            ScheduleFault::CorruptedPermutation,
            1
        ));
        assert!(sched.transforms.is_empty() && sched.stmt_order.is_empty());
        assert!(inject_schedule(
            &p,
            &mut sched,
            ScheduleFault::NonUnimodularTransform,
            1
        ));
    }
}
