//! Seeded fault injection: corrupt a recorded run in a controlled way
//! and prove the matching invariant fires.
//!
//! Each [`Fault`] models a concrete simulator bug class and maps to
//! exactly one [`Invariant`]. Victim selection is driven by
//! [`SplitMix64`] so every injection is reproducible from its seed.

use crate::invariant::Invariant;
use ndc_obs::chk;
use ndc_sim::{CheckData, SimResult};
use ndc_types::SplitMix64;

/// A class of injected simulator fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A flit vanishes in the network: one `FLIT_EXIT` event is removed,
    /// so that link's occupancy never drains back to zero.
    DroppedFlit,
    /// A DRAM response is delayed past the rest of its request's path:
    /// one `MEM_DONE` timestamp jumps far into the future, breaking
    /// per-request timestamp monotonicity.
    DelayedDramResponse,
    /// A stale offload-table window replays a completed request: one
    /// `RETIRE` event is duplicated, so the request retires twice.
    StaleOffloadWindow,
    /// A corrupted reshape tally: `ndc_attempts` is bumped without a
    /// matching performed/abort outcome, breaking NDC accounting.
    CorruptedReshape,
}

/// All fault classes, in a fixed order for deterministic matrices.
pub const ALL_FAULTS: [Fault; 4] = [
    Fault::DroppedFlit,
    Fault::DelayedDramResponse,
    Fault::StaleOffloadWindow,
    Fault::CorruptedReshape,
];

impl Fault {
    pub fn label(&self) -> &'static str {
        match self {
            Fault::DroppedFlit => "dropped-flit",
            Fault::DelayedDramResponse => "delayed-dram-response",
            Fault::StaleOffloadWindow => "stale-offload-window",
            Fault::CorruptedReshape => "corrupted-reshape",
        }
    }

    /// The invariant this fault class is designed to violate.
    pub fn expected_invariant(&self) -> Invariant {
        match self {
            Fault::DroppedFlit => Invariant::LinkOccupancy,
            Fault::DelayedDramResponse => Invariant::PathMonotonic,
            Fault::StaleOffloadWindow => Invariant::RetireOnce,
            Fault::CorruptedReshape => Invariant::NdcAccounting,
        }
    }
}

/// Pick a seeded victim among event indices whose name matches `name`.
fn pick_index(data: &CheckData, name: &str, rng: &mut SplitMix64) -> Option<usize> {
    let sites: Vec<usize> = data
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.name == name)
        .map(|(i, _)| i)
        .collect();
    if sites.is_empty() {
        None
    } else {
        Some(sites[rng.below(sites.len() as u64) as usize])
    }
}

/// Inject `fault` into a recorded run. Returns `false` when the run has
/// no applicable site (e.g. no DRAM traffic to delay), in which case
/// nothing is modified.
pub fn inject(data: &mut CheckData, result: &mut SimResult, fault: Fault, seed: u64) -> bool {
    let mut rng = SplitMix64::new(seed);
    match fault {
        Fault::DroppedFlit => match pick_index(data, chk::FLIT_EXIT, &mut rng) {
            Some(i) => {
                data.events.remove(i);
                true
            }
            None => false,
        },
        Fault::DelayedDramResponse => match pick_index(data, chk::MEM_DONE, &mut rng) {
            Some(i) => {
                data.events[i].ts += 1_000_000_000;
                true
            }
            None => false,
        },
        Fault::StaleOffloadWindow => match pick_index(data, chk::RETIRE, &mut rng) {
            Some(i) => {
                let dup = data.events[i].clone();
                data.events.push(dup);
                true
            }
            None => false,
        },
        Fault::CorruptedReshape => {
            if result.ndc_attempts == 0 {
                return false;
            }
            result.ndc_attempts += 1 + rng.below(7);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::check_run;
    use ndc_ir::{lower, LowerOptions};
    use ndc_sim::{simulate_checked, Scheme, WaitBudget};
    use ndc_types::ArchConfig;
    use ndc_workloads::{by_name, Scale};

    /// A real checked run with NDC traffic so every fault class has an
    /// injection site (kdtree offloads on every chain).
    fn checked_run() -> (CheckData, SimResult) {
        let cfg = ArchConfig::paper_default();
        let prog = by_name("kdtree").unwrap().build_timesteps(Scale::Test, 1);
        let traces = lower(
            &prog,
            &LowerOptions {
                cores: cfg.nodes(),
                emit_busy: true,
            },
            None,
        );
        let out = simulate_checked(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::PctOfCap(50),
            },
        );
        (
            out.check.expect("checked run records CheckData"),
            out.result,
        )
    }

    #[test]
    fn healthy_run_passes_all_invariants() {
        let (data, result) = checked_run();
        let report = check_run(&data, &result);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.requests > 0);
        assert!(data.dram_requests > 0);
        assert!(result.ndc_attempts > 0, "need NDC traffic for the matrix");
    }

    #[test]
    fn every_fault_trips_exactly_its_invariant() {
        let (clean_data, clean_result) = checked_run();
        for (k, fault) in ALL_FAULTS.iter().enumerate() {
            let mut data = clean_data.clone();
            let mut result = clean_result.clone();
            let injected = inject(&mut data, &mut result, *fault, 0x9E37 + k as u64);
            assert!(
                injected,
                "{}: no injection site in a real run",
                fault.label()
            );
            let report = check_run(&data, &result);
            assert!(
                report.violated(fault.expected_invariant()),
                "{}: expected a {} violation, got {:?}",
                fault.label(),
                fault.expected_invariant().label(),
                report.violations
            );
        }
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let (clean_data, clean_result) = checked_run();
        let mut a = (clean_data.clone(), clean_result.clone());
        let mut b = (clean_data, clean_result);
        assert!(inject(&mut a.0, &mut a.1, Fault::DroppedFlit, 42));
        assert!(inject(&mut b.0, &mut b.1, Fault::DroppedFlit, 42));
        assert_eq!(a.0.events.len(), b.0.events.len());
        let same =
            a.0.events
                .iter()
                .zip(b.0.events.iter())
                .all(|(x, y)| x.name == y.name && x.ts == y.ts && x.pid == y.pid && x.tid == y.tid);
        assert!(same, "same seed must pick the same victim");
    }

    #[test]
    fn inject_reports_missing_sites() {
        let mut data = CheckData::default();
        let mut result = SimResult::default();
        for fault in ALL_FAULTS {
            assert!(
                !inject(&mut data, &mut result, fault, 1),
                "{}: empty run has no injection site",
                fault.label()
            );
        }
    }
}
