//! Conservation-law invariants over a checked simulation run.
//!
//! Input is the [`ndc_sim::CheckData`] stream recorded by a
//! `CheckLevel::full()` run (the `ndc_obs::chk` event contract) plus
//! the run's [`ndc_sim::SimResult`] counters. All maps are ordered
//! (`BTreeMap`) so violation reports are deterministic.

use ndc_obs::ledger::{AttributionLedger, NUM_LOCATIONS};
use ndc_obs::span::SpanTrace;
use ndc_obs::{chk, Event};
use ndc_sim::{CheckData, EngineOutput, SimResult};
use std::collections::BTreeMap;

/// The conservation laws the checker asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Every issued request retires exactly once.
    RetireOnce,
    /// Per-link flit enters and exits pair up (occupancy non-negative,
    /// drained to zero at end of run).
    LinkOccupancy,
    /// Timestamps are monotonically non-decreasing along each request
    /// path.
    PathMonotonic,
    /// `ndc_performed + per-reason aborts == ndc_attempts`.
    NdcAccounting,
    /// DRAM row-buffer outcomes account for every controller request.
    DramAccounting,
    /// Every sampled span tree partitions its root exactly: child
    /// durations (including queue/stall residue) sum to the request's
    /// end-to-end latency at every level.
    SpanAttribution,
    /// The attribution ledger's column sums equal the simulator's
    /// global counters (NoC messages/flit-hops, DRAM bytes, NDC
    /// offload/wait cycles, request count), and each tenant row's
    /// gather + wait + exec + feed decomposition tiles its offload
    /// column exactly. Nothing charged twice, nothing dropped.
    LedgerConservation,
}

impl Invariant {
    pub fn label(&self) -> &'static str {
        match self {
            Invariant::RetireOnce => "retire-once",
            Invariant::LinkOccupancy => "link-occupancy",
            Invariant::PathMonotonic => "path-monotonic",
            Invariant::NdcAccounting => "ndc-accounting",
            Invariant::DramAccounting => "dram-accounting",
            Invariant::SpanAttribution => "span-attribution",
            Invariant::LedgerConservation => "ledger-conservation",
        }
    }
}

/// One invariant violation, with a human-readable locus.
#[derive(Debug, Clone)]
pub struct Violation {
    pub invariant: Invariant,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant.label(), self.detail)
    }
}

/// Outcome of checking one run.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Distinct request ids seen in the stream.
    pub requests: usize,
    /// Distinct links seen in the stream.
    pub links: usize,
    /// Events examined.
    pub events: usize,
    pub violations: Vec<Violation>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether some violation of `inv` was found.
    pub fn violated(&self, inv: Invariant) -> bool {
        self.violations.iter().any(|v| v.invariant == inv)
    }
}

/// Check the stream-level invariants (retire-once, path monotonicity,
/// link occupancy) over a check-event stream.
pub fn check_stream(events: &[Event]) -> CheckReport {
    let mut report = CheckReport {
        events: events.len(),
        ..Default::default()
    };

    // Per-request bookkeeping, in request-id order.
    #[derive(Default)]
    struct ReqState {
        issues: u64,
        retires: u64,
        last_ts: Option<u64>,
        monotonic_broken: Option<String>,
    }
    let mut reqs: BTreeMap<u32, ReqState> = BTreeMap::new();
    // Per-link enter/exit timestamps, in link-id order.
    let mut links: BTreeMap<u32, (Vec<u64>, Vec<u64>)> = BTreeMap::new();

    for ev in events {
        if ev.cat == chk::CAT_REQ {
            let st = reqs.entry(ev.pid).or_default();
            match ev.name.as_str() {
                n if n == chk::ISSUE => st.issues += 1,
                n if n == chk::RETIRE => st.retires += 1,
                _ => {}
            }
            if let Some(prev) = st.last_ts {
                if ev.ts < prev && st.monotonic_broken.is_none() {
                    st.monotonic_broken = Some(format!(
                        "request {}: {} at cycle {} precedes prior event at cycle {}",
                        ev.pid, ev.name, ev.ts, prev
                    ));
                }
            }
            st.last_ts = Some(ev.ts);
        } else if ev.cat == chk::CAT_LINK {
            let (enters, exits) = links.entry(ev.tid).or_default();
            match ev.name.as_str() {
                n if n == chk::FLIT_ENTER => enters.push(ev.ts),
                n if n == chk::FLIT_EXIT => exits.push(ev.ts),
                _ => {}
            }
        }
    }

    report.requests = reqs.len();
    report.links = links.len();

    for (id, st) in &reqs {
        if st.issues != 1 || st.retires != 1 {
            report.violations.push(Violation {
                invariant: Invariant::RetireOnce,
                detail: format!(
                    "request {id}: {} issue(s), {} retire(s) (want exactly 1 of each)",
                    st.issues, st.retires
                ),
            });
        }
        if let Some(d) = &st.monotonic_broken {
            report.violations.push(Violation {
                invariant: Invariant::PathMonotonic,
                detail: d.clone(),
            });
        }
    }

    for (link, (enters, exits)) in &mut links {
        if enters.len() != exits.len() {
            report.violations.push(Violation {
                invariant: Invariant::LinkOccupancy,
                detail: format!(
                    "link {link}: {} flit enters vs {} exits (occupancy does not drain to zero)",
                    enters.len(),
                    exits.len()
                ),
            });
            continue;
        }
        // Feasible matching check: pairing the i-th earliest enter with
        // the i-th earliest exit must never require an exit before its
        // enter — otherwise occupancy went negative at some point.
        enters.sort_unstable();
        exits.sort_unstable();
        if let Some((i, (en, ex))) = enters
            .iter()
            .zip(exits.iter())
            .enumerate()
            .find(|(_, (en, ex))| ex < en)
        {
            report.violations.push(Violation {
                invariant: Invariant::LinkOccupancy,
                detail: format!(
                    "link {link}: {i}-th flit exit at cycle {ex} precedes its enter at cycle {en}"
                ),
            });
        }
    }

    report
}

/// Check the counter-level conservation laws of a [`SimResult`]:
/// every NDC attempt either performed or aborted with a tallied reason.
pub fn check_counters(result: &SimResult) -> Vec<Violation> {
    let mut v = Vec::new();
    let attempts = result.ndc_attempts;
    let accounted = result.ndc_total() + result.ndc_abort_reasons.iter().sum::<u64>();
    if attempts != accounted {
        v.push(Violation {
            invariant: Invariant::NdcAccounting,
            detail: format!(
                "ndc_attempts = {attempts} but performed + per-reason aborts = {accounted}"
            ),
        });
    }
    v
}

/// Check the span-attribution invariant over the sampled span traces
/// of a run: every tree tiles its root exactly (no gap, no overlap,
/// residue labelled), so child durations sum to the end-to-end latency.
pub fn check_spans(spans: &[SpanTrace]) -> Vec<Violation> {
    let mut v = Vec::new();
    for t in spans {
        if let Some(detail) = t.root.partition_violation() {
            v.push(Violation {
                invariant: Invariant::SpanAttribution,
                detail: format!("req#{} (core {}): {detail}", t.id, t.core),
            });
        }
    }
    v
}

/// Check the ledger-conservation invariant: the attribution ledger's
/// column sums must equal the simulator's independently recorded global
/// counters, and every tenant row must be internally consistent
/// (decomposition tiles offload, sketch counts match charge counts).
///
/// This is what makes the ledger trustworthy: a dropped, doubled, or
/// mis-clamped charge anywhere in the engines breaks a column sum here.
pub fn check_ledger(
    ledger: &AttributionLedger,
    data: &CheckData,
    result: &SimResult,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut fail = |detail: String| {
        v.push(Violation {
            invariant: Invariant::LedgerConservation,
            detail,
        });
    };
    let col =
        |f: fn(&ndc_obs::ledger::TenantRow) -> u64| -> u64 { ledger.rows().iter().map(f).sum() };

    // Column sums against the independent global recorders.
    let checks: [(&str, u64, u64); 3] = [
        ("noc_messages", col(|r| r.noc_messages), data.noc_messages),
        (
            "noc_flit_hops",
            col(|r| r.noc_flit_hops),
            data.noc_flit_hops,
        ),
        ("dram_bytes", col(|r| r.dram_bytes), data.dram_bytes),
    ];
    for (name, ledger_sum, global) in checks {
        if ledger_sum != global {
            fail(format!(
                "{name}: ledger column sums to {ledger_sum} but the global counter is {global}"
            ));
        }
    }

    // NDC columns against the per-location `SimResult` counters.
    for loc in 0..NUM_LOCATIONS {
        let offload: u64 = ledger
            .rows()
            .iter()
            .map(|r| r.ndc_offload_cycles[loc])
            .sum();
        let wait: u64 = ledger.rows().iter().map(|r| r.ndc_wait_cycles[loc]).sum();
        let samples: u64 = ledger.rows().iter().map(|r| r.offload[loc].count()).sum();
        if offload != result.ndc_offload_cycles[loc] {
            fail(format!(
                "ndc_offload_cycles[{loc}]: ledger column sums to {offload} but SimResult has {}",
                result.ndc_offload_cycles[loc]
            ));
        }
        if wait != result.ndc_wait_cycles[loc] {
            fail(format!(
                "ndc_wait_cycles[{loc}]: ledger column sums to {wait} but SimResult has {}",
                result.ndc_wait_cycles[loc]
            ));
        }
        if samples != result.ndc_offload_samples[loc] {
            fail(format!(
                "offload sketch[{loc}]: ledger holds {samples} samples but SimResult \
                 performed {}",
                result.ndc_offload_samples[loc]
            ));
        }
    }

    // Per-row internal consistency.
    for (t, r) in ledger.rows().iter().enumerate() {
        for loc in 0..NUM_LOCATIONS {
            let parts = r.ndc_gather_cycles[loc]
                + r.ndc_wait_cycles[loc]
                + r.ndc_exec_cycles[loc]
                + r.ndc_feed_cycles[loc];
            if parts != r.ndc_offload_cycles[loc] {
                fail(format!(
                    "tenant {t} loc {loc}: gather+wait+exec+feed = {parts} does not tile \
                     offload column {}",
                    r.ndc_offload_cycles[loc]
                ));
            }
        }
        if r.latency.count() != r.requests {
            fail(format!(
                "tenant {t}: latency sketch holds {} samples but the row charged {} requests",
                r.latency.count(),
                r.requests
            ));
        }
        if r.latency.sum() != r.request_cycles {
            fail(format!(
                "tenant {t}: latency sketch sums to {} cycles but the row charged {}",
                r.latency.sum(),
                r.request_cycles
            ));
        }
    }
    v
}

/// Check everything for one recorded run: the event stream, the
/// `SimResult` counters, and the DRAM accounting totals.
pub fn check_run(data: &CheckData, result: &SimResult) -> CheckReport {
    let mut report = check_stream(&data.events);
    report.violations.extend(check_counters(result));
    if data.dram_requests != data.dram_outcomes {
        report.violations.push(Violation {
            invariant: Invariant::DramAccounting,
            detail: format!(
                "{} DRAM requests but {} row-buffer outcomes",
                data.dram_requests, data.dram_outcomes
            ),
        });
    }
    report
}

/// Convenience: check a `CheckLevel::full()` engine run — the recorded
/// stream, the counters, and the sampled span traces. Panics if the
/// run was not checked (no [`CheckData`] collected).
pub fn check_engine_output(out: &EngineOutput) -> CheckReport {
    let data = out
        .check
        .as_ref()
        .expect("engine run without CheckLevel::full(); nothing to check");
    let mut report = check_run(data, &out.result);
    report.violations.extend(check_spans(&out.spans));
    if let Some(ledger) = &out.ledger {
        report
            .violations
            .extend(check_ledger(ledger, data, &out.result));
        // The request column is conserved against the check stream
        // itself: one charge per distinct request id seen issuing.
        let charged: u64 = ledger.rows().iter().map(|r| r.requests).sum();
        if charged != report.requests as u64 {
            report.violations.push(Violation {
                invariant: Invariant::LedgerConservation,
                detail: format!(
                    "requests: ledger charged {charged} but the check stream saw {} \
                     distinct requests",
                    report.requests
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &'static str, ts: u64, pid: u32) -> Event {
        Event {
            name: name.to_string(),
            cat: chk::CAT_REQ,
            ts,
            dur: 0,
            pid,
            tid: 0,
        }
    }

    fn flit(name: &'static str, ts: u64, link: u32) -> Event {
        Event {
            name: name.to_string(),
            cat: chk::CAT_LINK,
            ts,
            dur: 0,
            pid: 0,
            tid: link,
        }
    }

    fn healthy_stream() -> Vec<Event> {
        vec![
            req(chk::ISSUE, 0, 0),
            req(chk::L2_REQ, 10, 0),
            req(chk::MEM_QUEUE, 20, 0),
            req(chk::MEM_SERVICE, 25, 0),
            req(chk::MEM_DONE, 80, 0),
            req(chk::DATA_AT_BANK, 95, 0),
            req(chk::RETIRE, 110, 0),
            req(chk::ISSUE, 5, 1),
            req(chk::RETIRE, 8, 1),
            flit(chk::FLIT_ENTER, 12, 3),
            flit(chk::FLIT_EXIT, 15, 3),
            flit(chk::FLIT_ENTER, 14, 3),
            flit(chk::FLIT_EXIT, 17, 3),
        ]
    }

    #[test]
    fn healthy_stream_passes() {
        let r = check_stream(&healthy_stream());
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.requests, 2);
        assert_eq!(r.links, 1);
        assert_eq!(r.events, 13);
    }

    #[test]
    fn duplicate_retire_is_caught() {
        let mut evs = healthy_stream();
        evs.push(req(chk::RETIRE, 110, 0));
        let r = check_stream(&evs);
        assert!(r.violated(Invariant::RetireOnce));
        assert!(!r.violated(Invariant::PathMonotonic));
    }

    #[test]
    fn missing_retire_is_caught() {
        let evs: Vec<Event> = healthy_stream()
            .into_iter()
            .filter(|e| !(e.pid == 1 && e.name == chk::RETIRE))
            .collect();
        let r = check_stream(&evs);
        assert!(r.violated(Invariant::RetireOnce));
    }

    #[test]
    fn non_monotonic_path_is_caught() {
        let mut evs = healthy_stream();
        // Delay MEM_DONE past everything after it.
        evs[4].ts = 1_000_000;
        let r = check_stream(&evs);
        assert!(r.violated(Invariant::PathMonotonic));
        assert!(!r.violated(Invariant::RetireOnce));
    }

    #[test]
    fn unbalanced_flits_are_caught() {
        let evs: Vec<Event> = healthy_stream()
            .into_iter()
            .filter(|e| !(e.name == chk::FLIT_EXIT && e.ts == 17))
            .collect();
        let r = check_stream(&evs);
        assert!(r.violated(Invariant::LinkOccupancy));
    }

    #[test]
    fn exit_before_enter_is_caught() {
        let evs = vec![flit(chk::FLIT_ENTER, 100, 7), flit(chk::FLIT_EXIT, 5, 7)];
        let r = check_stream(&evs);
        assert!(r.violated(Invariant::LinkOccupancy));
    }

    #[test]
    fn ndc_accounting_checks_sim_result() {
        let mut result = SimResult {
            ndc_attempts: 10,
            ndc_performed: [4, 2, 0, 0],
            ..Default::default()
        };
        result.ndc_abort_reasons[0] = 3;
        result.ndc_abort_reasons[2] = 1;
        assert!(check_counters(&result).is_empty());
        result.ndc_attempts = 11;
        let v = check_counters(&result);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::NdcAccounting);
    }

    #[test]
    fn span_attribution_passes_exact_trees_and_catches_corruption() {
        use ndc_obs::span::{Span, STALL};
        let mut root = Span::new("req", 100, 160);
        root.leaf("l1", 100, 104);
        root.leaf("l2", 120, 130);
        root.fill_residue(STALL);
        let healthy = SpanTrace {
            id: 3,
            core: 1,
            addr: 0x40,
            root,
        };
        assert!(check_spans(std::slice::from_ref(&healthy)).is_empty());

        // Lose a residue leaf: the sum no longer reaches the latency.
        let mut corrupted = healthy;
        corrupted.root.children.pop();
        let v = check_spans(&[corrupted]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::SpanAttribution);
        assert!(v[0].detail.contains("req#3"), "{}", v[0].detail);
        assert_eq!(Invariant::SpanAttribution.label(), "span-attribution");
    }

    #[test]
    fn dram_accounting_checks_check_data() {
        let data = CheckData {
            events: healthy_stream(),
            dram_requests: 5,
            dram_outcomes: 5,
            ..Default::default()
        };
        let result = SimResult::default();
        assert!(check_run(&data, &result).ok());
        let broken = CheckData {
            dram_outcomes: 4,
            ..data
        };
        let r = check_run(&broken, &result);
        assert!(r.violated(Invariant::DramAccounting));
    }
}
