//! Reuse-soundness cross-check: the interpreter-measured footprints of
//! every reference must reconcile with `ndc-reuse`'s statically derived
//! counts — `Exact`-tagged predictions by equality, `Bound`-tagged by
//! domination. This is the contract the compiler's integer cost model
//! rests on, held to the same standard as the simulator invariants: a
//! seeded fault ([`inject_reuse`]) proves the check actually fires.

use ndc_reuse::{cross_check_program, CrossCheckSummary, Exactness, ReuseReport};
use ndc_types::SplitMix64;

/// Stable label of the reuse-soundness invariant in `ndc-eval check`
/// tables and `--json` output.
pub const REUSE_SOUNDNESS: &str = "reuse-soundness";

/// Stable label of the seeded reuse fault in the fault matrix.
pub const CORRUPTED_REUSE_VECTOR: &str = "corrupted-reuse-vector";

/// Analyze a program and cross-check every reference's static counts
/// against interpreter-measured footprints at the given line sizes.
pub fn cross_check_workload(
    prog: &ndc_ir::Program,
    l1_line: u64,
    l2_line: u64,
) -> CrossCheckSummary {
    let report = ndc_reuse::analyze_program(prog, l1_line, l2_line);
    cross_check_program(prog, &report, l1_line, l2_line)
}

/// Corrupt one reuse fact in a controlled, seeded way: bump an
/// `Exact`-tagged L2-line count (breaking the equality side), falling
/// back to zeroing a `Bound`-tagged count (breaking domination, since
/// any nonempty footprint exceeds zero). Returns `false` when the
/// report has no reference to corrupt, in which case nothing changes.
pub fn inject_reuse(report: &mut ReuseReport, seed: u64) -> bool {
    let mut rng = SplitMix64::new(seed);
    let exact_sites: Vec<(usize, usize)> = report
        .nests
        .iter()
        .enumerate()
        .flat_map(|(ni, nest)| {
            nest.refs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.l2_lines.tag == Exactness::Exact)
                .map(move |(ri, _)| (ni, ri))
        })
        .collect();
    if !exact_sites.is_empty() {
        let (ni, ri) = exact_sites[rng.below(exact_sites.len() as u64) as usize];
        let f = &mut report.nests[ni].refs[ri];
        f.l2_lines.value += 1 + rng.below(7);
        return true;
    }
    // No exact facts (every ref defeated the prover): understate a
    // bound instead — domination then fails on any touched line.
    let bound_sites: Vec<(usize, usize)> = report
        .nests
        .iter()
        .enumerate()
        .flat_map(|(ni, nest)| {
            nest.refs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.l2_lines.value > 0)
                .map(move |(ri, _)| (ni, ri))
        })
        .collect();
    if bound_sites.is_empty() {
        return false;
    }
    let (ni, ri) = bound_sites[rng.below(bound_sites.len() as u64) as usize];
    report.nests[ni].refs[ri].l2_lines.value = 0;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> ndc_ir::Program {
        // mgrid: dense unit-stride refs, every count proves exact.
        ndc_workloads::by_name("mgrid")
            .unwrap()
            .build(ndc_workloads::Scale::Test)
    }

    #[test]
    fn suite_workloads_cross_check_clean() {
        let sum = cross_check_workload(&prog(), 64, 256);
        assert!(sum.ok(), "violations: {:?}", sum.violations);
        assert!(sum.exact_refs > 0, "mgrid kernels should prove exact");
        // A strided workload whose line counts only bound: the
        // domination side of the contract must hold too.
        let swim = ndc_workloads::by_name("swim")
            .unwrap()
            .build(ndc_workloads::Scale::Test);
        let sum = cross_check_workload(&swim, 64, 256);
        assert!(sum.ok(), "violations: {:?}", sum.violations);
        assert!(sum.bound_refs > 0, "strided refs should carry bounds");
    }

    #[test]
    fn injected_corruption_trips_the_cross_check() {
        let p = prog();
        let mut report = ndc_reuse::analyze_program(&p, 64, 256);
        assert!(inject_reuse(&mut report, 0xC0FFEE));
        let sum = cross_check_program(&p, &report, 64, 256);
        assert!(!sum.ok(), "corrupted reuse vector must be caught");
        assert!(sum.violations.iter().any(|v| v.contains("l2-lines")));
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let p = prog();
        let mut a = ndc_reuse::analyze_program(&p, 64, 256);
        let mut b = ndc_reuse::analyze_program(&p, 64, 256);
        assert!(inject_reuse(&mut a, 42));
        assert!(inject_reuse(&mut b, 42));
        for (na, nb) in a.nests.iter().zip(&b.nests) {
            for (fa, fb) in na.refs.iter().zip(&nb.refs) {
                assert_eq!(fa.l2_lines, fb.l2_lines);
            }
        }
    }

    #[test]
    fn empty_report_has_no_injection_site() {
        let mut empty = ReuseReport { nests: Vec::new() };
        assert!(!inject_reuse(&mut empty, 1));
    }
}
