//! Temporal/spatial reuse classification from the composite address
//! form's symbolic reuse vector (the per-loop coefficients `A_j`).
//!
//! The innermost coefficient is the element stride between consecutive
//! iterations: zero means the innermost loop revisits the same element
//! (self-temporal reuse at distance 1), a stride smaller than the L1
//! line means consecutive iterations stay in-line (self-spatial reuse).
//! A coupled subscript whose distinct-value count falls below the
//! iteration count revisits elements across outer dimensions — group
//! temporal reuse the pigeonhole argument proves without solving the
//! reuse equation.

use crate::form::AddressForm;

/// A reference's dominant reuse class over its nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseClass {
    /// Every iteration touches the same element (all coefficients
    /// zero): perfect temporal reuse, e.g. a reduction accumulator.
    LoopInvariant,
    /// The innermost loop leaves the element fixed (innermost
    /// coefficient zero): self-temporal reuse carried by the innermost
    /// loop, e.g. `A[i][k]` inside a `(i, j)` nest.
    TemporalInnermost,
    /// Coupled subscripts revisit elements across iterations (distinct
    /// elements < iterations) without innermost invariance, e.g.
    /// `X[i+j]`.
    TemporalCoupled,
    /// Consecutive innermost iterations fall in the same L1 line.
    Spatial { stride_bytes: u64 },
    /// The innermost stride jumps past the L1 line: no short-distance
    /// reuse.
    NoReuse { stride_bytes: u64 },
}

impl ReuseClass {
    pub fn label(&self) -> &'static str {
        match self {
            ReuseClass::LoopInvariant => "invariant",
            ReuseClass::TemporalInnermost => "temporal-inner",
            ReuseClass::TemporalCoupled => "temporal-coupled",
            ReuseClass::Spatial { .. } => "spatial",
            ReuseClass::NoReuse { .. } => "none",
        }
    }
}

/// Classify a reference from its canonical address form.
pub fn classify(form: &AddressForm, l1_line_bytes: u64) -> ReuseClass {
    if form.raw_coeffs.iter().all(|&a| a == 0) {
        return ReuseClass::LoopInvariant;
    }
    let innermost = form.raw_coeffs.last().copied().unwrap_or(0);
    if innermost == 0 {
        return ReuseClass::TemporalInnermost;
    }
    // Pigeonhole: an over-approximate distinct count below the
    // iteration count still proves revisits.
    let elems = form.distinct_elements();
    if !form.is_empty() && elems.value < form.points {
        return ReuseClass::TemporalCoupled;
    }
    let stride_bytes = innermost.unsigned_abs().saturating_mul(form.elem_bytes);
    if stride_bytes < l1_line_bytes {
        ReuseClass::Spatial { stride_bytes }
    } else {
        ReuseClass::NoReuse { stride_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program};

    fn classify_ref(
        dims: Vec<u64>,
        lo: Vec<i64>,
        hi: Vec<i64>,
        rows: &[&[i64]],
        offs: Vec<i64>,
    ) -> ReuseClass {
        let mut p = Program::new("c");
        let x = p.add_array(ArrayDecl::new("X", dims, 8));
        p.assign_layout(0x1000, 4096);
        let nest = LoopNest::new(0, lo, hi, vec![]);
        let r = ArrayRef::affine(x, IMat::from_rows(rows), offs);
        let form = AddressForm::build(&p, &nest, &r).unwrap();
        classify(&form, 64)
    }

    #[test]
    fn stencil_row_walk_is_spatial() {
        // X[i-1][j+1] over (i, j): innermost stride one element.
        let c = classify_ref(
            vec![64, 64],
            vec![1, 0],
            vec![32, 32],
            &[&[1, 0], &[0, 1]],
            vec![-1, 1],
        );
        assert_eq!(c, ReuseClass::Spatial { stride_bytes: 8 });
    }

    #[test]
    fn dense_la_row_operand_is_temporal_innermost() {
        // A[i][k] inside an (i, j) nest (k fixed by the outer loop in
        // the 2-D slice): the j loop leaves the element unchanged.
        let c = classify_ref(
            vec![64, 64],
            vec![0, 0],
            vec![32, 32],
            &[&[1, 0], &[0, 0]],
            vec![0, 5],
        );
        assert_eq!(c, ReuseClass::TemporalInnermost);
    }

    #[test]
    fn reduction_accumulator_is_loop_invariant() {
        let c = classify_ref(vec![8], vec![0], vec![256], &[&[0]], vec![0]);
        assert_eq!(c, ReuseClass::LoopInvariant);
    }

    #[test]
    fn coupled_diagonal_sum_is_temporal_coupled() {
        // X[i+j] over 16x16: 256 iterations, 31 elements.
        let c = classify_ref(vec![64], vec![0, 0], vec![16, 16], &[&[1, 1]], vec![0]);
        assert_eq!(c, ReuseClass::TemporalCoupled);
    }

    #[test]
    fn column_walk_has_no_short_reuse() {
        // X[j][i] over (i, j): innermost stride is a whole row (64
        // elements = 512 bytes > the 64-byte L1 line).
        let c = classify_ref(
            vec![64, 64],
            vec![0, 0],
            vec![32, 32],
            &[&[0, 1], &[1, 0]],
            vec![0, 0],
        );
        assert_eq!(
            c,
            ReuseClass::NoReuse {
                stride_bytes: 64 * 8
            }
        );
    }

    #[test]
    fn negative_unit_stride_is_spatial() {
        let c = classify_ref(vec![512], vec![0], vec![256], &[&[-1]], vec![255]);
        assert_eq!(c, ReuseClass::Spatial { stride_bytes: 8 });
    }
}
