//! Per-link NoC hop-load projection: given byte flows between mesh
//! nodes, accumulate the bytes each directed link carries under
//! deterministic XY routing — the static picture of where a placement
//! concentrates traffic, attributed in `ndc-eval explain` and used by
//! the cost model's hottest-link summary.

use ndc_types::{Coord, FxHashMap, NodeId};

/// Accumulated per-directed-link byte load on a `width`-column mesh.
#[derive(Debug, Clone)]
pub struct HopLoad {
    width: u16,
    loads: FxHashMap<(u16, u16), u64>,
}

impl HopLoad {
    pub fn new(width: u16) -> Self {
        HopLoad {
            width: width.max(1),
            loads: FxHashMap::default(),
        }
    }

    /// Charge `bytes` to every link of the XY route `from → to`
    /// (x-dimension first, then y — the simulator's routing).
    pub fn add_flow(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        if bytes == 0 || from == to {
            return;
        }
        let w = self.width;
        let mut cur = from.coord(w);
        let dst = to.coord(w);
        while cur.x != dst.x {
            let nx = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            let next = Coord::new(nx, cur.y);
            self.charge(cur, next, bytes);
            cur = next;
        }
        while cur.y != dst.y {
            let ny = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            let next = Coord::new(cur.x, ny);
            self.charge(cur, next, bytes);
            cur = next;
        }
    }

    fn charge(&mut self, a: Coord, b: Coord, bytes: u64) {
        let key = (
            NodeId::from_coord(a, self.width).0,
            NodeId::from_coord(b, self.width).0,
        );
        *self.loads.entry(key).or_insert(0) += bytes;
    }

    /// Total byte·hops across all links.
    pub fn total_byte_hops(&self) -> u64 {
        self.loads.values().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The hottest directed link and its load; ties break toward the
    /// smallest `(from, to)` pair so the answer is deterministic.
    pub fn max_link(&self) -> Option<((u16, u16), u64)> {
        self.loads
            .iter()
            .map(|(&k, &v)| (k, v))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
    }

    /// Links carrying traffic, sorted by `(from, to)` for stable
    /// rendering.
    pub fn links(&self) -> Vec<((u16, u16), u64)> {
        let mut v: Vec<_> = self.loads.iter().map(|(&k, &v)| (k, v)).collect();
        v.sort_unstable();
        v
    }

    /// Scale every load by `num / den` (integer, truncating) — used to
    /// extrapolate sampled flows to the whole iteration space.
    pub fn scale(&mut self, num: u64, den: u64) {
        let den = den.max(1);
        for v in self.loads.values_mut() {
            *v = ((*v as u128 * num as u128) / den as u128).min(u64::MAX as u128) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_charges_each_link_once() {
        let mut h = HopLoad::new(4);
        // (0,0) -> (2,1): x,x then y = 3 links.
        h.add_flow(NodeId(0), NodeId(6), 10);
        assert_eq!(h.links().len(), 3);
        assert_eq!(h.total_byte_hops(), 30);
        let links = h.links();
        // First hop is (0,0)->(1,0), i.e. node 0 -> node 1.
        assert!(links.contains(&((0, 1), 10)));
        assert!(links.contains(&((1, 2), 10)));
        // Then south: node 2 -> node 6.
        assert!(links.contains(&((2, 6), 10)));
    }

    #[test]
    fn flows_accumulate_and_max_is_deterministic() {
        let mut h = HopLoad::new(4);
        h.add_flow(NodeId(0), NodeId(3), 5); // 0->1->2->3
        h.add_flow(NodeId(1), NodeId(3), 5); // 1->2->3
        assert_eq!(h.max_link(), Some(((1, 2), 10)));
        // (2,3) also carries 10; the smaller key wins the tie.
        let m = h.max_link().unwrap();
        assert_eq!(m.1, 10);
        assert_eq!(m.0, (1, 2));
    }

    #[test]
    fn self_flow_and_zero_bytes_charge_nothing() {
        let mut h = HopLoad::new(4);
        h.add_flow(NodeId(5), NodeId(5), 100);
        h.add_flow(NodeId(0), NodeId(1), 0);
        assert_eq!(h.total_byte_hops(), 0);
        assert!(h.max_link().is_none());
    }

    #[test]
    fn scale_extrapolates_sampled_flows() {
        let mut h = HopLoad::new(4);
        h.add_flow(NodeId(0), NodeId(1), 16);
        h.scale(1000, 24);
        assert_eq!(h.total_byte_hops(), 16 * 1000 / 24);
    }
}
