//! The interpreter-measured side of the soundness contract: enumerate
//! a nest's iteration space, collect the distinct element addresses
//! and cache lines a reference actually touches, and compare them
//! against the static prediction — `Exact` tags must match the
//! measurement exactly, `Bound` tags must dominate it.

use crate::report::{NestReuse, RefFacts, ReuseReport};
use crate::Exactness;
use ndc_ir::program::{ArrayRef, LoopNest, Program};
use ndc_types::FxHashSet;

/// Ground-truth footprint of one reference, by enumeration. Only
/// in-bounds accesses count (out-of-bounds index vectors address
/// nothing), mirroring the interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasuredFootprint {
    /// In-bounds accesses performed.
    pub accesses: u64,
    pub elems: u64,
    pub l1_lines: u64,
    pub l2_lines: u64,
    pub dram_bytes: u64,
}

/// Walk the nest and measure one reference's footprint. Shape
/// mismatches (which the IR verifier reports separately) measure as
/// zero.
pub fn measure_ref(
    prog: &Program,
    nest: &LoopNest,
    aref: &ArrayRef,
    l1_line: u64,
    l2_line: u64,
) -> MeasuredFootprint {
    let mut m = MeasuredFootprint::default();
    let Some(arr) = prog.arrays.get(aref.array.0 as usize) else {
        return m;
    };
    if aref.coeffs.cols != nest.depth()
        || aref.coeffs.rows != arr.dims.len()
        || aref.offsets.len() != arr.dims.len()
    {
        return m;
    }
    let mut elems: FxHashSet<u64> = FxHashSet::default();
    let mut l1: FxHashSet<u64> = FxHashSet::default();
    let mut l2: FxHashSet<u64> = FxHashSet::default();
    for point in nest.iter_points() {
        let Some(addr) = prog.addr_of(aref, &point) else {
            continue;
        };
        m.accesses += 1;
        elems.insert(addr);
        l1.insert(addr / l1_line.max(1));
        l2.insert(addr / l2_line.max(1));
    }
    m.elems = elems.len() as u64;
    m.l1_lines = l1.len() as u64;
    m.l2_lines = l2.len() as u64;
    m.dram_bytes = m.l2_lines * l2_line;
    m
}

/// One quantity's verdict: `Exact` ⇒ equality, `Bound` ⇒ domination.
fn check_one(
    what: &str,
    facts: &RefFacts,
    predicted: crate::Count,
    measured: u64,
) -> Option<String> {
    let violated = match predicted.tag {
        Exactness::Exact => predicted.value != measured,
        Exactness::Bound => predicted.value < measured,
    };
    if violated {
        Some(format!(
            "stmt {} slot {} ({}): {} {} {} vs measured {}",
            facts.stmt_pos,
            facts.slot,
            facts.array,
            what,
            predicted.tag.label(),
            predicted.value,
            measured
        ))
    } else {
        None
    }
}

/// Cross-check one reference's facts against its measured footprint.
/// Returns every violated quantity (empty = the contract holds).
pub fn cross_check_ref(facts: &RefFacts, m: &MeasuredFootprint) -> Vec<String> {
    let mut v = Vec::new();
    v.extend(check_one("elems", facts, facts.elems, m.elems));
    v.extend(check_one("l1-lines", facts, facts.l1_lines, m.l1_lines));
    v.extend(check_one("l2-lines", facts, facts.l2_lines, m.l2_lines));
    v.extend(check_one(
        "dram-bytes",
        facts,
        facts.dram_bytes,
        m.dram_bytes,
    ));
    v
}

/// Whole-program cross-check verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCheckSummary {
    /// References checked.
    pub refs: usize,
    /// References whose four counts all carry `Exact` tags.
    pub exact_refs: usize,
    /// References carrying at least one `Bound` tag.
    pub bound_refs: usize,
    /// Violation descriptions, program order. Empty = contract holds.
    pub violations: Vec<String>,
}

impl CrossCheckSummary {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Cross-check every reference of `report` against enumeration of
/// `prog`. The report must have been computed from the same program
/// and line sizes.
pub fn cross_check_program(
    prog: &Program,
    report: &ReuseReport,
    l1_line: u64,
    l2_line: u64,
) -> CrossCheckSummary {
    let mut sum = CrossCheckSummary::default();
    for nest_reuse in &report.nests {
        let Some(nest) = prog.nests.get(nest_reuse.nest_pos) else {
            sum.violations
                .push(format!("nest {} missing from program", nest_reuse.nest_pos));
            continue;
        };
        cross_check_nest(prog, nest, nest_reuse, l1_line, l2_line, &mut sum);
    }
    sum
}

fn cross_check_nest(
    prog: &Program,
    nest: &LoopNest,
    nest_reuse: &NestReuse,
    l1_line: u64,
    l2_line: u64,
    sum: &mut CrossCheckSummary,
) {
    for facts in &nest_reuse.refs {
        let Some(stmt) = nest.body.get(facts.stmt_pos) else {
            sum.violations.push(format!(
                "nest {} stmt {} missing",
                nest_reuse.nest_pos, facts.stmt_pos
            ));
            continue;
        };
        let refs = stmt.array_refs();
        let Some(&(aref, _)) = refs.get(facts.slot as usize) else {
            sum.violations.push(format!(
                "nest {} stmt {} slot {} missing",
                nest_reuse.nest_pos, facts.stmt_pos, facts.slot
            ));
            continue;
        };
        sum.refs += 1;
        if facts.all_exact() {
            sum.exact_refs += 1;
        } else {
            sum.bound_refs += 1;
        }
        let m = measure_ref(prog, nest, aref, l1_line, l2_line);
        for v in cross_check_ref(facts, &m) {
            sum.violations
                .push(format!("nest {}: {v}", nest_reuse.nest_pos));
        }
    }
}
