//! Per-reference analysis facts and the whole-program report.

use crate::classify::{classify, ReuseClass};
use crate::form::{AddressForm, Count, Exactness};
use ndc_ir::program::{LoopNest, Program, Stmt};

/// Everything the analysis proves about one array reference of one
/// nest: its reuse class and its distinct-footprint counts, each
/// carrying an `Exact`/`Bound` soundness tag.
#[derive(Debug, Clone, PartialEq)]
pub struct RefFacts {
    /// Statement position in body order.
    pub stmt_pos: usize,
    /// Slot in `Stmt::array_refs()` order (reads then write).
    pub slot: u8,
    /// Array name, for attribution in reports.
    pub array: String,
    pub is_write: bool,
    /// Verdict of `ndc-lint`'s interval-arithmetic bounds prover; an
    /// unproven reference performs only a subset of its affine image,
    /// so every count is downgraded to `Bound`.
    pub in_bounds: bool,
    pub class: ReuseClass,
    /// Dynamic accesses the nest issues through this reference.
    pub accesses: u64,
    /// Distinct elements touched.
    pub elems: Count,
    /// Distinct L1 lines touched.
    pub l1_lines: Count,
    /// Distinct L2 lines touched — the compulsory DRAM fill count.
    pub l2_lines: Count,
    /// Compulsory DRAM byte volume (`l2_lines × l2_line_bytes`).
    pub dram_bytes: Count,
}

impl RefFacts {
    /// All four counts proven exact.
    pub fn all_exact(&self) -> bool {
        [self.elems, self.l1_lines, self.l2_lines, self.dram_bytes]
            .iter()
            .all(|c| c.tag == Exactness::Exact)
    }
}

/// Analysis results for one loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct NestReuse {
    /// Nest position in program order.
    pub nest_pos: usize,
    pub points: u64,
    /// One entry per array reference, statement then slot order.
    pub refs: Vec<RefFacts>,
}

/// The whole-program reuse report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseReport {
    pub nests: Vec<NestReuse>,
}

impl ReuseReport {
    pub fn get(&self, nest_pos: usize, stmt_pos: usize, slot: u8) -> Option<&RefFacts> {
        self.nests
            .iter()
            .find(|n| n.nest_pos == nest_pos)?
            .refs
            .iter()
            .find(|r| r.stmt_pos == stmt_pos && r.slot == slot)
    }

    pub fn total_refs(&self) -> usize {
        self.nests.iter().map(|n| n.refs.len()).sum()
    }

    pub fn exact_refs(&self) -> usize {
        self.nests
            .iter()
            .flat_map(|n| &n.refs)
            .filter(|r| r.all_exact())
            .count()
    }

    pub fn bound_refs(&self) -> usize {
        self.total_refs() - self.exact_refs()
    }
}

/// Analyze one reference: canonical form, classification, footprint
/// counts. Falls back to trivial `Bound` facts (capped by accesses and
/// array size) when the reference's shape defeats the form builder.
pub fn analyze_ref(
    prog: &Program,
    nest: &LoopNest,
    stmt: &Stmt,
    stmt_pos: usize,
    slot: u8,
    l1_line: u64,
    l2_line: u64,
) -> Option<RefFacts> {
    let (aref, is_write) = *stmt.array_refs().get(slot as usize)?;
    let name = prog
        .arrays
        .get(aref.array.0 as usize)
        .map(|a| a.name.clone())
        .unwrap_or_else(|| format!("array#{}", aref.array.0));
    let accesses = nest.points();
    let in_bounds = ndc_lint::prove_ref(prog, nest, stmt.id, slot, aref, is_write).in_bounds;
    let Some(form) = AddressForm::build(prog, nest, aref) else {
        // Shape mismatch (reported by the verifier): everything the
        // reference could touch is bounded by its access count and the
        // array's size.
        let cap = prog
            .arrays
            .get(aref.array.0 as usize)
            .map(|a| a.elements())
            .unwrap_or(0)
            .min(accesses);
        return Some(RefFacts {
            stmt_pos,
            slot,
            array: name,
            is_write,
            in_bounds: false,
            class: ReuseClass::NoReuse { stride_bytes: 0 },
            accesses,
            elems: Count::bound(cap),
            l1_lines: Count::bound(cap),
            l2_lines: Count::bound(cap),
            dram_bytes: Count::bound(cap.saturating_mul(l2_line)),
        });
    };
    let mut elems = form.distinct_elements();
    let mut l1_lines = form.distinct_lines(l1_line);
    let mut l2_lines = form.distinct_lines(l2_line);
    if !in_bounds {
        // Out-of-bounds accesses address nothing, so the affine image
        // over-approximates the touched set: sound only as a bound.
        elems = elems.relaxed();
        l1_lines = l1_lines.relaxed();
        l2_lines = l2_lines.relaxed();
    }
    Some(RefFacts {
        stmt_pos,
        slot,
        array: name,
        is_write,
        in_bounds,
        class: classify(&form, l1_line),
        accesses,
        elems,
        l1_lines,
        l2_lines,
        dram_bytes: l2_lines.times(l2_line),
    })
}

/// Analyze every reference of one nest.
pub fn analyze_nest(
    prog: &Program,
    nest_pos: usize,
    nest: &LoopNest,
    l1_line: u64,
    l2_line: u64,
) -> NestReuse {
    let mut refs = Vec::new();
    for (stmt_pos, stmt) in nest.body.iter().enumerate() {
        for slot in 0..stmt.array_refs().len() {
            if let Some(f) = analyze_ref(prog, nest, stmt, stmt_pos, slot as u8, l1_line, l2_line) {
                refs.push(f);
            }
        }
    }
    NestReuse {
        nest_pos,
        points: nest.points(),
        refs,
    }
}

/// Analyze the whole program (nests in program order).
pub fn analyze_program(prog: &Program, l1_line: u64, l2_line: u64) -> ReuseReport {
    ReuseReport {
        nests: prog
            .nests
            .iter()
            .enumerate()
            .map(|(pos, nest)| analyze_nest(prog, pos, nest, l1_line, l2_line))
            .collect(),
    }
}
