//! Pair analysis for use-use chains: when do the two operands of a
//! chain land in the same cache line, and what does the chain's
//! gather traffic look like as static line counts — the quantities the
//! compiler's cost model consumes in place of sampled heuristics.

use crate::form::AddressForm;
use crate::report::RefFacts;

/// True when two forms denote the *same address stream* — identical
/// per-loop coefficients and identical minimal address (base folded
/// in), so one gather serves both.
pub fn identical_stream(a: &AddressForm, b: &AddressForm) -> bool {
    a.raw_coeffs == b.raw_coeffs && a.min_addr == b.min_addr && a.elem_bytes == b.elem_bytes
}

/// How many of the nest's iterations find both operands in the same
/// `line_bytes` cache line. Exact for translated single-progression
/// pairs (the dominant suite shape); a truncating rational estimate
/// (`(L - δ)/L` of the iterations) for coupled multi-term pairs —
/// this feeds the cost model, not the soundness cross-check.
pub fn shared_line_iters(a: &AddressForm, b: &AddressForm, line_bytes: u64) -> u64 {
    if a.is_empty() || a.elem_bytes != b.elem_bytes || a.raw_coeffs != b.raw_coeffs {
        return 0;
    }
    let delta = b.min_addr - a.min_addr;
    if delta == 0 {
        return a.points;
    }
    let (lo, d) = if delta > 0 {
        (a, delta as u128)
    } else {
        (b, (-delta) as u128)
    };
    let line = line_bytes as u128;
    if d >= line {
        return 0;
    }
    let eb = lo.elem_bytes as u128;
    let aligned = line.is_multiple_of(eb)
        && d.is_multiple_of(eb)
        && lo.min_addr >= 0
        && lo.min_addr % eb as i128 == 0;
    if aligned && lo.terms.len() <= 1 {
        // Exact: count residues of the single progression (or the
        // fixed residue of an invariant stream) that leave room for
        // the +δ twin in the same line.
        let c = (line / eb) as u64;
        let de = (d / eb) as u64;
        let off = ((lo.min_addr % line as i128) / eb as i128) as u64;
        let room = c - de; // shared iff (off + s·k) mod c < room
        match lo.terms.first() {
            None => {
                if off < room {
                    lo.points
                } else {
                    0
                }
            }
            Some(t) => {
                let s = t.coeff % c;
                let e = t.extent;
                // Residues cycle with period c/gcd(c, s); one period is
                // at most c (<= 32 elements per line) steps long.
                let g = ndc_lint::gcd(c as i128, s as i128).max(1) as u64;
                let period = (c / g).max(1);
                let mut hits_period = 0u64;
                let mut hits_partial = 0u64;
                let partial = e % period;
                for k in 0..period.min(e) {
                    let r = (off + s.wrapping_mul(k)) % c;
                    if r < room {
                        hits_period += 1;
                        if k < partial {
                            hits_partial += 1;
                        }
                    }
                }
                let per_k = lo.points / e.max(1); // dropped dims multiply
                ((e / period) * hits_period + hits_partial).saturating_mul(per_k)
            }
        }
    } else {
        (((line - d) * a.points as u128) / line) as u64
    }
}

/// Distinct cache lines in the union of two operand footprints — the
/// gather volume when one packet fetches both. This feeds the cost
/// model (never the soundness cross-check), so it is exact for
/// identical and near-translated streams and conservative (never
/// undercounting) everywhere else.
pub fn union_lines(
    a: &AddressForm,
    b: &AddressForm,
    lines_a: u64,
    lines_b: u64,
    line_bytes: u64,
) -> u64 {
    if identical_stream(a, b) {
        return lines_a.max(lines_b);
    }
    if a.raw_coeffs == b.raw_coeffs && a.elem_bytes == b.elem_bytes {
        let delta = (b.min_addr - a.min_addr).unsigned_abs();
        if delta < line_bytes as u128 {
            // Translated by less than one line: the two line sets
            // coincide except for at most one boundary line.
            return lines_a
                .max(lines_b)
                .saturating_add(1)
                .min(lines_a.saturating_add(lines_b));
        }
    }
    lines_a.saturating_add(lines_b)
}

/// Static reuse facts for one use-use chain, threaded into
/// `ChainProvenance` so `ndc-eval explain` can attribute a predicted
/// cost to the analysis that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReuse {
    pub a: RefFacts,
    pub b: RefFacts,
    /// Iterations whose two operands share an L2 line (one gather
    /// serves both).
    pub shared_l2_iters: u64,
    /// Distinct L2 lines the chain gathers (union of both operands;
    /// identical streams counted once).
    pub union_l2_lines: u64,
    /// Hottest directed NoC link of the projected gather traffic, and
    /// the bytes it carries over the whole nest.
    pub max_link: Option<(u16, u16)>,
    pub max_link_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program};
    use ndc_types::FxHashSet;

    fn forms_for(n: u64, off_a: i64, off_b: i64) -> (Program, LoopNest, AddressForm, AddressForm) {
        let mut p = Program::new("pair");
        let x = p.add_array(ArrayDecl::new("X", vec![16384], 8));
        p.assign_layout(0x1000, 4096);
        let nest = LoopNest::new(0, vec![0], vec![n as i64], vec![]);
        let ra = ArrayRef::identity(x, 1, vec![off_a]);
        let rb = ArrayRef::identity(x, 1, vec![off_b]);
        let fa = AddressForm::build(&p, &nest, &ra).unwrap();
        let fb = AddressForm::build(&p, &nest, &rb).unwrap();
        (p, nest, fa, fb)
    }

    #[test]
    fn identical_streams_share_every_iteration() {
        let (_, _, fa, fb) = forms_for(1000, 3, 3);
        assert!(identical_stream(&fa, &fb));
        assert_eq!(shared_line_iters(&fa, &fb, 256), 1000);
    }

    #[test]
    fn translated_pair_matches_enumeration() {
        // X[i] and X[i+k] for several line-relative offsets: the exact
        // single-term path must agree with brute force.
        for k in [1i64, 7, 16, 31, 32, 33, 100] {
            let (p, nest, fa, fb) = forms_for(813, 0, k);
            let x = p.arrays[0].base;
            let mut brute = 0u64;
            for i in 0..813u64 {
                let a = x + 8 * i;
                let b = x + 8 * (i + k as u64);
                if a / 256 == b / 256 {
                    brute += 1;
                }
            }
            assert_eq!(
                shared_line_iters(&fa, &fb, 256),
                brute,
                "offset {k} disagrees with enumeration"
            );
            let _ = nest;
        }
    }

    #[test]
    fn far_apart_operands_never_share() {
        let (_, _, fa, fb) = forms_for(500, 0, 64);
        // 64 elements * 8 B = 512 B >= the 256 B line.
        assert_eq!(shared_line_iters(&fa, &fb, 256), 0);
    }

    #[test]
    fn different_strides_are_conservatively_disjoint() {
        let mut p = Program::new("d");
        let x = p.add_array(ArrayDecl::new("X", vec![4096], 8));
        p.assign_layout(0x1000, 4096);
        let nest = LoopNest::new(0, vec![0], vec![100], vec![]);
        use ndc_ir::matrix::IMat;
        let ra = ArrayRef::identity(x, 1, vec![0]);
        let rb = ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![0]);
        let fa = AddressForm::build(&p, &nest, &ra).unwrap();
        let fb = AddressForm::build(&p, &nest, &rb).unwrap();
        assert_eq!(shared_line_iters(&fa, &fb, 256), 0);
        assert!(!identical_stream(&fa, &fb));
    }

    #[test]
    fn union_lines_dedups_identical_and_translated_streams() {
        let (_, _, fa, fb) = forms_for(1000, 3, 3);
        assert_eq!(union_lines(&fa, &fb, 32, 32, 256), 32);
        // Translated by 8 elements (64 B < 256 B line): one extra
        // boundary line at most.
        let (_, _, fc, fd) = forms_for(1000, 0, 8);
        assert_eq!(union_lines(&fc, &fd, 32, 32, 256), 33);
        // Far apart: no dedup.
        let (_, _, fe, ff) = forms_for(1000, 0, 4096);
        assert_eq!(union_lines(&fe, &ff, 32, 32, 256), 64);
    }

    #[test]
    fn dropped_outer_dim_multiplies_iterations() {
        // X[j] and X[j+1] inside an (i, j) nest: the i loop replays
        // the same j-stream 10 times.
        let mut p = Program::new("outer");
        let x = p.add_array(ArrayDecl::new("X", vec![256], 8));
        p.assign_layout(0x1000, 4096);
        let nest = LoopNest::new(0, vec![0, 0], vec![10, 64], vec![]);
        use ndc_ir::matrix::IMat;
        let ra = ArrayRef::affine(x, IMat::from_rows(&[&[0, 1]]), vec![0]);
        let rb = ArrayRef::affine(x, IMat::from_rows(&[&[0, 1]]), vec![1]);
        let fa = AddressForm::build(&p, &nest, &ra).unwrap();
        let fb = AddressForm::build(&p, &nest, &rb).unwrap();
        let mut brute = 0u64;
        let base = p.arrays[0].base;
        let mut seen = FxHashSet::default();
        for j in 0..64u64 {
            let a = base + 8 * j;
            let b = base + 8 * (j + 1);
            if a / 256 == b / 256 {
                brute += 1;
            }
            seen.insert(j);
        }
        assert_eq!(shared_line_iters(&fa, &fb, 256), brute * 10);
        assert_eq!(seen.len(), 64);
    }
}
