//! Static reuse-distance and traffic analysis over the affine IR.
//!
//! The compiler's offload decisions need to know, *before any cycle is
//! simulated*, how much data each loop nest actually moves: which
//! references revisit elements (temporal reuse), which stay within a
//! cache line (spatial reuse), and how many distinct L1/L2 lines and
//! DRAM bytes a nest touches end to end. This crate derives those
//! quantities symbolically:
//!
//! * [`form`] reduces every affine reference — coupled subscripts
//!   included — to a canonical one-dimensional linear functional over
//!   the iteration box (the row-major composite of `F·I + f`), then
//!   counts distinct elements and distinct cache lines in closed form.
//!   Each count carries an [`Exactness`] tag: `Exact` when a
//!   mixed-radix injectivity or completeness argument proves the
//!   closed form equals the true cardinality, `Bound` when coupled
//!   subscripts defeat exactness and only a conservative
//!   over-approximation is available.
//! * [`classify`] reads the symbolic reuse vector (the composite
//!   per-loop coefficients) into temporal/spatial reuse classes.
//! * [`measure`] is the contract's other side: enumerate the nest,
//!   collect what a reference *actually* touches, and check
//!   `Exact == measured` and `Bound >= measured` — wired into
//!   `ndc-check`'s invariant layer and the fuzz pipeline.
//! * [`chain`] analyzes operand pairs (shared-line iterations, union
//!   footprints) for the compiler's use-use chain cost model.
//! * [`hopload`] projects byte flows onto per-link NoC hop loads under
//!   XY routing — the placement-aware half of the traffic picture.
//!
//! The bounds verdict gating every `Exact` tag comes from `ndc-lint`'s
//! interval-arithmetic prover ([`ndc_lint::prove_ref`]), and the
//! distinct-value counting shares the linter's GCD machinery
//! ([`ndc_lint::gcd`]) — one affine toolbox, two consumers.
//!
//! Zero-dependency like the rest of the workspace: only `ndc-ir`,
//! `ndc-lint`, and `ndc-types`.

pub mod chain;
pub mod classify;
pub mod form;
pub mod hopload;
pub mod measure;
pub mod report;

pub use chain::{identical_stream, shared_line_iters, union_lines, ChainReuse};
pub use classify::{classify, ReuseClass};
pub use form::{AddressForm, Count, Exactness, Term};
pub use hopload::HopLoad;
pub use measure::{
    cross_check_program, cross_check_ref, measure_ref, CrossCheckSummary, MeasuredFootprint,
};
pub use report::{analyze_nest, analyze_program, analyze_ref, NestReuse, RefFacts, ReuseReport};

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program, Ref, Stmt};
    use ndc_types::Op;

    /// A small dense-LA-flavored program: a streaming add, a coupled
    /// diagonal read, and a reduction.
    fn mixed_prog() -> Program {
        let mut p = Program::new("mixed");
        let x = p.add_array(ArrayDecl::new("X", vec![512], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![512], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![512], 8));
        let s = p.add_array(ArrayDecl::new("S", vec![1], 8));
        let add = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![0], vec![400], vec![add]));
        let diag = Stmt::binary(
            1,
            ArrayRef::affine(z, IMat::from_rows(&[&[1, 1]]), vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0])),
            Ref::Const(1.0),
            1,
        );
        p.nests
            .push(LoopNest::new(1, vec![0, 0], vec![16, 16], vec![diag]));
        let red = Stmt::binary(
            2,
            ArrayRef::affine(s, IMat::from_rows(&[&[0]]), vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            Ref::Const(0.0),
            1,
        );
        p.nests
            .push(LoopNest::new(2, vec![0], vec![256], vec![red]));
        p.assign_layout(0x10_0000, 4096);
        p
    }

    #[test]
    fn whole_program_analysis_cross_checks_clean() {
        let p = mixed_prog();
        let report = analyze_program(&p, 64, 256);
        assert_eq!(report.nests.len(), 3);
        assert!(report.total_refs() >= 7);
        let sum = cross_check_program(&p, &report, 64, 256);
        assert!(sum.ok(), "violations: {:?}", sum.violations);
        assert_eq!(sum.refs, report.total_refs());
        assert!(sum.exact_refs > 0);
    }

    #[test]
    fn facts_expose_classes_and_exactness() {
        let p = mixed_prog();
        let report = analyze_program(&p, 64, 256);
        // Streaming X[i]: spatial, exact 400 elements, 13 L2 lines.
        let f = report.get(0, 0, 0).unwrap();
        assert_eq!(f.class, ReuseClass::Spatial { stride_bytes: 8 });
        assert_eq!(f.elems, Count::exact(400));
        assert_eq!(f.l2_lines, Count::exact(13));
        assert_eq!(f.dram_bytes, Count::exact(13 * 256));
        // Coupled diagonal: temporal reuse, exact 31 elements.
        let d = report.get(1, 0, 0).unwrap();
        assert_eq!(d.class, ReuseClass::TemporalCoupled);
        assert_eq!(d.elems, Count::exact(31));
        // Reduction accumulator write: loop-invariant, one element.
        let r = report.get(2, 0, 1).unwrap();
        assert!(r.is_write);
        assert_eq!(r.class, ReuseClass::LoopInvariant);
        assert_eq!(r.elems, Count::exact(1));
    }

    #[test]
    fn corrupting_an_exact_count_trips_the_cross_check() {
        let p = mixed_prog();
        let mut report = analyze_program(&p, 64, 256);
        let f = &mut report.nests[0].refs[0];
        assert_eq!(f.l2_lines.tag, Exactness::Exact);
        f.l2_lines.value += 1;
        let sum = cross_check_program(&p, &report, 64, 256);
        assert!(!sum.ok());
        assert!(
            sum.violations[0].contains("l2-lines"),
            "{:?}",
            sum.violations
        );
    }

    #[test]
    fn out_of_bounds_reference_is_bound_tagged_and_dominates() {
        let mut p = Program::new("oob");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 8));
        let s = Stmt::copy(
            0,
            ArrayRef::identity(x, 1, vec![0]),
            Ref::Array(ArrayRef::identity(x, 1, vec![-8])),
            0,
        );
        p.nests.push(LoopNest::new(0, vec![0], vec![64], vec![s]));
        p.assign_layout(0x1000, 4096);
        let report = analyze_program(&p, 64, 256);
        let f = report.get(0, 0, 0).unwrap();
        assert!(!f.in_bounds);
        assert_eq!(f.elems.tag, Exactness::Bound);
        // The measured side skips the 8 out-of-bounds accesses; the
        // bound must still dominate.
        let sum = cross_check_program(&p, &report, 64, 256);
        assert!(sum.ok(), "violations: {:?}", sum.violations);
    }
}
