//! The composite address form: every affine reference reduced to a
//! one-dimensional linear functional over the nest's iteration box.
//!
//! For `X(F·I + f)` on a row-major array with extents `d_0..d_{m-1}`,
//! the linear element index is `lin(I) = Σ_r w_r·(f_r + Σ_j F_rj·I_j)`
//! with `w_r = Π_{r'>r} d_{r'}` — a single linear form `β + Σ_j A_j·I_j`
//! even when subscripts couple several iterators. Normalizing negative
//! coefficients (mirroring the dimension) and dropping zero-coefficient
//! and single-trip dimensions leaves a canonical sum-of-progressions
//! whose distinct-value and distinct-cache-line cardinalities admit
//! closed forms in the common cases; when no closed form is exact, the
//! counts carry an explicit [`Exactness::Bound`] tag.

use ndc_ir::program::{ArrayRef, LoopNest, Program};
use ndc_lint::gcd;

/// Whether a count is provably exact or a conservative over-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// The count equals the true cardinality (assuming every access is
    /// in-bounds; callers downgrade on an unproven bounds check).
    Exact,
    /// The count is `>=` the true cardinality.
    Bound,
}

impl Exactness {
    pub fn label(&self) -> &'static str {
        match self {
            Exactness::Exact => "exact",
            Exactness::Bound => "bound",
        }
    }

    /// Combining two counts is exact only when both sides are.
    pub fn meet(self, other: Exactness) -> Exactness {
        if self == Exactness::Exact && other == Exactness::Exact {
            Exactness::Exact
        } else {
            Exactness::Bound
        }
    }
}

/// A cardinality with its soundness tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Count {
    pub value: u64,
    pub tag: Exactness,
}

impl Count {
    pub fn exact(value: u64) -> Self {
        Count {
            value,
            tag: Exactness::Exact,
        }
    }

    pub fn bound(value: u64) -> Self {
        Count {
            value,
            tag: Exactness::Bound,
        }
    }

    /// Force the tag down to `Bound`, keeping the value.
    pub fn relaxed(self) -> Self {
        Count {
            value: self.value,
            tag: Exactness::Bound,
        }
    }

    /// Scale the value by a per-unit byte cost, saturating.
    pub fn times(self, unit: u64) -> Self {
        Count {
            value: self.value.saturating_mul(unit),
            tag: self.tag,
        }
    }
}

/// One normalized progression: `coeff·i` for `i` in `[0, extent)`,
/// `coeff > 0`, `extent >= 2` (units: array elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    pub coeff: u64,
    pub extent: u64,
}

/// A reference's touched-address set in canonical form:
/// `addr = min_addr + elem_bytes·(Σ_j coeff_j·i_j)`, `i_j ∈ [0, e_j)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressForm {
    pub elem_bytes: u64,
    /// Byte address of the minimal touched element (may be negative for
    /// out-of-bounds references; those degrade to `Bound` upstream).
    pub min_addr: i128,
    /// Normalized progressions, sorted by coefficient descending.
    pub terms: Vec<Term>,
    /// The composite per-loop coefficient `A_j` in loop order, before
    /// normalization — the symbolic reuse vector's signature (the
    /// innermost entry is the element stride of consecutive
    /// iterations).
    pub raw_coeffs: Vec<i64>,
    /// Total iterations of the nest (not distinct values).
    pub points: u64,
}

impl AddressForm {
    /// Build the canonical form. `None` when the reference's shape
    /// disagrees with the nest depth or the array rank, or when a
    /// composite coefficient overflows — callers fall back to trivial
    /// `Bound` facts.
    pub fn build(prog: &Program, nest: &LoopNest, aref: &ArrayRef) -> Option<AddressForm> {
        let arr = prog.arrays.get(aref.array.0 as usize)?;
        let rank = arr.dims.len();
        let depth = nest.depth();
        if aref.coeffs.cols != depth || aref.coeffs.rows != rank || aref.offsets.len() != rank {
            return None;
        }
        // Row-major weights w_r = Π_{r'>r} d_{r'}.
        let mut weights = vec![1i128; rank];
        for r in (0..rank.saturating_sub(1)).rev() {
            weights[r] = weights[r + 1].checked_mul(arr.dims[r + 1] as i128)?;
        }
        let mut beta: i128 = 0;
        for (w, &off) in weights.iter().zip(aref.offsets.iter()) {
            beta = beta.checked_add(w.checked_mul(off as i128)?)?;
        }
        let mut raw_coeffs = Vec::with_capacity(depth);
        let mut terms = Vec::new();
        let empty = nest.is_empty();
        for j in 0..depth {
            let mut a: i128 = 0;
            for (r, w) in weights.iter().enumerate() {
                a = a.checked_add(w.checked_mul(aref.coeffs[(r, j)] as i128)?)?;
            }
            raw_coeffs.push(i64::try_from(a).ok()?);
            if empty {
                continue;
            }
            let extent = (nest.hi[j] - nest.lo[j]).max(0) as u64;
            // The minimum of `a·I_j` over `[lo, hi)` is at `lo` for
            // positive coefficients and at `hi-1` for negative ones;
            // mirroring the dimension leaves the value set unchanged.
            if a >= 0 {
                beta = beta.checked_add(a.checked_mul(nest.lo[j] as i128)?)?;
            } else {
                beta = beta.checked_add(a.checked_mul((nest.hi[j] - 1) as i128)?)?;
            }
            if a != 0 && extent >= 2 {
                terms.push(Term {
                    coeff: u64::try_from(a.unsigned_abs()).ok()?,
                    extent,
                });
            }
        }
        terms.sort_by_key(|t| std::cmp::Reverse(t.coeff));
        let min_addr =
            (arr.base as i128).checked_add((arr.elem_bytes as i128).checked_mul(beta)?)?;
        Some(AddressForm {
            elem_bytes: arr.elem_bytes,
            min_addr,
            terms,
            raw_coeffs,
            points: nest.points(),
        })
    }

    /// True when the nest executes no iterations.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// Distinct elements the reference touches over the whole nest.
    pub fn distinct_elements(&self) -> Count {
        if self.is_empty() {
            return Count::exact(0);
        }
        distinct_of_terms(&self.terms)
    }

    /// Distinct `line_bytes`-sized cache lines touched over the whole
    /// nest (global line ids: `addr / line_bytes`).
    pub fn distinct_lines(&self, line_bytes: u64) -> Count {
        if self.is_empty() {
            return Count::exact(0);
        }
        let eb = self.elem_bytes;
        if line_bytes == 0 || eb == 0 {
            return Count::bound(0);
        }
        let span_b = span(&self.terms).saturating_mul(eb as u128);
        let aligned =
            line_bytes.is_multiple_of(eb) && self.min_addr >= 0 && self.min_addr % eb as i128 == 0;
        if !aligned {
            // Coarse: the touched bytes live in
            // `[min_addr, min_addr + span + eb)`; each element also
            // touches at most `ceil(eb/L) + 1` lines.
            let lo_line = self.min_addr.div_euclid(line_bytes as i128);
            let hi_line =
                (self.min_addr + span_b as i128 + eb as i128 - 1).div_euclid(line_bytes as i128);
            let range = sat_u64((hi_line - lo_line + 1).max(0) as u128);
            let per_elem = self
                .distinct_elements()
                .value
                .saturating_mul(eb.div_ceil(line_bytes) + 1);
            return Count::bound(range.min(per_elem));
        }
        let c = line_bytes / eb; // elements per line
        let off = ((self.min_addr % line_bytes as i128) / eb as i128) as u128;
        if self.terms.is_empty() {
            return Count::exact(1);
        }
        // Every coefficient a multiple of `c`: the line index is itself
        // a linear form with coefficients `coeff/c`, so the distinct
        // line count is a distinct-value count (exact under the same
        // conditions).
        if self.terms.iter().all(|t| t.coeff % c == 0) {
            let scaled: Vec<Term> = self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: t.coeff / c,
                    extent: t.extent,
                })
                .collect();
            return distinct_of_terms(&scaled);
        }
        lines_rec(&self.terms, off, c)
    }
}

/// `Σ coeff·(extent − 1)` — the largest value the term sum attains.
fn span(terms: &[Term]) -> u128 {
    terms
        .iter()
        .map(|t| t.coeff as u128 * (t.extent - 1) as u128)
        .fold(0u128, u128::saturating_add)
}

fn sat_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Distinct values of `Σ coeff_j·i_j` over `i_j ∈ [0, e_j)` (terms
/// sorted by coefficient descending, all `coeff > 0`, `extent >= 2`).
fn distinct_of_terms(terms: &[Term]) -> Count {
    if terms.is_empty() {
        return Count::exact(1);
    }
    // Mixed-radix injectivity: if each coefficient exceeds the whole
    // span of the smaller ones, representations are unique and the
    // count is the product of extents.
    let injective = (0..terms.len()).all(|k| terms[k].coeff as u128 > span(&terms[k + 1..]));
    let product = terms
        .iter()
        .map(|t| t.extent as u128)
        .fold(1u128, u128::saturating_mul);
    if injective {
        return Count::exact(sat_u64(product));
    }
    let g = terms
        .iter()
        .fold(0i128, |acc, t| gcd(acc, t.coeff as i128))
        .max(1) as u128;
    let steps = span(terms) / g; // span is a multiple of each coeff's g
                                 // Completeness: if (after dividing by the gcd) each coefficient is
                                 // at most one more than the span of the smaller ones, the sum hits
                                 // every multiple of g in [0, span] — an exact arithmetic
                                 // progression of steps+1 values.
    let complete =
        (0..terms.len()).all(|k| (terms[k].coeff as u128 / g) <= 1 + span(&terms[k + 1..]) / g);
    if complete {
        return Count::exact(sat_u64(steps + 1));
    }
    Count::bound(sat_u64(product.min(steps + 1)))
}

/// Distinct values of `floor((off + Σ coeff_j·i_j) / c)` — line
/// indices relative to the first line, `off < c`.
fn lines_rec(terms: &[Term], off: u128, c: u64) -> Count {
    if terms.is_empty() {
        return Count::exact(1);
    }
    let t = terms[0];
    let tail = &terms[1..];
    let tail_span = span(tail);
    // Disjoint-translate product: a line-aligned stride that jumps past
    // everything the inner terms (plus the in-line offset) can reach
    // replicates the inner line set `extent` times without overlap.
    if t.coeff.is_multiple_of(c) && t.coeff as u128 > off + tail_span {
        let inner = lines_rec(tail, off, c);
        return Count {
            value: sat_u64(t.extent as u128 * inner.value as u128),
            tag: inner.tag,
        };
    }
    if tail.is_empty() {
        if t.coeff >= c {
            // Each step advances the floor by at least one: all
            // `extent` line indices are distinct.
            return Count::exact(t.extent);
        }
        // Sub-line stride: consecutive floors differ by 0 or 1, so the
        // line indices are exactly the integers up to the last one.
        let last = (off + t.coeff as u128 * (t.extent - 1) as u128) / c as u128;
        return Count::exact(sat_u64(last + 1));
    }
    let full = t.coeff as u128 * (t.extent - 1) as u128 + tail_span;
    let range = (off + full) / c as u128 + 1;
    // If the value sum hits every integer in [0, span] the lines form
    // one contiguous interval — exact despite the coupling.
    let g = terms
        .iter()
        .fold(0i128, |acc, t| gcd(acc, t.coeff as i128))
        .max(1) as u128;
    let complete =
        g == 1 && (0..terms.len()).all(|k| terms[k].coeff as u128 <= 1 + span(&terms[k + 1..]));
    if complete {
        return Count::exact(sat_u64(range));
    }
    Count::bound(sat_u64(range.min(distinct_of_terms(terms).value as u128)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::matrix::IMat;
    use ndc_ir::program::{ArrayDecl, ArrayRef, LoopNest, Program};
    use ndc_types::FxHashSet;

    fn prog_1d(elems: u64, base_align: u64) -> (Program, ndc_ir::program::ArrayId) {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![elems], 8));
        p.assign_layout(0x1000, base_align);
        (p, x)
    }

    /// Brute-force the distinct element / line sets by enumeration and
    /// require: Exact tags match exactly, Bound tags dominate.
    fn check_against_enumeration(prog: &Program, nest: &LoopNest, aref: &ArrayRef, line: u64) {
        let form = AddressForm::build(prog, nest, aref).expect("well-formed ref");
        let mut elems: FxHashSet<i128> = FxHashSet::default();
        let mut lines: FxHashSet<i128> = FxHashSet::default();
        let arr = prog.array(aref.array);
        for point in nest.iter_points() {
            let idx = aref.index_at(&point);
            // Composite linear index, in-bounds or not: the form models
            // the full affine image.
            let mut lin: i128 = 0;
            for (&i, &d) in idx.iter().zip(arr.dims.iter()) {
                lin = lin * d as i128 + i as i128;
            }
            let addr = arr.base as i128 + lin * arr.elem_bytes as i128;
            elems.insert(addr);
            lines.insert(addr.div_euclid(line as i128));
        }
        let e = form.distinct_elements();
        match e.tag {
            Exactness::Exact => assert_eq!(e.value as usize, elems.len(), "{form:?}"),
            Exactness::Bound => assert!(e.value as usize >= elems.len(), "{form:?}"),
        }
        let l = form.distinct_lines(line);
        match l.tag {
            Exactness::Exact => assert_eq!(l.value as usize, lines.len(), "line={line} {form:?}"),
            Exactness::Bound => assert!(l.value as usize >= lines.len(), "line={line} {form:?}"),
        }
    }

    #[test]
    fn streaming_unit_stride_counts_are_exact() {
        let (p, x) = prog_1d(4096, 4096);
        let nest = LoopNest::new(0, vec![0], vec![1000], vec![]);
        let r = ArrayRef::identity(x, 1, vec![0]);
        let form = AddressForm::build(&p, &nest, &r).unwrap();
        assert_eq!(form.distinct_elements(), Count::exact(1000));
        // 8-byte elements, 64-byte lines: 1000 elements span 125 lines.
        assert_eq!(form.distinct_lines(64), Count::exact(125));
        // 256-byte lines hold 32 elements: ceil(1000/32) = 32 lines.
        assert_eq!(form.distinct_lines(256), Count::exact(32));
        check_against_enumeration(&p, &nest, &r, 64);
        check_against_enumeration(&p, &nest, &r, 256);
    }

    #[test]
    fn strided_and_offset_references_match_enumeration() {
        let (p, x) = prog_1d(8192, 4096);
        for (coeff, lo, hi, off) in [
            (2i64, 0i64, 500i64, 0i64),
            (3, 10, 200, 7),
            (-1, 0, 300, 400),
            (32, 0, 100, 5),
            (33, 0, 100, 0),
            (64, 0, 50, 1),
        ] {
            let nest = LoopNest::new(0, vec![lo], vec![hi], vec![]);
            let r = ArrayRef::affine(x, IMat::from_rows(&[&[coeff]]), vec![off]);
            for line in [64u64, 256] {
                check_against_enumeration(&p, &nest, &r, line);
            }
        }
    }

    #[test]
    fn two_dim_row_and_column_walks_match_enumeration() {
        let mut p = Program::new("2d");
        let x = p.add_array(ArrayDecl::new("X", vec![64, 64], 8));
        p.assign_layout(0x1000, 4096);
        let nest = LoopNest::new(0, vec![0, 0], vec![48, 40], vec![]);
        // Row-major walk X[i][j], transposed walk X[j][i], stencil
        // X[i-1][j+1] (padded by the bounds), diagonal X[i][i+j].
        let refs = [
            ArrayRef::identity(x, 2, vec![0, 0]),
            ArrayRef::affine(x, IMat::from_rows(&[&[0, 1], &[1, 0]]), vec![0, 0]),
            ArrayRef::identity(x, 2, vec![1, 1]),
            ArrayRef::affine(x, IMat::from_rows(&[&[1, 0], &[1, 1]]), vec![0, 0]),
        ];
        for r in &refs {
            for line in [64u64, 256] {
                check_against_enumeration(&p, &nest, r, line);
            }
        }
    }

    #[test]
    fn coupled_subscript_is_exact_when_contiguous() {
        // X[i+j] over 16x16: values form the interval [0, 30].
        let (p, x) = prog_1d(64, 4096);
        let nest = LoopNest::new(0, vec![0, 0], vec![16, 16], vec![]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 1]]), vec![0]);
        let form = AddressForm::build(&p, &nest, &r).unwrap();
        assert_eq!(form.distinct_elements(), Count::exact(31));
        check_against_enumeration(&p, &nest, &r, 64);
    }

    #[test]
    fn coupled_subscript_falls_back_to_bound() {
        // X[4i+7j] over 8x8: neither injective (4·7 overlaps) nor
        // complete — the count must carry a Bound tag that dominates.
        let (p, x) = prog_1d(256, 4096);
        let nest = LoopNest::new(0, vec![0, 0], vec![8, 8], vec![]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[4, 7]]), vec![0]);
        let form = AddressForm::build(&p, &nest, &r).unwrap();
        assert_eq!(form.distinct_elements().tag, Exactness::Bound);
        check_against_enumeration(&p, &nest, &r, 64);
        check_against_enumeration(&p, &nest, &r, 256);
    }

    #[test]
    fn zero_trip_nest_has_empty_footprint() {
        let (p, x) = prog_1d(64, 4096);
        let nest = LoopNest::new(0, vec![4, 0], vec![4, 8], vec![]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 0]]), vec![0]);
        let form = AddressForm::build(&p, &nest, &r).unwrap();
        assert!(form.is_empty());
        assert_eq!(form.distinct_elements(), Count::exact(0));
        assert_eq!(form.distinct_lines(64), Count::exact(0));
    }

    #[test]
    fn loop_invariant_reference_is_one_element() {
        let (p, x) = prog_1d(64, 4096);
        let nest = LoopNest::new(0, vec![0], vec![100], vec![]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[0]]), vec![5]);
        let form = AddressForm::build(&p, &nest, &r).unwrap();
        assert_eq!(form.distinct_elements(), Count::exact(1));
        assert_eq!(form.distinct_lines(64), Count::exact(1));
        assert_eq!(form.raw_coeffs, vec![0]);
    }

    #[test]
    fn negative_stride_normalizes_to_same_set() {
        let (p, x) = prog_1d(512, 4096);
        let nest = LoopNest::new(0, vec![0], vec![256], vec![]);
        let fwd = ArrayRef::affine(x, IMat::from_rows(&[&[1]]), vec![0]);
        let bwd = ArrayRef::affine(x, IMat::from_rows(&[&[-1]]), vec![255]);
        let ff = AddressForm::build(&p, &nest, &fwd).unwrap();
        let fb = AddressForm::build(&p, &nest, &bwd).unwrap();
        assert_eq!(ff.min_addr, fb.min_addr);
        assert_eq!(ff.terms, fb.terms);
        assert_eq!(ff.distinct_lines(64), fb.distinct_lines(64));
        assert_eq!(ff.raw_coeffs, vec![1]);
        assert_eq!(fb.raw_coeffs, vec![-1]);
    }

    #[test]
    fn malformed_shape_yields_none() {
        let mut p = Program::new("bad");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        p.assign_layout(0, 64);
        let nest = LoopNest::new(0, vec![0], vec![8], vec![]);
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1]]), vec![0]);
        assert!(AddressForm::build(&p, &nest, &r).is_none());
    }

    #[test]
    fn nonstandard_alignment_still_dominates() {
        // Layout aligned to 32 bytes with a 64-byte line: the array
        // starts mid-line, exercising the nonzero in-line offset path.
        let mut p = Program::new("mis");
        let pad = p.add_array(ArrayDecl::new("P", vec![4], 8)); // 32 bytes
        let x = p.add_array(ArrayDecl::new("X", vec![256], 8));
        p.assign_layout(0, 32);
        let _ = pad;
        let nest = LoopNest::new(0, vec![0], vec![100], vec![]);
        let r = ArrayRef::identity(x, 1, vec![0]);
        check_against_enumeration(&p, &nest, &r, 64);
        check_against_enumeration(&p, &nest, &r, 256);
    }
}
