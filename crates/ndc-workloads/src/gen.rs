//! Seeded workload generator: arbitrarily many *valid* IR programs
//! from a `SplitMix64` seed.
//!
//! The 20 hand-written kernels cap scenario diversity; this module
//! turns the access-pattern classes they span — stencil, dense linear
//! algebra, reduction, tree walk, irregular/gather — into a structured
//! generator. Each seed picks a class, nest count, depth, extents
//! (including zero-trip and single-trip loops), affine subscripts
//! (negative strides, coupled subscripts), dependence-carrying
//! statements, statement work, and parallel levels, then sizes every
//! array from the exact min/max subscript range its references attain,
//! so every emitted program passes the `ndc-lint` IR verifier and
//! bounds prover by construction.
//!
//! Because `ndc-check` runs any program through an element-wise
//! differential oracle and the simulator's invariant stream, every
//! generated program is a free end-to-end compiler+simulator
//! correctness test: `ndc-eval fuzz` drives N seeds through
//! Algorithm 1/2 → lint certification → oracle → invariants and
//! reports any divergence with its reproducing seed.

use ndc_ir::matrix::IMat;
use ndc_ir::program::{ArrayDecl, ArrayId, ArrayRef, LoopNest, Program, Ref, Stmt};
use ndc_types::{Op, SplitMix64};

/// Access-pattern class of a generated program. These deliberately
/// mirror the classes the hand-written suite spans, so corpus tables
/// join against the same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GenClass {
    /// Neighbor offsets over an identity access: `Y[i][j] = f(X[i±a][j±b])`.
    Stencil,
    /// Matmul-shaped rank-2 accesses over a depth-3 nest, with
    /// transposed and coupled-subscript variants.
    DenseLinearAlgebra,
    /// Accumulation into a loop-invariant cell: `S[0] = S[0] op X[I]`.
    Reduction,
    /// Implicit-heap parent/child strides: `V[i] = X[2i+1] op X[2i+2]`.
    TreeWalk,
    /// Large (and negative) strides with little reuse.
    IrregularGather,
}

impl GenClass {
    pub const ALL: [GenClass; 5] = [
        GenClass::Stencil,
        GenClass::DenseLinearAlgebra,
        GenClass::Reduction,
        GenClass::TreeWalk,
        GenClass::IrregularGather,
    ];

    /// Stable table label.
    pub fn label(&self) -> &'static str {
        match self {
            GenClass::Stencil => "stencil",
            GenClass::DenseLinearAlgebra => "dense-la",
            GenClass::Reduction => "reduction",
            GenClass::TreeWalk => "tree-walk",
            GenClass::IrregularGather => "irregular-gather",
        }
    }
}

/// One generated program plus the metadata the fuzz/corpus consumers
/// report.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The exact seed that reproduces this program via [`generate`].
    pub seed: u64,
    pub class: GenClass,
    pub program: Program,
}

/// Generate the program of one seed. Pure: the same seed produces the
/// same program on every platform and every call.
pub fn generate(seed: u64) -> Generated {
    let mut rng = SplitMix64::new(seed);
    // Decorrelate adjacent seeds (they differ by a Weyl step only).
    rng.next_u64();
    let class = *rng.choose(&GenClass::ALL);
    let mut prog = Program::new(format!("gen-{}-{seed:#018x}", class.label()));
    let nests = if rng.chance(0.4) { 2 } else { 1 };
    let mut builder = Builder {
        rng,
        prog: &mut prog,
    };
    for nest_id in 0..nests {
        builder.emit_nest(class, nest_id);
    }
    prog.assign_layout(0x10_0000, 4096);
    size_arrays(&mut prog);
    Generated {
        seed,
        class,
        program: prog,
    }
}

/// Generate `count` programs; program `i` uses seed `base_seed + i`,
/// so any failure is reproducible from a single reported seed.
pub fn generate_batch(base_seed: u64, count: usize) -> Vec<Generated> {
    (0..count)
        .map(|i| generate(base_seed.wrapping_add(i as u64)))
        .collect()
}

struct Builder<'a> {
    rng: SplitMix64,
    prog: &'a mut Program,
}

impl Builder<'_> {
    /// A fresh array of the given rank; dims are placeholders until
    /// [`size_arrays`] computes the exact referenced ranges.
    fn array(&mut self, tag: &str, rank: usize) -> ArrayId {
        let name = format!("{tag}{}", self.prog.arrays.len());
        self.prog.add_array(ArrayDecl::new(name, vec![1; rank], 8))
    }

    /// Loop extents for a nest of `depth` dimensions, bounded so the
    /// iteration space stays simulation-friendly, with occasional
    /// zero-trip and single-trip dimensions and nonzero lower bounds.
    fn bounds(&mut self, depth: usize) -> (Vec<i64>, Vec<i64>) {
        let per_dim_max: i64 = match depth {
            1 => 1536,
            2 => 40,
            _ => 10,
        };
        let mut lo = Vec::with_capacity(depth);
        let mut hi = Vec::with_capacity(depth);
        for _ in 0..depth {
            let l = if self.rng.chance(0.3) {
                self.rng.range_i64(1, 5)
            } else {
                0
            };
            let extent = if self.rng.chance(0.06) {
                0 // zero-trip
            } else if self.rng.chance(0.06) {
                1 // single-trip
            } else if depth == 1 {
                self.rng.range_i64(64, per_dim_max)
            } else {
                self.rng.range_i64(4, per_dim_max)
            };
            lo.push(l);
            hi.push(l + extent);
        }
        (lo, hi)
    }

    fn op(&mut self) -> Op {
        *self.rng.choose(&[Op::Add, Op::Sub, Op::Mul])
    }

    /// Statement work cycles — zero included on purpose (regression
    /// surface for the cycles-per-iteration clamp).
    fn work(&mut self) -> u32 {
        self.rng.range_u64(0, 7) as u32
    }

    fn push_nest(&mut self, nest_id: u32, lo: Vec<i64>, hi: Vec<i64>, body: Vec<Stmt>) {
        let depth = lo.len();
        let mut nest = LoopNest::new(nest_id, lo, hi, body);
        nest.parallel_level = if self.rng.chance(0.15) {
            None
        } else if depth > 1 && self.rng.chance(0.15) {
            Some(depth - 1)
        } else {
            Some(0)
        };
        self.prog.nests.push(nest);
    }

    fn emit_nest(&mut self, class: GenClass, nest_id: u32) {
        match class {
            GenClass::Stencil => self.stencil(nest_id),
            GenClass::DenseLinearAlgebra => self.dense_la(nest_id),
            GenClass::Reduction => self.reduction(nest_id),
            GenClass::TreeWalk => self.tree_walk(nest_id),
            GenClass::IrregularGather => self.gather(nest_id),
        }
    }

    /// `Y[I] = X[I+o1] op X[I+o2]`, optionally followed by a
    /// dependence-carrying update `X[I] = X[I - e0] op Y[I]`.
    fn stencil(&mut self, nest_id: u32) {
        let depth = if self.rng.chance(0.35) { 3 } else { 2 };
        let (lo, hi) = self.bounds(depth);
        let x = self.array("X", depth);
        let y = self.array("Y", depth);
        let offs =
            |r: &mut SplitMix64| -> Vec<i64> { (0..depth).map(|_| r.range_i64(-2, 3)).collect() };
        let o1 = offs(&mut self.rng);
        let o2 = offs(&mut self.rng);
        let mut body = vec![Stmt::binary(
            0,
            ArrayRef::identity(y, depth, vec![0; depth]),
            self.op(),
            Ref::Array(ArrayRef::identity(x, depth, o1)),
            Ref::Array(ArrayRef::identity(x, depth, o2)),
            self.work(),
        )];
        if self.rng.chance(0.4) {
            // Flow dependence at distance 1 on the outermost loop.
            let mut back = vec![0; depth];
            back[0] = -1;
            body.push(Stmt::binary(
                1,
                ArrayRef::identity(x, depth, vec![0; depth]),
                self.op(),
                Ref::Array(ArrayRef::identity(x, depth, back)),
                Ref::Array(ArrayRef::identity(y, depth, vec![0; depth])),
                self.work(),
            ));
        }
        self.push_nest(nest_id, lo, hi, body);
    }

    /// `C[i][j] = A[i][k] op B[k][j]` over a depth-3 nest, with
    /// transposed-A and coupled-subscript variants.
    fn dense_la(&mut self, nest_id: u32) {
        let (lo, hi) = self.bounds(3);
        let a = self.array("A", 2);
        let b = self.array("B", 2);
        let c = self.array("C", 2);
        let row = |r0: [i64; 3], r1: [i64; 3]| IMat::from_rows(&[&r0, &r1]);
        let a_coeffs = if self.rng.chance(0.25) {
            row([0, 0, 1], [1, 0, 0]) // A[k][i] — transposed walk
        } else if self.rng.chance(0.3) {
            row([1, 0, 1], [0, 0, 1]) // A[i+k][k] — coupled subscript
        } else {
            row([1, 0, 0], [0, 0, 1]) // A[i][k]
        };
        let body = vec![Stmt::binary(
            0,
            ArrayRef::affine(c, row([1, 0, 0], [0, 1, 0]), vec![0, 0]),
            self.op(),
            Ref::Array(ArrayRef::affine(a, a_coeffs, vec![0, 0])),
            Ref::Array(ArrayRef::affine(b, row([0, 0, 1], [0, 1, 0]), vec![0, 0])),
            self.work(),
        )];
        self.push_nest(nest_id, lo, hi, body);
    }

    /// `S[0] = S[0] op X[I]`: the accumulator's access matrix is all
    /// zeros, which the dependence solver can only call `Unknown` —
    /// exactly the conservative path worth fuzzing.
    fn reduction(&mut self, nest_id: u32) {
        let depth = if self.rng.chance(0.4) { 2 } else { 1 };
        let (lo, hi) = self.bounds(depth);
        let s = self.array("S", 1);
        let x = self.array("X", depth);
        let zero = ArrayRef::affine(s, IMat::zeros(1, depth), vec![0]);
        let body = vec![Stmt::binary(
            0,
            zero.clone(),
            self.op(),
            Ref::Array(zero),
            Ref::Array(ArrayRef::identity(x, depth, vec![0; depth])),
            self.work(),
        )];
        self.push_nest(nest_id, lo, hi, body);
    }

    /// Implicit-heap walk: `V[i] = X[2i+1] op X[2i+2]`, optionally a
    /// write-back `X[i] = X[2i+1] op c` whose dependence distance is
    /// not solvable as a constant.
    fn tree_walk(&mut self, nest_id: u32) {
        let (lo, hi) = self.bounds(1);
        let x = self.array("X", 1);
        let v = self.array("V", 1);
        let stride2 = |off: i64| ArrayRef::affine(x, IMat::from_rows(&[&[2]]), vec![off]);
        let mut body = vec![Stmt::binary(
            0,
            ArrayRef::identity(v, 1, vec![0]),
            self.op(),
            Ref::Array(stride2(1)),
            Ref::Array(stride2(2)),
            self.work(),
        )];
        if self.rng.chance(0.35) {
            body.push(Stmt::binary(
                1,
                ArrayRef::identity(x, 1, vec![0]),
                self.op(),
                Ref::Array(stride2(1)),
                Ref::Const(0.5),
                self.work(),
            ));
        }
        self.push_nest(nest_id, lo, hi, body);
    }

    /// Large-stride streaming with negative strides in the mix:
    /// `Z[i] = X[s1·i + o1] op X[s2·i + o2]`.
    fn gather(&mut self, nest_id: u32) {
        let depth = if self.rng.chance(0.25) { 2 } else { 1 };
        let (lo, hi) = self.bounds(depth);
        let x = self.array("X", 1);
        let z = self.array("Z", 1);
        let strided = |r: &mut SplitMix64| -> ArrayRef {
            let s = *r.choose(&[-11i64, -8, -3, 3, 5, 7, 8, 11]);
            let mut coeffs = vec![0i64; depth];
            coeffs[r.below(depth as u64) as usize] = s;
            let refs: [&[i64]; 1] = [&coeffs];
            ArrayRef::affine(x, IMat::from_rows(&refs), vec![r.range_i64(-4, 5)])
        };
        let (ra, rb) = (strided(&mut self.rng), strided(&mut self.rng));
        let mut z_coeffs = vec![0i64; depth];
        z_coeffs[0] = 1;
        let z_rows: [&[i64]; 1] = [&z_coeffs];
        let body = vec![Stmt::binary(
            0,
            ArrayRef::affine(z, IMat::from_rows(&z_rows), vec![0]),
            self.op(),
            Ref::Array(ra),
            Ref::Array(rb),
            self.work(),
        )];
        self.push_nest(nest_id, lo, hi, body);
    }
}

/// Exact per-dimension (min, max) subscript range a reference attains
/// over its nest — the same endpoint arithmetic as the `ndc-lint`
/// bounds prover. `None` for an empty iteration space.
fn extrema(nest: &LoopNest, aref: &ArrayRef) -> Option<Vec<(i64, i64)>> {
    if nest.is_empty() {
        return None;
    }
    let mut out = Vec::with_capacity(aref.coeffs.rows);
    for r in 0..aref.coeffs.rows {
        let (mut min, mut max) = (aref.offsets[r], aref.offsets[r]);
        for j in 0..aref.coeffs.cols {
            let c = aref.coeffs[(r, j)];
            let at_lo = c * nest.lo[j];
            let at_hi = c * (nest.hi[j] - 1);
            min += at_lo.min(at_hi);
            max += at_lo.max(at_hi);
        }
        out.push((min, max));
    }
    Some(out)
}

/// Size every array from the union of its references' subscript
/// ranges: shift offsets so the minimum lands at 0, then set each
/// dimension's extent to cover the maximum. After this pass the
/// bounds prover accepts every reference (vacuously, for references
/// that only appear in empty nests).
fn size_arrays(prog: &mut Program) {
    let mut ranges: Vec<Option<Vec<(i64, i64)>>> = vec![None; prog.arrays.len()];
    for nest in &prog.nests {
        for stmt in &nest.body {
            for (aref, _) in stmt.array_refs() {
                let Some(e) = extrema(nest, aref) else {
                    continue;
                };
                let slot = &mut ranges[aref.array.0 as usize];
                match slot {
                    None => *slot = Some(e),
                    Some(acc) => {
                        for (a, b) in acc.iter_mut().zip(e) {
                            a.0 = a.0.min(b.0);
                            a.1 = a.1.max(b.1);
                        }
                    }
                }
            }
        }
    }
    let mut shifts: Vec<Vec<i64>> = Vec::with_capacity(prog.arrays.len());
    for (k, range) in ranges.iter().enumerate() {
        match range {
            Some(r) => {
                let shift: Vec<i64> = r.iter().map(|&(mn, _)| (-mn).max(0)).collect();
                prog.arrays[k].dims = r
                    .iter()
                    .zip(&shift)
                    .map(|(&(_, mx), &s)| (mx + s + 1).max(1) as u64)
                    .collect();
                shifts.push(shift);
            }
            // Referenced only from empty nests (or never): keep the
            // placeholder unit dims.
            None => shifts.push(vec![0; prog.arrays[k].dims.len()]),
        }
    }
    for nest in &mut prog.nests {
        for stmt in &mut nest.body {
            let apply = |aref: &mut ArrayRef| {
                let shift = &shifts[aref.array.0 as usize];
                for (o, s) in aref.offsets.iter_mut().zip(shift) {
                    *o += s;
                }
            };
            apply(&mut stmt.dst);
            if let Ref::Array(a) = &mut stmt.a {
                apply(a);
            }
            if let Some(Ref::Array(b)) = &mut stmt.b {
                apply(b);
            }
        }
    }
    // Re-layout with the final sizes.
    prog.assign_layout(0x10_0000, 4096);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.class, b.class);
        assert_eq!(a.program, b.program);
        let c = generate(43);
        assert!(c.program.name != a.program.name || c.program != a.program);
    }

    #[test]
    fn every_generated_program_passes_verifier_and_bounds_prover() {
        for g in generate_batch(0, 300) {
            let errors = ndc_lint::verify_program(&g.program);
            assert!(errors.is_empty(), "seed {}: {errors:?}", g.seed);
            for b in ndc_lint::prove_program(&g.program) {
                assert!(
                    b.in_bounds,
                    "seed {}: {} {}",
                    g.seed,
                    g.program.array(b.array).name,
                    b.describe_violation()
                );
            }
        }
    }

    #[test]
    fn corpus_covers_all_classes_and_degenerate_shapes() {
        let corpus = generate_batch(0, 512);
        for class in GenClass::ALL {
            assert!(
                corpus.iter().any(|g| g.class == class),
                "class {} missing from 512 seeds",
                class.label()
            );
        }
        let any_zero_trip = corpus
            .iter()
            .any(|g| g.program.nests.iter().any(|n| n.is_empty()));
        assert!(any_zero_trip, "no zero-trip nest in 512 seeds");
        let any_single_trip = corpus.iter().any(|g| {
            g.program.nests.iter().any(|n| {
                n.lo.iter()
                    .zip(n.hi.iter())
                    .any(|(l, h)| h - l == 1 && !n.is_empty())
            })
        });
        assert!(any_single_trip, "no single-trip dimension in 512 seeds");
        let any_negative_stride = corpus.iter().any(|g| {
            g.program.nests.iter().any(|n| {
                n.body.iter().any(|s| {
                    s.array_refs().iter().any(|(r, _)| {
                        (0..r.coeffs.rows).any(|i| (0..r.coeffs.cols).any(|j| r.coeffs[(i, j)] < 0))
                    })
                })
            })
        });
        assert!(any_negative_stride, "no negative stride in 512 seeds");
        let any_zero_work = corpus.iter().any(|g| {
            g.program
                .nests
                .iter()
                .any(|n| !n.body.is_empty() && n.body.iter().all(|s| s.work == 0))
        });
        assert!(any_zero_work, "no zero-work body in 512 seeds");
    }

    #[test]
    fn generated_programs_interpret_within_their_arrays() {
        // The interpreter counts out-of-bounds reads; a proven-in-bounds
        // program must report zero.
        for g in generate_batch(100, 40) {
            let mut store = ndc_ir::interp::DataStore::init(&g.program);
            ndc_ir::interp::Interpreter::new(&g.program).run(&mut store);
            assert_eq!(
                store.oob_reads(),
                0,
                "seed {}: interpreter saw OOB reads",
                g.seed
            );
        }
    }
}
