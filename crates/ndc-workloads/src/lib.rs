//! The 20 paper benchmarks, as synthetic kernels in the compiler IR.
//!
//! The paper evaluates 11 SPECOMP programs (md, bwaves, nab, bt, fma3d,
//! swim, imagick, mgrid, applu, smith.wa, kdtree) and 9 SPLASH-2
//! programs (barnes, cholesky, fft, lu, ocean, radiosity, raytrace,
//! volrend, water) with inputs scaled up to pressure the on-chip
//! resources (§3). We cannot ship those applications; instead each
//! benchmark here is a from-scratch kernel reproducing the *dominant
//! loop-nest and access-pattern class* of its namesake — stencils for
//! the CFD codes, dynamic-programming wavefronts for smith.wa, strided
//! butterflies for fft, gather-flavoured large-stride walks for the
//! tree/graphics codes, and so on. Arrival-window and NDC-opportunity
//! behaviour is a function of exactly these pattern classes (reuse
//! distances, bank spread, route overlap), which is why the
//! substitution preserves the evaluation's shape; each builder's doc
//! comment states the pattern it mirrors.
//!
//! Every kernel is deterministic, parameterized by [`Scale`], and
//! usable three ways: interpreted (semantics oracle), analyzed
//! (CME/compiler), and lowered to traces (simulator).

pub mod gen;
pub mod specomp;
pub mod splash2;

use ndc_ir::program::Program;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    SpecOmp,
    Splash2,
}

/// Input scale: `Test` keeps unit tests fast; `Paper` sizes the arrays
/// to pressure L1 and generate DRAM traffic on the simulated machine
/// (the analog of the paper's enlarged inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Test,
    Paper,
    /// Footprint scaled to `base * num / den` elements — the mesh
    /// scale-up axis. `Scale::proportional(nodes)` keeps *per-core*
    /// work constant as the mesh grows: the 5×5 paper mesh maps to
    /// `Test` size exactly (25/200 = 1/8), a 16×16 mesh to 256/200 of
    /// the paper footprint.
    Fraction {
        num: u32,
        den: u32,
    },
}

impl Scale {
    /// A 1-D extent: `base` elements at `Paper` scale, an eighth at
    /// `Test` scale, `base * num / den` for the proportional axis.
    pub fn n(&self, base: u64) -> u64 {
        match self {
            Scale::Paper => base,
            Scale::Test => (base / 8).max(64),
            Scale::Fraction { num, den } => {
                (base * u64::from(*num) / u64::from(*den).max(1)).max(64)
            }
        }
    }

    /// The proportional scale for a mesh of `nodes` cores: per-core
    /// work matches `Scale::Test` on the paper's 5×5 mesh.
    pub fn proportional(nodes: usize) -> Self {
        Scale::Fraction {
            num: nodes as u32,
            den: 200,
        }
    }

    /// Interpolate a benchmark's own calibrated extents: `paper` at
    /// full scale, `test` at 1/8 footprint, linear in footprint
    /// fraction in between (and extrapolated beyond `Paper` for meshes
    /// larger than 5×5 — a 16×16 proportional run is 1.28× the paper
    /// footprint). Kernels with hand-tuned non-1/8 test extents (3-D
    /// stencils, padded banks) stay anchored to both calibration
    /// points instead of being rescaled blindly.
    pub fn pick(&self, paper: i64, test: i64) -> i64 {
        match self {
            Scale::Paper => paper,
            Scale::Test => test,
            Scale::Fraction { num, den } => {
                let num = i64::from(*num);
                let den = i64::from(*den).max(1);
                // footprint fraction f = num/den; f = 1/8 -> test,
                // f = 1 -> paper: test + (paper-test)*(8f-1)/7.
                let v = test + (paper - test) * (8 * num - den) / (7 * den);
                v.max(test.min(paper)).max(2)
            }
        }
    }
}

/// Dominant access-pattern class of a kernel — drives where its NDC
/// happens (the Figure 6/13 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternClass {
    /// Line-stride streams over distinct arrays; banks scatter, NDC
    /// happens on the network.
    NetworkStream,
    /// Operand pairs engineered (or naturally aligned) to share an L2
    /// home bank: cache-controller NDC.
    CacheAligned,
    /// Page-stride streams sharing a memory controller: MC-queue NDC.
    McAligned,
    /// Table pairs sharing a DRAM bank: in-memory NDC.
    MemoryAligned,
    /// Fine strides and pervasive temporal reuse: locality-bound, NDC
    /// largely bypassed.
    ReuseBound,
    /// Order-constrained recurrences (wavefronts, DP): limited motion.
    DependenceBound,
}

/// One registered benchmark.
#[derive(Clone)]
pub struct Benchmark {
    pub name: &'static str,
    pub suite: Suite,
    /// The paper benchmark's dominant pattern this kernel mirrors.
    pub pattern: PatternClass,
    builder: fn(Scale) -> Program,
}

/// Timesteps per build: real applications iterate their solver loops,
/// so the steady state (warm L2, NoC-bound) dominates over the cold
/// first sweep. Each benchmark's nests are replayed this many times.
pub const TIMESTEPS: u32 = 3;

impl Benchmark {
    pub fn build(&self, scale: Scale) -> Program {
        self.build_timesteps(scale, TIMESTEPS)
    }

    /// Build with an explicit timestep count (1 = single cold sweep).
    pub fn build_timesteps(&self, scale: Scale, timesteps: u32) -> Program {
        let mut p = (self.builder)(scale);
        let base: Vec<ndc_ir::program::LoopNest> = p.nests.clone();
        let per_step = base.len() as u32;
        for t in 1..timesteps.max(1) {
            for nest in &base {
                let mut n = nest.clone();
                n.id = ndc_ir::program::NestId(n.id.0 + t * per_step);
                p.nests.push(n);
            }
        }
        // Shared layout policy: arrays packed from a common base with
        // page alignment, then staggered by 102400 bytes (= 25 pages =
        // 400 L2 lines = one full NUCA bank wrap AND a whole number of
        // pages) per array. The stagger breaks the pathological L1-set
        // alignment of page-aligned bases (a real allocator's padding;
        // 102400 B shifts the L1 set index by 64 per array) while
        // preserving every address-mapping relationship the kernels
        // engineer: L2 home banks (mod 25 lines), memory controllers
        // (mod 4 pages), and DRAM banks (mod 16 pages) of same-index
        // accesses to two arrays all keep their relative offsets.
        p.assign_layout(0x10_0000, 4096);
        for (i, a) in p.arrays.iter_mut().enumerate() {
            a.base += i as u64 * 102_400;
        }
        p
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

/// All 20 benchmarks in the paper's presentation order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    use specomp::*;
    use splash2::*;
    vec![
        Benchmark {
            name: "md",
            pattern: PatternClass::NetworkStream,
            suite: Suite::SpecOmp,
            builder: md,
        },
        Benchmark {
            name: "bwaves",
            pattern: PatternClass::NetworkStream,
            suite: Suite::SpecOmp,
            builder: bwaves,
        },
        Benchmark {
            name: "nab",
            pattern: PatternClass::ReuseBound,
            suite: Suite::SpecOmp,
            builder: nab,
        },
        Benchmark {
            name: "bt",
            pattern: PatternClass::ReuseBound,
            suite: Suite::SpecOmp,
            builder: bt,
        },
        Benchmark {
            name: "fma3d",
            pattern: PatternClass::McAligned,
            suite: Suite::SpecOmp,
            builder: fma3d,
        },
        Benchmark {
            name: "swim",
            pattern: PatternClass::CacheAligned,
            suite: Suite::SpecOmp,
            builder: swim,
        },
        Benchmark {
            name: "imagick",
            pattern: PatternClass::NetworkStream,
            suite: Suite::SpecOmp,
            builder: imagick,
        },
        Benchmark {
            name: "mgrid",
            pattern: PatternClass::CacheAligned,
            suite: Suite::SpecOmp,
            builder: mgrid,
        },
        Benchmark {
            name: "applu",
            pattern: PatternClass::DependenceBound,
            suite: Suite::SpecOmp,
            builder: applu,
        },
        Benchmark {
            name: "smith.wa",
            pattern: PatternClass::DependenceBound,
            suite: Suite::SpecOmp,
            builder: smith_wa,
        },
        Benchmark {
            name: "kdtree",
            pattern: PatternClass::CacheAligned,
            suite: Suite::SpecOmp,
            builder: kdtree,
        },
        Benchmark {
            name: "barnes",
            pattern: PatternClass::NetworkStream,
            suite: Suite::Splash2,
            builder: barnes,
        },
        Benchmark {
            name: "cholesky",
            pattern: PatternClass::ReuseBound,
            suite: Suite::Splash2,
            builder: cholesky,
        },
        Benchmark {
            name: "fft",
            pattern: PatternClass::NetworkStream,
            suite: Suite::Splash2,
            builder: fft,
        },
        Benchmark {
            name: "lu",
            pattern: PatternClass::ReuseBound,
            suite: Suite::Splash2,
            builder: lu,
        },
        Benchmark {
            name: "ocean",
            pattern: PatternClass::NetworkStream,
            suite: Suite::Splash2,
            builder: ocean,
        },
        Benchmark {
            name: "radiosity",
            pattern: PatternClass::CacheAligned,
            suite: Suite::Splash2,
            builder: radiosity,
        },
        Benchmark {
            name: "raytrace",
            pattern: PatternClass::CacheAligned,
            suite: Suite::Splash2,
            builder: raytrace,
        },
        Benchmark {
            name: "volrend",
            pattern: PatternClass::MemoryAligned,
            suite: Suite::Splash2,
            builder: volrend,
        },
        Benchmark {
            name: "water",
            pattern: PatternClass::NetworkStream,
            suite: Suite::Splash2,
            builder: water,
        },
    ]
}

/// Look up a benchmark by its paper name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::{lower, DataStore, Interpreter, LowerOptions};

    #[test]
    fn twenty_benchmarks_with_unique_names() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 20);
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
        assert_eq!(all.iter().filter(|b| b.suite == Suite::SpecOmp).count(), 11);
        assert_eq!(all.iter().filter(|b| b.suite == Suite::Splash2).count(), 9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("swim").is_some());
        assert!(by_name("smith.wa").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_benchmark_builds_lowers_and_validates() {
        for b in all_benchmarks() {
            let p = b.build(Scale::Test);
            assert!(!p.nests.is_empty(), "{} has no nests", b.name);
            assert!(p.footprint() > 0);
            // Arrays are laid out disjointly.
            for w in p.arrays.windows(2) {
                assert!(
                    w[1].base >= w[0].base + w[0].size_bytes(),
                    "{}: overlapping arrays",
                    b.name
                );
            }
            let traces = lower(
                &p,
                &LowerOptions {
                    cores: 4,
                    emit_busy: true,
                },
                None,
            );
            assert!(traces.total_insts() > 0, "{} lowered empty", b.name);
            assert!(traces.total_computes() > 0, "{} has no computes", b.name);
            assert!(traces.validate_precompute_links().is_ok());
        }
    }

    #[test]
    fn interpretation_is_deterministic() {
        for b in all_benchmarks() {
            let p = b.build(Scale::Test);
            let mut s1 = DataStore::init(&p);
            let mut s2 = DataStore::init(&p);
            Interpreter::new(&p).run(&mut s1);
            Interpreter::new(&p).run(&mut s2);
            assert_eq!(
                s1.checksum(),
                s2.checksum(),
                "{} is nondeterministic",
                b.name
            );
        }
    }

    #[test]
    fn paper_scale_is_larger_than_test_scale() {
        for b in all_benchmarks() {
            let small = b.build(Scale::Test);
            let big = b.build(Scale::Paper);
            assert!(
                big.footprint() > small.footprint(),
                "{}: paper scale not larger",
                b.name
            );
        }
    }

    /// Sample the operand pair of a statement and return
    /// (same L2 home, same MC, same DRAM bank) match fractions.
    fn pair_fractions(prog: &Program, nest_idx: usize, stmt_idx: usize) -> (f64, f64, f64) {
        let cfg = ndc_types::ArchConfig::paper_default();
        let nest = &prog.nests[nest_idx];
        let stmt = &nest.body[stmt_idx];
        let (ra, rb) = stmt.memory_operand_pair().expect("binary stmt");
        let (mut home, mut mc, mut bank, mut n) = (0u32, 0u32, 0u32, 0u32);
        for pt in nest.iter_points().step_by(61).take(100) {
            let (Some(a), Some(b)) = (prog.addr_of(ra, &pt), prog.addr_of(rb, &pt)) else {
                continue;
            };
            n += 1;
            if cfg.l2_home(a) == cfg.l2_home(b) {
                home += 1;
            }
            if cfg.mc_of(a) == cfg.mc_of(b) {
                mc += 1;
                if cfg.dram_bank_of(a) == cfg.dram_bank_of(b) {
                    bank += 1;
                }
            }
        }
        let n = n.max(1) as f64;
        (home as f64 / n, mc as f64 / n, bank as f64 / n)
    }

    /// The engineered address relationships each kernel's doc comment
    /// promises — the properties the Figure 6/13 location breakdown
    /// rests on.
    #[test]
    fn engineered_colocation_properties_hold() {
        // kdtree: probe and pivot always share an L2 home bank.
        let p = by_name("kdtree").unwrap().build(Scale::Paper);
        let (home, _, _) = pair_fractions(&p, 0, 0);
        assert!(home > 0.99, "kdtree same-home: {home}");

        // raytrace: origin and direction always share an L2 home.
        let p = by_name("raytrace").unwrap().build(Scale::Paper);
        let (home, _, _) = pair_fractions(&p, 0, 0);
        assert!(home > 0.99, "raytrace same-home: {home}");

        // swim: the stencil pair always shares an L2 home.
        let p = by_name("swim").unwrap().build(Scale::Paper);
        let (home, _, _) = pair_fractions(&p, 0, 0);
        assert!(home > 0.99, "swim same-home: {home}");

        // fma3d: the gather pair always shares an MC but never a DRAM
        // bank or an L2 home.
        let p = by_name("fma3d").unwrap().build(Scale::Paper);
        let (home, mc, bank) = pair_fractions(&p, 0, 0);
        assert!(mc > 0.99, "fma3d same-mc: {mc}");
        assert!(bank < 0.01, "fma3d same-bank: {bank}");
        assert!(home < 0.01, "fma3d same-home: {home}");

        // volrend: the table lookups always share a DRAM bank, never an
        // L2 home (in-memory computation).
        let p = by_name("volrend").unwrap().build(Scale::Paper);
        let lookup_nest = p
            .nests
            .iter()
            .position(|n| n.body.iter().any(|s| s.id == ndc_ir::StmtId(2)))
            .expect("lookup nest");
        let (home, _, bank) = pair_fractions(&p, lookup_nest, 0);
        assert!(bank > 0.99, "volrend same-dram-bank: {bank}");
        assert!(home < 0.01, "volrend same-home: {home}");

        // md: the pair phase scatters homes (it is the network/MC
        // workload).
        let p = by_name("md").unwrap().build(Scale::Paper);
        let (home, _, _) = pair_fractions(&p, 0, 0);
        assert!(home < 0.2, "md pairs should scatter homes: {home}");
    }

    /// md and water carry the multi-consumer lagging-reuse chains that
    /// split the two algorithms: Algorithm 2 must bypass them.
    #[test]
    fn reuse_chains_split_the_algorithms() {
        use ndc_types::ArchConfig;
        let cfg = ArchConfig::paper_default();
        for name in ["md", "water"] {
            let p = by_name(name).unwrap().build(Scale::Test);
            let (_, r2) = ndc_compiler::compile_algorithm2(
                &p,
                &cfg,
                cfg.nodes(),
                ndc_compiler::Algorithm2Options::default(),
            );
            assert!(
                r2.bypassed_reuse > 0,
                "{name}: Algorithm 2 should bypass the lagging-reuse chain"
            );
        }
    }

    #[test]
    fn work_is_distributed_across_cores() {
        for b in all_benchmarks() {
            let p = b.build(Scale::Test);
            let traces = lower(
                &p,
                &LowerOptions {
                    cores: 4,
                    emit_busy: false,
                },
                None,
            );
            let busy_cores = traces.traces.iter().filter(|t| !t.insts.is_empty()).count();
            assert!(
                busy_cores >= 2,
                "{}: only {busy_cores} cores have work",
                b.name
            );
        }
    }
}
