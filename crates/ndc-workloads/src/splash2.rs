//! SPLASH-2-derived kernels (§3): one per paper benchmark, reproducing
//! its dominant loop-nest / access-pattern class. See the crate docs
//! and `specomp.rs` for the regime rationale (line-stride walks for the
//! memory-bound kernels, fine strides + reuse for the locality-bound
//! ones).

use crate::Scale;
use ndc_ir::matrix::IMat;
use ndc_ir::program::{ArrayDecl, ArrayId, ArrayRef, LoopNest, Program, Ref, Stmt};
use ndc_types::Op;

fn ident(a: ArrayId, depth: usize, off: Vec<i64>) -> Ref {
    Ref::Array(ArrayRef::identity(a, depth, off))
}

fn strided(a: ArrayId, s: i64, off: i64) -> Ref {
    Ref::Array(ArrayRef::affine(a, IMat::from_rows(&[&[s]]), vec![off]))
}

fn strided2(a: ArrayId, di: i64, dj: i64) -> Ref {
    Ref::Array(ArrayRef::affine(
        a,
        IMat::from_rows(&[&[1, 0], &[0, 8]]),
        vec![di, dj],
    ))
}

fn strided2_dst(a: ArrayId, di: i64, dj: i64) -> ArrayRef {
    ArrayRef::affine(a, IMat::from_rows(&[&[1, 0], &[0, 8]]), vec![di, dj])
}

/// `barnes` — Barnes-Hut n-body: line-stride tree-walk gathers at two
/// different odd offsets (cell vs. body interactions, banks varying per
/// iteration), the first result reused by the second statement.
pub fn barnes(scale: Scale) -> Program {
    let n = scale.n(14336) as i64;
    let mut p = Program::new("barnes");
    let pos = p.add_array(ArrayDecl::new("POS", vec![(48 * n) as u64], 8));
    let cells = p.add_array(ArrayDecl::new("CELLS", vec![(48 * n + 1200) as u64], 8));
    let mass = p.add_array(ArrayDecl::new("MASS", vec![(48 * n) as u64], 8));
    let acc = p.add_array(ArrayDecl::new("ACC", vec![n as u64], 8));
    let phi = p.add_array(ArrayDecl::new("PHI", vec![n as u64], 8));
    let s0 = Stmt::binary(
        0,
        ArrayRef::identity(acc, 1, vec![0]),
        Op::Add,
        strided(pos, 48, 0),
        strided(cells, 48, 1111),
        3,
    );
    let s1 = Stmt::binary(
        1,
        ArrayRef::identity(phi, 1, vec![0]),
        Op::Add,
        ident(acc, 1, vec![0]),
        strided(mass, 48, 0),
        3,
    );
    p.nests
        .push(LoopNest::new(0, vec![0], vec![n], vec![s0, s1]));
    p
}

/// `cholesky` — sparse Cholesky factorization: panel broadcasts
/// (`L[i][0]`, `L[0][j]`) with pervasive temporal reuse. Reuse-heavy
/// programs gain the least from NDC (the paper's worst case, 11.4%) —
/// Algorithm 2 rightly bypasses most chains here.
pub fn cholesky(scale: Scale) -> Program {
    let n = scale.pick(150, 40);
    let mut p = Program::new("cholesky");
    let a = p.add_array(ArrayDecl::new("A", vec![n as u64, n as u64], 8));
    let l = p.add_array(ArrayDecl::new("L", vec![n as u64, n as u64], 8));
    let col = ArrayRef::affine(l, IMat::from_rows(&[&[1, 0], &[0, 0]]), vec![0, 0]);
    let row = ArrayRef::affine(l, IMat::from_rows(&[&[0, 0], &[0, 1]]), vec![0, 0]);
    let outer = Stmt::binary(
        0,
        ArrayRef::identity(a, 2, vec![0, 0]),
        Op::Sub,
        Ref::Array(col),
        Ref::Array(row),
        3,
    );
    let scalepass = Stmt::binary(
        1,
        ArrayRef::identity(a, 2, vec![0, 0]),
        Op::Add,
        ident(a, 2, vec![0, 0]),
        ident(a, 2, vec![0, -1]),
        1,
    );
    p.nests.push(LoopNest::new(
        0,
        vec![0, 1],
        vec![n, n],
        vec![outer, scalepass],
    ));
    // The supernode assembly gathers two distinct frontal matrices —
    // the small NDC-friendly fraction of cholesky.
    let fa = p.add_array(ArrayDecl::new("FA", vec![n as u64, (8 * n + 8) as u64], 8));
    let fb = p.add_array(ArrayDecl::new("FB", vec![n as u64, (8 * n + 8) as u64], 8));
    let assemble = Stmt::binary(
        2,
        ArrayRef::identity(a, 2, vec![0, 0]),
        Op::Add,
        strided2(fa, 0, 0),
        strided2(fb, 0, 0),
        2,
    );
    p.nests
        .push(LoopNest::new(1, vec![0, 0], vec![n / 2, n], vec![assemble]));
    p
}

/// `fft` — radix-2 butterflies: one nest per stage, combining
/// line-stride elements a power-of-two distance apart. Power-of-two
/// line distances interact with the 25-bank NUCA interleave to scatter
/// homes, pushing NDC toward the network and memory side.
pub fn fft(scale: Scale) -> Program {
    let n = scale.n(10240) as i64;
    let mut p = Program::new("fft");
    let re = p.add_array(ArrayDecl::new("RE", vec![(48 * n + 4096 + 8) as u64], 8));
    let tw = p.add_array(ArrayDecl::new("TW", vec![(48 * n + 4096 + 8) as u64], 8));
    let im = p.add_array(ArrayDecl::new("IM", vec![n as u64], 8));
    for (stage, dist) in [64i64, 512, 4096].into_iter().enumerate() {
        let s = Stmt::binary(
            0,
            ArrayRef::identity(im, 1, vec![0]),
            Op::Add,
            strided(re, 48, 0),
            strided(tw, 48, dist),
            2,
        );
        p.nests
            .push(LoopNest::new(stage as u32, vec![0], vec![n], vec![s]));
    }
    p
}

/// `lu` — dense LU decomposition: rank-1 updates from row and column
/// panels (both broadcast-shaped, heavily reused) — locality-bound.
pub fn lu(scale: Scale) -> Program {
    let n = scale.pick(150, 40);
    let mut p = Program::new("lu");
    let a = p.add_array(ArrayDecl::new("A", vec![n as u64, n as u64], 8));
    let piv = p.add_array(ArrayDecl::new("PIV", vec![n as u64, n as u64], 8));
    let colb = ArrayRef::affine(piv, IMat::from_rows(&[&[1, 0], &[0, 0]]), vec![0, 0]);
    let rowb = ArrayRef::affine(piv, IMat::from_rows(&[&[0, 0], &[0, 1]]), vec![0, 0]);
    let update = Stmt::binary(
        0,
        ArrayRef::identity(a, 2, vec![0, 0]),
        Op::Sub,
        Ref::Array(colb),
        Ref::Array(rowb),
        2,
    );
    let accumulate = Stmt::binary(
        1,
        ArrayRef::identity(a, 2, vec![0, 0]),
        Op::Add,
        ident(a, 2, vec![0, 0]),
        ident(piv, 2, vec![0, 0]),
        2,
    );
    p.nests.push(LoopNest::new(
        0,
        vec![0, 0],
        vec![n, n],
        vec![update, accumulate],
    ));
    // Off-diagonal block updates stream two distinct panels.
    let pa = p.add_array(ArrayDecl::new("PA", vec![n as u64, (8 * n + 8) as u64], 8));
    let pb = p.add_array(ArrayDecl::new("PB", vec![n as u64, (8 * n + 8) as u64], 8));
    let block = Stmt::binary(
        2,
        ArrayRef::identity(a, 2, vec![0, 0]),
        Op::Sub,
        strided2(pa, 0, 0),
        strided2(pb, 0, 0),
        2,
    );
    p.nests
        .push(LoopNest::new(1, vec![0, 0], vec![n / 2, n], vec![block]));
    p
}

/// `ocean` — red-black grid solver: line-stride five-point stencil
/// over a large grid; the neighbour operands come from different rows,
/// so per-instance arrival windows jitter with row-buffer and NoC
/// state — the paper's Figure 5 unpredictability example.
pub fn ocean(scale: Scale) -> Program {
    let (ni, nj) = (scale.pick(160, 24), scale.pick(112, 16));
    let mut p = Program::new("ocean");
    let q = p.add_array(ArrayDecl::new(
        "Q",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let w = p.add_array(ArrayDecl::new(
        "W",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let s0 = Stmt::binary(
        0,
        strided2_dst(w, 0, 0),
        Op::Add,
        strided2(q, -1, 0),
        strided2(q, 1, 0),
        1,
    );
    let s1 = Stmt::binary(
        1,
        strided2_dst(w, 0, 0),
        Op::Add,
        strided2(w, 0, 0),
        strided2(q, 0, 8),
        2,
    );
    // The stream-function update combines two dedicated grids with no
    // reuse — ocean's NDC-friendly phase.
    let psi = p.add_array(ArrayDecl::new(
        "PSI",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let gamma = p.add_array(ArrayDecl::new(
        "GAM",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let delta = p.add_array(ArrayDecl::new(
        "DEL",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let s2 = Stmt::binary(
        2,
        strided2_dst(psi, 0, 0),
        Op::Add,
        strided2(gamma, 0, 0),
        strided2(delta, 0, 0),
        1,
    );
    p.nests.push(LoopNest::new(
        0,
        vec![1, 0],
        vec![ni - 1, nj - 1],
        vec![s0, s1, s2],
    ));
    p
}

/// `radiosity` — hierarchical radiosity: stride-24 element-to-element
/// energy gathers whose "visible patch" sits 17 elements away — the
/// pair straddles L2-line boundaries irregularly, making windows hard
/// to predict (the other Figure 5 example).
pub fn radiosity(scale: Scale) -> Program {
    let n = scale.n(10240) as i64;
    let mut p = Program::new("radiosity");
    let e = p.add_array(ArrayDecl::new("E", vec![(72 * n + 96) as u64], 8));
    let r = p.add_array(ArrayDecl::new("R", vec![n as u64], 8));
    let s = Stmt::binary(
        0,
        ArrayRef::identity(r, 1, vec![0]),
        Op::Add,
        strided(e, 72, 0),
        strided(e, 72, 17),
        3,
    );
    p.nests.push(LoopNest::new(0, vec![0], vec![n], vec![s]));
    p
}

/// `raytrace` — ray-object intersection: stride-9 (72 B) gathers of
/// origin and direction from distinct arrays; every iteration touches
/// fresh L1 lines in both, but the operands' homes rarely coincide —
/// NDC happens on the network if anywhere.
pub fn raytrace(scale: Scale) -> Program {
    let n = scale.n(10240) as i64;
    let mut p = Program::new("raytrace");
    // ORG is padded to a multiple of 12800 elements (= 25 L2 lines x
    // 16 pages) and DIR is probed one full bank wrap (800 elements)
    // ahead: origin and direction components of a ray always share an
    // L2 home bank — raytrace is a cache-controller workload.
    let org_elems = ((63 * n + 16) as u64).div_ceil(12800) * 12800;
    let o = p.add_array(ArrayDecl::new("ORG", vec![org_elems], 8));
    let d = p.add_array(ArrayDecl::new("DIR", vec![(63 * n + 816) as u64], 8));
    let t = p.add_array(ArrayDecl::new("T", vec![n as u64], 8));
    let s = Stmt::binary(
        0,
        ArrayRef::identity(t, 1, vec![0]),
        Op::Mul,
        strided(o, 63, 0),
        strided(d, 63, 800),
        4,
    );
    p.nests.push(LoopNest::new(0, vec![0], vec![n], vec![s]));
    p
}

/// `volrend` — volume rendering: a 3-D ray-cast combining voxels eight
/// z-planes apart (line-stride inner walk), plus a fine-stride 2-D
/// compositing pass with reuse.
pub fn volrend(scale: Scale) -> Program {
    let n = scale.pick(30, 8);
    let mut p = Program::new("volrend");
    let vol = p.add_array(ArrayDecl::new(
        "VOL",
        vec![n as u64, n as u64, (8 * n + 72) as u64],
        8,
    ));
    let ray = p.add_array(ArrayDecl::new("RAY", vec![n as u64, n as u64, n as u64], 8));
    let img = p.add_array(ArrayDecl::new("IMG", vec![n as u64, n as u64], 8));
    let grad = p.add_array(ArrayDecl::new(
        "GRAD",
        vec![n as u64, n as u64, (8 * n + 72) as u64],
        8,
    ));
    // Transfer-function lookups stream two huge tables at page stride;
    // the tables are sized to a 64 KB multiple so both operands always
    // live in the same DRAM bank (memory-side NDC).
    // TF1 is padded so that, with the 25-page stagger, the tables sit
    // a multiple of 16 pages (but not of 25 L2 lines) apart: every
    // stride-128 pair shares a DRAM bank without sharing an L2 home —
    // volrend's lookups are the in-memory workload.
    let lookups = n * n * n; // one table lookup per cast ray sample
    let want = lookups as u64 * 128 + 128; // elements the lookups span
    let mut t1_pages = (want * 8).div_ceil(4096);
    while !(t1_pages + 25).is_multiple_of(16) || (t1_pages + 25).is_multiple_of(25) {
        t1_pages += 1;
    }
    let t1 = p.add_array(ArrayDecl::new("TF1", vec![t1_pages * 512], 8));
    let t2 = p.add_array(ArrayDecl::new("TF2", vec![want + 512], 8));
    let stride3 = |a: ArrayId, dk: i64| {
        Ref::Array(ArrayRef::affine(
            a,
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 8]]),
            vec![0, 0, dk],
        ))
    };
    let cast = Stmt::binary(
        0,
        ArrayRef::identity(ray, 3, vec![0, 0, 0]),
        Op::Add,
        stride3(vol, 0),
        stride3(grad, 64),
        2,
    );
    p.nests
        .push(LoopNest::new(0, vec![0, 0, 0], vec![n, n, n], vec![cast]));
    let composite = Stmt::binary(
        1,
        ArrayRef::identity(img, 2, vec![0, 0]),
        Op::Max,
        ident(img, 2, vec![0, -1]),
        ident(img, 2, vec![0, 0]),
        1,
    );
    p.nests
        .push(LoopNest::new(1, vec![0, 1], vec![n, n], vec![composite]));
    let lut = p.add_array(ArrayDecl::new("LUT", vec![lookups as u64], 8));
    let lookup = Stmt::binary(
        2,
        ArrayRef::identity(lut, 1, vec![0]),
        Op::Add,
        strided(t1, 128, 0),
        strided(t2, 128, 64),
        2,
    );
    p.nests
        .push(LoopNest::new(2, vec![0], vec![lookups], vec![lookup]));
    p
}

/// `water` — water molecule simulation: md-like line-stride pair
/// interactions at a non-bank-aligned offset, followed by an
/// integration with adjacent-element reuse.
pub fn water(scale: Scale) -> Program {
    let n = scale.n(14336) as i64;
    let mut p = Program::new("water");
    let pos = p.add_array(ArrayDecl::new("POS", vec![(48 * n) as u64], 8));
    let aux = p.add_array(ArrayDecl::new("AUX", vec![(48 * n + 5200) as u64], 8));
    let f = p.add_array(ArrayDecl::new("F", vec![n as u64], 8));
    let s0 = Stmt::binary(
        0,
        ArrayRef::identity(f, 1, vec![0]),
        Op::Add,
        strided(pos, 48, 0),
        strided(aux, 48, 5120),
        3,
    );
    let s1 = Stmt::binary(
        1,
        ArrayRef::identity(f, 1, vec![0]),
        Op::Add,
        ident(f, 1, vec![0]),
        ident(f, 1, vec![-1]),
        2,
    );
    // The intra-molecule correction re-reads a bond entry from 8
    // iterations back — exploitable reuse that splits the algorithms.
    let bond = p.add_array(ArrayDecl::new("BOND", vec![(48 * n + 8) as u64], 8));
    let corr = p.add_array(ArrayDecl::new("CORR", vec![n as u64], 8));
    let s2 = Stmt::binary(
        2,
        ArrayRef::identity(corr, 1, vec![0]),
        Op::Add,
        strided(bond, 48, 0),
        strided(bond, 48, -384),
        2,
    );
    // Further bond terms re-read the same lines: offloading s2 forfeits
    // their hits (the Algorithm 1 / Algorithm 2 split).
    let corr2 = p.add_array(ArrayDecl::new("CORR2", vec![n as u64], 8));
    let s3 = Stmt::binary(
        3,
        ArrayRef::identity(corr2, 1, vec![0]),
        Op::Add,
        strided(bond, 48, -768),
        strided(bond, 48, -1152),
        2,
    );
    p.nests
        .push(LoopNest::new(0, vec![24], vec![n], vec![s0, s1, s2, s3]));
    p
}
