//! SPECOMP-derived kernels (§3): one per paper benchmark, reproducing
//! its dominant loop-nest / access-pattern class.
//!
//! The paper scales inputs until the caches are pressured; its Figure 16
//! baseline L1 miss rates run 20–60%. We reproduce that regime with
//! *line-stride* walks (affine coefficient 8 on 8-byte elements = one
//! 64 B L1 line per iteration) for the memory-bound kernels, and keep
//! fine strides + heavy reuse for the locality-bound ones — the split
//! that gives Algorithm 2 its trade-off to exploit.

use crate::Scale;
use ndc_ir::matrix::IMat;
use ndc_ir::program::{ArrayDecl, ArrayId, ArrayRef, LoopNest, Program, Ref, Stmt};
use ndc_types::Op;

fn ident(a: ArrayId, depth: usize, off: Vec<i64>) -> Ref {
    Ref::Array(ArrayRef::identity(a, depth, off))
}

/// 1-D reference with element stride `s`: `A[s·i + off]`.
fn strided(a: ArrayId, s: i64, off: i64) -> Ref {
    Ref::Array(ArrayRef::affine(a, IMat::from_rows(&[&[s]]), vec![off]))
}

fn strided_dst(a: ArrayId, s: i64, off: i64) -> ArrayRef {
    ArrayRef::affine(a, IMat::from_rows(&[&[s]]), vec![off])
}

/// 2-D reference walking lines along the inner dimension:
/// `A[i + di][8·j + dj]`.
fn strided2(a: ArrayId, di: i64, dj: i64) -> Ref {
    Ref::Array(ArrayRef::affine(
        a,
        IMat::from_rows(&[&[1, 0], &[0, 8]]),
        vec![di, dj],
    ))
}

fn strided2_dst(a: ArrayId, di: i64, dj: i64) -> ArrayRef {
    ArrayRef::affine(a, IMat::from_rows(&[&[1, 0], &[0, 8]]), vec![di, dj])
}

/// `md` — molecular dynamics pair forces: line-stride walks over the
/// particle positions, pairing each particle with a far neighbor at an
/// odd element offset (so home banks vary per iteration), then an
/// integration statement that *reuses* the just-written force —
/// the NDC/locality mix the two algorithms split on.
pub fn md(scale: Scale) -> Program {
    let n = scale.n(16384) as i64;
    let mut p = Program::new("md");
    let pos = p.add_array(ArrayDecl::new("pos", vec![(48 * n) as u64], 8));
    let cell = p.add_array(ArrayDecl::new("cell", vec![(48 * n + 1100) as u64], 8));
    let f = p.add_array(ArrayDecl::new("force", vec![n as u64], 8));
    let v = p.add_array(ArrayDecl::new("vel", vec![n as u64], 8));
    let pairs = Stmt::binary(
        0,
        ArrayRef::identity(f, 1, vec![0]),
        Op::Add,
        strided(pos, 48, 0),
        strided(cell, 48, 1037),
        4,
    );
    let integrate = Stmt::binary(
        1,
        ArrayRef::identity(v, 1, vec![0]),
        Op::Add,
        ident(v, 1, vec![0]),
        ident(f, 1, vec![0]),
        2,
    );
    // The Lennard-Jones table interpolation re-reads an entry fetched
    // 32 iterations earlier — exploitable L1 reuse. Algorithm 1 still
    // offloads it (the leading operand misses), sacrificing that reuse;
    // Algorithm 2 bypasses (§5.3).
    let tab = p.add_array(ArrayDecl::new("ljtab", vec![(48 * n + 8) as u64], 8));
    let lj = p.add_array(ArrayDecl::new("lj", vec![n as u64], 8));
    let interp = Stmt::binary(
        2,
        ArrayRef::identity(lj, 1, vec![0]),
        Op::Mul,
        strided(tab, 48, 0),
        strided(tab, 48, -384),
        2,
    );
    // Two further interpolation terms re-read the same table lines —
    // offloading `interp` (as Algorithm 1 does) forfeits all of these
    // hits, which is exactly the trade-off Algorithm 2's bypass wins.
    let lj2 = p.add_array(ArrayDecl::new("lj2", vec![n as u64], 8));
    let interp2 = Stmt::binary(
        3,
        ArrayRef::identity(lj2, 1, vec![0]),
        Op::Add,
        strided(tab, 48, -768),
        strided(tab, 48, -1152),
        2,
    );
    p.nests.push(LoopNest::new(
        0,
        vec![24],
        vec![n],
        vec![pairs, integrate, interp, interp2],
    ));
    p
}

/// `bwaves` — 3-D blast-wave CFD: a z-direction stencil whose inner
/// dimension walks one L1 line per iteration; halo operands one line
/// apart (same 256 B L2 line half the time).
pub fn bwaves(scale: Scale) -> Program {
    let n = scale.pick(32, 8);
    let mut p = Program::new("bwaves");
    let u = p.add_array(ArrayDecl::new(
        "U",
        vec![n as u64, n as u64, (8 * n + 24) as u64],
        8,
    ));
    let vv = p.add_array(ArrayDecl::new(
        "V",
        vec![n as u64, n as u64, (8 * n + 24) as u64],
        8,
    ));
    let w = p.add_array(ArrayDecl::new(
        "W",
        vec![n as u64, n as u64, (8 * n + 24) as u64],
        8,
    ));
    let stride3 = |a: ArrayId, dk: i64| {
        Ref::Array(ArrayRef::affine(
            a,
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 8]]),
            vec![0, 0, dk],
        ))
    };
    let dst = ArrayRef::affine(
        u,
        IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 8]]),
        vec![0, 0, 0],
    );
    let s = Stmt::binary(0, dst, Op::Add, stride3(vv, 0), stride3(w, 8), 2);
    p.nests
        .push(LoopNest::new(0, vec![0, 0, 0], vec![n, n, n], vec![s]));
    p
}

/// `nab` — nucleic-acid builder: a row-broadcast energy term
/// (`Q[i][0]`, innermost-temporal, nearly always L1-resident) against a
/// streaming distance matrix — locality-bound, so the compiler plans
/// little here.
pub fn nab(scale: Scale) -> Program {
    let n = scale.pick(140, 36);
    let mut p = Program::new("nab");
    let q = p.add_array(ArrayDecl::new("Q", vec![n as u64, n as u64], 8));
    let d = p.add_array(ArrayDecl::new("D", vec![n as u64, (8 * n + 8) as u64], 8));
    let e = p.add_array(ArrayDecl::new("E", vec![n as u64, n as u64], 8));
    let g = p.add_array(ArrayDecl::new("G", vec![n as u64, (8 * n + 8) as u64], 8));
    let h = p.add_array(ArrayDecl::new("H", vec![n as u64, (8 * n + 8) as u64], 8));
    let broadcast = ArrayRef::affine(q, IMat::from_rows(&[&[1, 0], &[0, 0]]), vec![0, 0]);
    let s = Stmt::binary(
        0,
        ArrayRef::identity(e, 2, vec![0, 0]),
        Op::Mul,
        Ref::Array(broadcast),
        strided2(d, 0, 0),
        3,
    );
    // The pairwise nonbonded term streams two dedicated matrices — the
    // NDC-friendly half of nab.
    let pairwise = Stmt::binary(
        1,
        ArrayRef::identity(e, 2, vec![0, 0]),
        Op::Add,
        strided2(g, 0, 0),
        strided2(h, 0, 0),
        3,
    );
    p.nests
        .push(LoopNest::new(0, vec![0, 0], vec![n, n], vec![s, pairwise]));
    p
}

/// `bt` — NAS block-tridiagonal: fine-stride stencil whose intermediate
/// (`TMP`) is re-read immediately — reuse that Algorithm 2's bypass
/// trips over (the paper notes bt as one of the programs where
/// Algorithm 2 slightly trails Algorithm 1).
pub fn bt(scale: Scale) -> Program {
    let n = scale.pick(160, 40);
    let mut p = Program::new("bt");
    let a = p.add_array(ArrayDecl::new("A", vec![n as u64, n as u64], 8));
    let rhs = p.add_array(ArrayDecl::new("RHS", vec![n as u64, n as u64], 8));
    let tmp = p.add_array(ArrayDecl::new("TMP", vec![n as u64, n as u64], 8));
    let s0 = Stmt::binary(
        0,
        ArrayRef::identity(tmp, 2, vec![0, 0]),
        Op::Add,
        ident(a, 2, vec![0, -1]),
        ident(a, 2, vec![0, 1]),
        2,
    );
    let s1 = Stmt::binary(
        1,
        ArrayRef::identity(rhs, 2, vec![0, 0]),
        Op::Add,
        ident(tmp, 2, vec![0, 0]),
        ident(a, 2, vec![0, 0]),
        2,
    );
    p.nests
        .push(LoopNest::new(0, vec![0, 1], vec![n, n - 1], vec![s0, s1]));
    // The flux sweep combines a just-rewarmed flux array (touched by a
    // warm-up pass immediately before, so L2-resident) with a cold
    // state array streamed at 768 B per iteration (too large for L2 to
    // retain between timesteps, so it always arrives from DRAM). FX is
    // padded so the pair shares an L2 home bank at every iteration:
    // the operands meet at the cache controller, but with a DRAM-sized
    // arrival skew — the S1/S2 use-use distance of the paper's
    // Figure 8 that blind waiting overshoots and the compiler's
    // stagger closes.
    let sweep = (n * n) / 8;
    let mut fx_pages = (sweep as u64 * 96 * 8 + 768).div_ceil(4096);
    while !(fx_pages * 4096).is_multiple_of(102_400) {
        fx_pages += 1;
    }
    let fx = p.add_array(ArrayDecl::new("FX", vec![fx_pages * 512], 8));
    let fy = p.add_array(ArrayDecl::new("FY", vec![sweep as u64 * 96 + 96], 8));
    let acc = p.add_array(ArrayDecl::new("FACC", vec![sweep as u64], 8));
    let warmup = Stmt::copy(
        2,
        ArrayRef::affine(fx, IMat::from_rows(&[&[96]]), vec![0]),
        Ref::Const(1.0),
        1,
    );
    p.nests
        .push(LoopNest::new(1, vec![0], vec![sweep], vec![warmup]));
    let flux = Stmt::binary(
        3,
        ArrayRef::identity(acc, 1, vec![0]),
        Op::Add,
        strided(fx, 96, 0),
        strided(fy, 96, 0),
        2,
    );
    p.nests
        .push(LoopNest::new(2, vec![0], vec![sweep], vec![flux]));
    p
}

/// `fma3d` — finite-element solids: stride-16 (two lines per
/// iteration) gathers of element endpoints from two distinct state
/// arrays; compute-heavy (`work` models the constitutive update).
pub fn fma3d(scale: Scale) -> Program {
    let n = scale.n(12288) as i64;
    let mut p = Program::new("fma3d");
    // A is padded so that, with the 25-page inter-array stagger, the
    // A/B page offset is a multiple of 4 but of neither 16 pages nor
    // 25 L2 lines: every stride-128 pair shares a memory controller
    // without sharing a DRAM bank or an L2 home — fma3d is the
    // MC-side workload.
    let mut a_pages = ((128 * n) as u64 * 8).div_ceil(4096);
    while !((a_pages + 25).is_multiple_of(4)
        && !(a_pages + 25).is_multiple_of(16)
        && !(a_pages + 25).is_multiple_of(25))
    {
        a_pages += 1;
    }
    let a = p.add_array(ArrayDecl::new("A", vec![a_pages * 512], 8));
    let b = p.add_array(ArrayDecl::new("B", vec![(128 * n + 1024) as u64], 8));
    let out = p.add_array(ArrayDecl::new("OUT", vec![n as u64], 8));
    let s = Stmt::binary(
        0,
        ArrayRef::identity(out, 1, vec![0]),
        Op::Mul,
        strided(a, 128, 0),
        strided(b, 128, 8),
        6,
    );
    p.nests.push(LoopNest::new(0, vec![0], vec![n], vec![s]));
    p
}

/// `swim` — shallow-water 2-D stencil: line-stride inner walks of two
/// grids plus an accumulate with reuse; memory-bound (minimal `work`).
pub fn swim(scale: Scale) -> Program {
    // Row length 8*99+16 = 808 elements: the flattened offset between
    // U[i][8j] and V[i-1][8j+8] is -(808) + 8 = -800 elements, exactly
    // one NUCA bank wrap; padding U to a 12800-element multiple then
    // makes the stencil pair share an L2 home bank at every iteration —
    // swim is a cache-controller workload.
    let (ni, nj) = (scale.pick(160, 26), 99i64);
    let row = (8 * nj + 16) as u64;
    let mut p = Program::new("swim");
    let u = p.add_array(ArrayDecl::new("U", vec![ni as u64, row], 8));
    // Explicit allocator padding: sized so that V's page-aligned base
    // lands a whole number of bank wraps (102400 B) after U's.
    let u_bytes = (ni as u64 * row * 8).div_ceil(4096) * 4096;
    let pad_bytes = (102_400 - u_bytes % 102_400) % 102_400;
    if pad_bytes >= 8 {
        p.add_array(ArrayDecl::new("UPAD", vec![pad_bytes / 8], 8));
    }
    let v = p.add_array(ArrayDecl::new("V", vec![ni as u64, row], 8));
    let z = p.add_array(ArrayDecl::new(
        "Z",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let s0 = Stmt::binary(
        0,
        strided2_dst(z, 0, 0),
        Op::Add,
        strided2(u, 0, 0),
        strided2(v, -1, 8),
        1,
    );
    let s1 = Stmt::binary(
        1,
        strided2_dst(u, 0, 0),
        Op::Add,
        strided2(u, 0, 0),
        strided2(z, 0, 0),
        1,
    );
    p.nests
        .push(LoopNest::new(0, vec![1, 0], vec![ni, nj], vec![s0, s1]));
    p
}

/// `imagick` — image rotation: one operand walks the image row-major
/// in line strides, the other column-major (transposed access matrix),
/// scattering home banks and defeating constant-distance dependence
/// analysis.
pub fn imagick(scale: Scale) -> Program {
    let n = scale.pick(144, 32);
    let mut p = Program::new("imagick");
    let img = p.add_array(ArrayDecl::new(
        "IMG",
        vec![(8 * n + 8) as u64, (8 * n + 8) as u64],
        8,
    ));
    let out = p.add_array(ArrayDecl::new("OUT", vec![n as u64, n as u64], 8));
    let row_major = ArrayRef::affine(img, IMat::from_rows(&[&[1, 0], &[0, 8]]), vec![0, 0]);
    let col_major = ArrayRef::affine(img, IMat::from_rows(&[&[0, 8], &[1, 0]]), vec![0, 0]);
    let s = Stmt::binary(
        0,
        ArrayRef::identity(out, 2, vec![0, 0]),
        Op::Add,
        Ref::Array(row_major),
        Ref::Array(col_major),
        2,
    );
    p.nests
        .push(LoopNest::new(0, vec![0, 0], vec![n, n], vec![s]));
    p
}

/// `mgrid` — multigrid restriction: stride-16 coarse-grid reads one
/// 64 B line apart (same 256 B L2 line, so the pair always shares a
/// home bank), then a fine-stride smoothing pass with reuse.
pub fn mgrid(scale: Scale) -> Program {
    let n = scale.n(14336) as i64;
    let mut p = Program::new("mgrid");
    let fine = p.add_array(ArrayDecl::new("FINE", vec![(96 * n + 24) as u64], 8));
    let coarse = p.add_array(ArrayDecl::new("COARSE", vec![(n + 2) as u64], 8));
    let restrict = Stmt::binary(
        0,
        ArrayRef::identity(coarse, 1, vec![0]),
        Op::Add,
        strided(fine, 96, 0),
        strided(fine, 96, 8),
        2,
    );
    let smooth = Stmt::binary(
        1,
        ArrayRef::identity(coarse, 1, vec![1]),
        Op::Add,
        ident(coarse, 1, vec![0]),
        ident(coarse, 1, vec![1]),
        1,
    );
    p.nests
        .push(LoopNest::new(0, vec![0], vec![n], vec![restrict, smooth]));
    p
}

/// `applu` — SSOR wavefront: the Figure 10 dependence `(1, −1)` on a
/// line-stride grid, constraining both interchange and lookahead.
pub fn applu(scale: Scale) -> Program {
    let (ni, nj) = (scale.pick(160, 24), scale.pick(112, 16));
    let mut p = Program::new("applu");
    let x = p.add_array(ArrayDecl::new(
        "X",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let r = p.add_array(ArrayDecl::new(
        "R",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let s = Stmt::binary(
        0,
        strided2_dst(x, 0, 0),
        Op::Add,
        strided2(x, -1, 8),
        strided2(r, 0, 0),
        2,
    );
    p.nests
        .push(LoopNest::new(0, vec![1, 0], vec![ni, nj - 1], vec![s]));
    // The RHS assembly streams two distinct flux arrays — applu's
    // NDC-friendly phase (the wavefront itself stays order-bound).
    let fu = p.add_array(ArrayDecl::new(
        "FU",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let fv = p.add_array(ArrayDecl::new(
        "FV",
        vec![ni as u64, (8 * nj + 16) as u64],
        8,
    ));
    let rhs = Stmt::binary(
        1,
        strided2_dst(r, 0, 0),
        Op::Add,
        strided2(fu, 0, 0),
        strided2(fv, 0, 0),
        1,
    );
    p.nests
        .push(LoopNest::new(1, vec![0, 0], vec![ni, nj], vec![rhs]));
    p
}

/// `smith.wa` — Smith-Waterman dynamic programming: fine-grained
/// recurrence on the score matrix with flow dependences (1,1) and
/// (0,1); locality-bound and order-constrained, so NDC has little room.
pub fn smith_wa(scale: Scale) -> Program {
    let n = scale.pick(160, 40);
    let mut p = Program::new("smith.wa");
    let h = p.add_array(ArrayDecl::new("H", vec![n as u64, n as u64], 8));
    let sub = p.add_array(ArrayDecl::new("SUB", vec![n as u64, n as u64], 8));
    let diag = Stmt::binary(
        0,
        ArrayRef::identity(h, 2, vec![0, 0]),
        Op::Add,
        ident(h, 2, vec![-1, -1]),
        ident(sub, 2, vec![0, 0]),
        2,
    );
    let gap = Stmt::binary(
        1,
        ArrayRef::identity(h, 2, vec![0, 0]),
        Op::Max,
        ident(h, 2, vec![0, 0]),
        ident(h, 2, vec![0, -1]),
        1,
    );
    p.nests
        .push(LoopNest::new(0, vec![1, 1], vec![n, n], vec![diag, gap]));
    // Building the substitution matrix from the two sequence profiles
    // is a line-stride stream over distinct arrays — smith.wa's
    // NDC-friendly preprocessing phase.
    let pa = p.add_array(ArrayDecl::new("PRA", vec![n as u64, (8 * n + 8) as u64], 8));
    let pb = p.add_array(ArrayDecl::new("PRB", vec![n as u64, (8 * n + 8) as u64], 8));
    let build = Stmt::binary(
        2,
        ArrayRef::identity(sub, 2, vec![0, 0]),
        Op::Add,
        strided2(pa, 0, 0),
        strided2(pb, 0, 0),
        1,
    );
    p.nests
        .push(LoopNest::new(1, vec![0, 0], vec![n, n], vec![build]));
    p
}

/// `kdtree` — k-d tree range search: line-stride key probes against a
/// pivot exactly 400 L2 lines away (operands *always* share a home
/// bank) with no downstream reuse — the richest NDC opportunity in the
/// suite, matching the paper's best improvement (37%).
pub fn kdtree(scale: Scale) -> Program {
    let n = scale.n(16384) as i64;
    let mut p = Program::new("kdtree");
    // KEYS is padded to a multiple of 102400 bytes (= 25 L2 lines x 16
    // pages), so PIVOTS' page-aligned base lands exactly a whole number
    // of bank wraps later: KEYS[8i] and PIVOTS[8i] share a home bank at
    // every single iteration.
    let keys_elems = ((48 * n + 16) as u64).div_ceil(12800) * 12800;
    let keys = p.add_array(ArrayDecl::new("KEYS", vec![keys_elems], 8));
    let piv = p.add_array(ArrayDecl::new("PIVOTS", vec![keys_elems], 8));
    let hits = p.add_array(ArrayDecl::new("HITS", vec![n as u64], 8));
    let s = Stmt::binary(
        0,
        ArrayRef::identity(hits, 1, vec![0]),
        Op::CmpLt,
        strided(keys, 48, 0),
        strided(piv, 48, 0),
        2,
    );
    p.nests.push(LoopNest::new(0, vec![0], vec![n], vec![s]));
    let _ = strided_dst;
    p
}
