//! Full-map sharer directory for L1 coherence.
//!
//! The simulated machine keeps a directory entry per L2-home line
//! recording which cores hold the line in their L1. A write from core
//! `c` invalidates every other sharer's L1 copy. Those later re-reads
//! become *coherence misses* — the miss class the paper's CME estimator
//! deliberately does not model ("our CME implementation does not model
//! coherence misses", §5.2), which is what caps the Table 2 accuracies.

use ndc_types::{Addr, FxHashMap};

/// Directory contention counters: how much coherence traffic the
/// directory generated and absorbed.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirStats {
    /// Read copies registered.
    pub sharer_adds: u64,
    /// Writes processed.
    pub writes: u64,
    /// Invalidation messages sent to other sharers (each later re-read
    /// by the victim is a coherence miss).
    pub invalidations_sent: u64,
    /// Writes that found other sharers to invalidate — the contended
    /// fraction of write traffic.
    pub contended_writes: u64,
}

/// Sharer bitmask per line address. Supports up to 64 cores, enough for
/// the paper's 4×4 / 5×5 / 6×6 meshes.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    sharers: FxHashMap<Addr, u64>,
    pub stats: DirStats,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `core` obtained a readable copy of `line`.
    pub fn add_sharer(&mut self, line: Addr, core: usize) {
        debug_assert!(core < 64);
        *self.sharers.entry(line).or_insert(0) |= 1 << core;
        self.stats.sharer_adds += 1;
    }

    /// Record a write by `core`: returns the cores whose copies must be
    /// invalidated (every sharer except the writer), and collapses the
    /// entry to the writer alone.
    pub fn write_by(&mut self, line: Addr, core: usize) -> SharerIter {
        debug_assert!(core < 64);
        let entry = self.sharers.entry(line).or_insert(0);
        let others = *entry & !(1 << core);
        *entry = 1 << core;
        self.stats.writes += 1;
        if others != 0 {
            self.stats.contended_writes += 1;
            self.stats.invalidations_sent += others.count_ones() as u64;
        }
        SharerIter { bits: others }
    }

    /// Drop a core's copy (L1 eviction writes back / silently drops).
    pub fn remove_sharer(&mut self, line: Addr, core: usize) {
        if let Some(e) = self.sharers.get_mut(&line) {
            *e &= !(1 << core);
            if *e == 0 {
                self.sharers.remove(&line);
            }
        }
    }

    pub fn sharer_count(&self, line: Addr) -> u32 {
        self.sharers.get(&line).map_or(0, |b| b.count_ones())
    }

    pub fn is_sharer(&self, line: Addr, core: usize) -> bool {
        self.sharers
            .get(&line)
            .is_some_and(|b| b & (1 << core) != 0)
    }

    /// Number of tracked lines (tests / memory accounting).
    pub fn tracked_lines(&self) -> usize {
        self.sharers.len()
    }
}

/// Iterator over core indices in a sharer bitmask.
#[derive(Debug, Clone, Copy)]
pub struct SharerIter {
    bits: u64,
}

impl Iterator for SharerIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let c = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sharing_accumulates() {
        let mut d = Directory::new();
        d.add_sharer(0x1000, 1);
        d.add_sharer(0x1000, 5);
        d.add_sharer(0x1000, 5);
        assert_eq!(d.sharer_count(0x1000), 2);
        assert!(d.is_sharer(0x1000, 1));
        assert!(d.is_sharer(0x1000, 5));
        assert!(!d.is_sharer(0x1000, 2));
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        for c in [0, 3, 7] {
            d.add_sharer(0x40, c);
        }
        let invalidated: Vec<usize> = d.write_by(0x40, 3).collect();
        assert_eq!(invalidated, vec![0, 7]);
        assert_eq!(d.sharer_count(0x40), 1);
        assert!(d.is_sharer(0x40, 3));
    }

    #[test]
    fn write_by_sole_sharer_invalidates_nothing() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 2);
        let inv: Vec<usize> = d.write_by(0x40, 2).collect();
        assert!(inv.is_empty());
    }

    #[test]
    fn write_to_untracked_line_creates_owner() {
        let mut d = Directory::new();
        let inv: Vec<usize> = d.write_by(0x80, 9).collect();
        assert!(inv.is_empty());
        assert!(d.is_sharer(0x80, 9));
    }

    #[test]
    fn remove_sharer_cleans_up() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 1);
        d.add_sharer(0x40, 2);
        d.remove_sharer(0x40, 1);
        assert_eq!(d.sharer_count(0x40), 1);
        d.remove_sharer(0x40, 2);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn stats_count_coherence_traffic() {
        let mut d = Directory::new();
        for c in [0, 3, 7] {
            d.add_sharer(0x40, c);
        }
        let _ = d.write_by(0x40, 3); // invalidates cores 0 and 7
        let _ = d.write_by(0x40, 3); // sole owner: nothing to invalidate
        assert_eq!(d.stats.sharer_adds, 3);
        assert_eq!(d.stats.writes, 2);
        assert_eq!(d.stats.invalidations_sent, 2);
        assert_eq!(d.stats.contended_writes, 1);
    }

    #[test]
    fn distinct_lines_are_independent() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 1);
        d.add_sharer(0x80, 2);
        let inv: Vec<usize> = d.write_by(0x40, 3).collect();
        assert_eq!(inv, vec![1]);
        assert!(d.is_sharer(0x80, 2));
    }
}
