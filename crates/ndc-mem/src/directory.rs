//! Full-map sharer directory for L1 coherence.
//!
//! The simulated machine keeps a directory entry per L2-home line
//! recording which cores hold the line in their L1. A write from core
//! `c` invalidates every other sharer's L1 copy. Those later re-reads
//! become *coherence misses* — the miss class the paper's CME estimator
//! deliberately does not model ("our CME implementation does not model
//! coherence misses", §5.2), which is what caps the Table 2 accuracies.

use ndc_types::{Addr, FxHashMap};

/// Directory contention counters: how much coherence traffic the
/// directory generated and absorbed.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirStats {
    /// Read copies registered.
    pub sharer_adds: u64,
    /// Writes processed.
    pub writes: u64,
    /// Invalidation messages sent to other sharers (each later re-read
    /// by the victim is a coherence miss).
    pub invalidations_sent: u64,
    /// Writes that found other sharers to invalidate — the contended
    /// fraction of write traffic.
    pub contended_writes: u64,
}

impl DirStats {
    /// Fold another shard's counters into this one (the lane engine
    /// keeps one directory shard per home bank and merges at the end).
    pub fn merge(&mut self, other: &DirStats) {
        self.sharer_adds += other.sharer_adds;
        self.writes += other.writes;
        self.invalidations_sent += other.invalidations_sent;
        self.contended_writes += other.contended_writes;
    }
}

/// Widest mesh the sharer mask supports: 4×64 bits = 256 cores, i.e. a
/// 16×16 mesh. `debug_assert`ed at every entry point.
pub const MAX_CORES: usize = SHARER_WORDS * 64;
const SHARER_WORDS: usize = 4;

/// Sharer bitmask per line address: a fixed `[u64; 4]` word array, wide
/// enough for the 16×16 scale-up mesh (256 cores) while staying a flat
/// inline value — no per-line heap allocation on the coherence path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SharerMask {
    words: [u64; SHARER_WORDS],
}

impl SharerMask {
    #[inline]
    fn set(&mut self, core: usize) {
        self.words[core / 64] |= 1 << (core % 64);
    }

    #[inline]
    fn clear(&mut self, core: usize) {
        self.words[core / 64] &= !(1 << (core % 64));
    }

    #[inline]
    fn contains(&self, core: usize) -> bool {
        self.words[core / 64] & (1 << (core % 64)) != 0
    }

    #[inline]
    fn only(core: usize) -> Self {
        let mut m = Self::default();
        m.set(core);
        m
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

/// Full-map L1 sharer directory. Supports up to [`MAX_CORES`] cores.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    sharers: FxHashMap<Addr, SharerMask>,
    pub stats: DirStats,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `core` obtained a readable copy of `line`.
    pub fn add_sharer(&mut self, line: Addr, core: usize) {
        debug_assert!(core < MAX_CORES);
        self.sharers.entry(line).or_default().set(core);
        self.stats.sharer_adds += 1;
    }

    /// Record a write by `core`: returns the cores whose copies must be
    /// invalidated (every sharer except the writer), and collapses the
    /// entry to the writer alone.
    pub fn write_by(&mut self, line: Addr, core: usize) -> SharerIter {
        debug_assert!(core < MAX_CORES);
        let entry = self.sharers.entry(line).or_default();
        let mut others = *entry;
        others.clear(core);
        *entry = SharerMask::only(core);
        self.stats.writes += 1;
        if !others.is_empty() {
            self.stats.contended_writes += 1;
            self.stats.invalidations_sent += u64::from(others.count());
        }
        SharerIter {
            mask: others,
            word: 0,
        }
    }

    /// Drop a core's copy (L1 eviction writes back / silently drops).
    pub fn remove_sharer(&mut self, line: Addr, core: usize) {
        debug_assert!(core < MAX_CORES);
        if let Some(e) = self.sharers.get_mut(&line) {
            e.clear(core);
            if e.is_empty() {
                self.sharers.remove(&line);
            }
        }
    }

    pub fn sharer_count(&self, line: Addr) -> u32 {
        self.sharers.get(&line).map_or(0, |m| m.count())
    }

    pub fn is_sharer(&self, line: Addr, core: usize) -> bool {
        debug_assert!(core < MAX_CORES);
        self.sharers.get(&line).is_some_and(|m| m.contains(core))
    }

    /// Number of tracked lines (tests / memory accounting).
    pub fn tracked_lines(&self) -> usize {
        self.sharers.len()
    }
}

/// Iterator over core indices in a sharer bitmask, ascending.
#[derive(Debug, Clone, Copy)]
pub struct SharerIter {
    mask: SharerMask,
    word: usize,
}

impl Iterator for SharerIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word < SHARER_WORDS {
            let bits = self.mask.words[self.word];
            if bits == 0 {
                self.word += 1;
                continue;
            }
            let c = bits.trailing_zeros() as usize;
            self.mask.words[self.word] = bits & (bits - 1);
            return Some(self.word * 64 + c);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sharing_accumulates() {
        let mut d = Directory::new();
        d.add_sharer(0x1000, 1);
        d.add_sharer(0x1000, 5);
        d.add_sharer(0x1000, 5);
        assert_eq!(d.sharer_count(0x1000), 2);
        assert!(d.is_sharer(0x1000, 1));
        assert!(d.is_sharer(0x1000, 5));
        assert!(!d.is_sharer(0x1000, 2));
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        for c in [0, 3, 7] {
            d.add_sharer(0x40, c);
        }
        let invalidated: Vec<usize> = d.write_by(0x40, 3).collect();
        assert_eq!(invalidated, vec![0, 7]);
        assert_eq!(d.sharer_count(0x40), 1);
        assert!(d.is_sharer(0x40, 3));
    }

    #[test]
    fn write_by_sole_sharer_invalidates_nothing() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 2);
        let inv: Vec<usize> = d.write_by(0x40, 2).collect();
        assert!(inv.is_empty());
    }

    #[test]
    fn write_to_untracked_line_creates_owner() {
        let mut d = Directory::new();
        let inv: Vec<usize> = d.write_by(0x80, 9).collect();
        assert!(inv.is_empty());
        assert!(d.is_sharer(0x80, 9));
    }

    #[test]
    fn remove_sharer_cleans_up() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 1);
        d.add_sharer(0x40, 2);
        d.remove_sharer(0x40, 1);
        assert_eq!(d.sharer_count(0x40), 1);
        d.remove_sharer(0x40, 2);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn stats_count_coherence_traffic() {
        let mut d = Directory::new();
        for c in [0, 3, 7] {
            d.add_sharer(0x40, c);
        }
        let _ = d.write_by(0x40, 3); // invalidates cores 0 and 7
        let _ = d.write_by(0x40, 3); // sole owner: nothing to invalidate
        assert_eq!(d.stats.sharer_adds, 3);
        assert_eq!(d.stats.writes, 2);
        assert_eq!(d.stats.invalidations_sent, 2);
        assert_eq!(d.stats.contended_writes, 1);
    }

    #[test]
    fn distinct_lines_are_independent() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 1);
        d.add_sharer(0x80, 2);
        let inv: Vec<usize> = d.write_by(0x40, 3).collect();
        assert_eq!(inv, vec![1]);
        assert!(d.is_sharer(0x80, 2));
    }

    /// The 16×16 scale-up mesh has 256 cores — sharers above core 63
    /// must round-trip through every operation (the pre-scale-up mask
    /// was a single u64 and silently aliased them).
    #[test]
    fn cores_beyond_64_are_tracked() {
        let mut d = Directory::new();
        for c in [0, 63, 64, 130, 255] {
            d.add_sharer(0x40, c);
        }
        assert_eq!(d.sharer_count(0x40), 5);
        assert!(d.is_sharer(0x40, 255));
        let inv: Vec<usize> = d.write_by(0x40, 130).collect();
        assert_eq!(inv, vec![0, 63, 64, 255]);
        assert_eq!(d.sharer_count(0x40), 1);
        assert!(d.is_sharer(0x40, 130));
        d.remove_sharer(0x40, 130);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn stats_merge_sums_shards() {
        let mut a = DirStats {
            sharer_adds: 1,
            writes: 2,
            invalidations_sent: 3,
            contended_writes: 4,
        };
        let b = DirStats {
            sharer_adds: 10,
            writes: 20,
            invalidations_sent: 30,
            contended_writes: 40,
        };
        a.merge(&b);
        assert_eq!(a.sharer_adds, 11);
        assert_eq!(a.writes, 22);
        assert_eq!(a.invalidations_sent, 33);
        assert_eq!(a.contended_writes, 44);
    }
}
