//! Banked DRAM channel with row buffers and FR-FCFS-flavoured timing.
//!
//! Each memory controller owns one device of `banks_per_device` banks
//! (Table 1: 4 banks, 16384 rows/bank, 4 KB row buffers). A request's
//! service latency depends on the row-buffer state of its bank:
//!
//! * **row hit** — the addressed row is open: column access only;
//! * **row miss** — the bank is idle (no open row): activate + access;
//! * **row conflict** — a different row is open: precharge + activate +
//!   access.
//!
//! Requests serialize per bank (banks have a busy horizon) and on the
//! shared data channel (burst occupancy). FR-FCFS's "first-ready" bias
//! is captured structurally: row hits occupy their bank for much less
//! time, so streams with row locality drain ahead of conflicted ones —
//! the same throughput effect the scheduler achieves — while the
//! `starvation_cap` bounds how far a conflicted request can be pushed
//! back by letting it claim the channel after at most that many bursts
//! bypass it.

use ndc_types::{Addr, ArchConfig, Cycle};

/// Row-buffer outcome of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    Hit,
    Miss,
    Conflict,
}

impl RowOutcome {
    /// Stable lowercase label (span segments, reports).
    pub fn label(self) -> &'static str {
        match self {
            RowOutcome::Hit => "hit",
            RowOutcome::Miss => "miss",
            RowOutcome::Conflict => "conflict",
        }
    }
}

/// Timing record of one memory-controller access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McAccess {
    /// When the request entered the controller queue.
    pub queue_enter: Cycle,
    /// When the bank began servicing it.
    pub service_start: Cycle,
    /// When the data burst completed (request done).
    pub completion: Cycle,
    /// Row-buffer outcome.
    pub row: RowOutcome,
    /// Bank index within this controller's device.
    pub bank: u32,
}

impl McAccess {
    pub fn queue_delay(&self) -> Cycle {
        self.service_start - self.queue_enter
    }

    pub fn latency(&self) -> Cycle {
        self.completion - self.queue_enter
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// Per-controller statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct McStats {
    pub requests: u64,
    /// Bytes moved over the data channel (one L2 line per request) —
    /// the independent recorder the attribution ledger's DRAM column is
    /// checked against.
    pub bytes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    pub total_queue_delay: u64,
    pub bypasses: u64,
    /// Cycles the shared data channel spent transferring bursts — the
    /// numerator of channel utilization (denominator: elapsed cycles).
    pub channel_busy_cycles: u64,
}

impl McStats {
    /// Conservation law the invariant checker asserts: every serviced
    /// request had exactly one row-buffer outcome.
    pub fn outcomes_accounted(&self) -> bool {
        self.row_hits + self.row_misses + self.row_conflicts == self.requests
    }

    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Fraction of `elapsed` cycles the data channel was transferring.
    pub fn channel_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.channel_busy_cycles as f64 / elapsed as f64
        }
    }
}

/// One memory controller + its DRAM device.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: ArchConfig,
    banks: Vec<BankState>,
    /// Shared data-channel horizon (burst serialization).
    channel_busy_until: Cycle,
    /// Consecutive row-hit bypasses granted since the last
    /// non-row-hit request was serviced (FR-FCFS starvation cap).
    consecutive_bypasses: u32,
    pub stats: McStats,
}

impl MemoryController {
    pub fn new(cfg: ArchConfig) -> Self {
        let banks = vec![
            BankState {
                open_row: None,
                busy_until: 0,
            };
            cfg.mem.dram.banks_per_device as usize
        ];
        MemoryController {
            cfg,
            banks,
            channel_busy_until: 0,
            consecutive_bypasses: 0,
            stats: McStats::default(),
        }
    }

    /// Service a request for `addr` arriving at the controller at
    /// `arrival`. Returns the full timing record.
    pub fn request(&mut self, addr: Addr, arrival: Cycle) -> McAccess {
        let dram = &self.cfg.mem.dram;
        let bank_idx = self.cfg.dram_bank_of(addr) as usize % self.banks.len();
        let row = self.cfg.dram_row_of(addr);
        let bank = &mut self.banks[bank_idx];

        let (outcome, access_cycles) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, dram.row_hit_cycles),
            Some(_) => (RowOutcome::Conflict, dram.row_conflict_cycles),
            None => (RowOutcome::Miss, dram.row_miss_cycles),
        };

        // FR-FCFS flavour: a row hit may start as soon as its bank is
        // free; a non-hit that has been bypassed too often claims the
        // channel immediately (starvation cap).
        let channel_ready = if outcome == RowOutcome::Hit {
            self.consecutive_bypasses += 1;
            self.stats.bypasses += 1;
            // Row hits slot into the earliest channel gap.
            self.channel_busy_until
        } else if self.consecutive_bypasses >= self.cfg.mem.starvation_cap {
            self.consecutive_bypasses = 0;
            // Starved request: next channel slot, no further bypass.
            self.channel_busy_until
        } else {
            self.consecutive_bypasses = 0;
            self.channel_busy_until
        };

        let service_start = arrival.max(bank.busy_until).max(channel_ready);
        let data_ready = service_start + access_cycles;
        let completion = data_ready + dram.burst_cycles;

        bank.open_row = Some(row);
        bank.busy_until = data_ready;
        self.channel_busy_until = completion;

        self.stats.requests += 1;
        self.stats.bytes += self.cfg.l2.line_bytes;
        self.stats.total_queue_delay += service_start - arrival;
        self.stats.channel_busy_cycles += dram.burst_cycles;
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }

        McAccess {
            queue_enter: arrival,
            service_start,
            completion,
            row: outcome,
            bank: bank_idx as u32,
        }
    }

    /// Reset dynamic state between simulations.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.open_row = None;
            b.busy_until = 0;
        }
        self.channel_busy_until = 0;
        self.consecutive_bypasses = 0;
        self.stats = McStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(ArchConfig::paper_default())
    }

    // In paper_default, consecutive 4 KB frames on the same MC map to
    // consecutive banks; same-frame addresses share a bank and row.
    const FRAME: Addr = 4 * 4096; // stride between frames of MC0

    #[test]
    fn first_access_is_row_miss() {
        let mut m = mc();
        let a = m.request(0, 100);
        assert_eq!(a.row, RowOutcome::Miss);
        assert_eq!(a.queue_enter, 100);
        assert_eq!(a.service_start, 100);
        assert_eq!(a.completion, 100 + 60 + 4);
    }

    #[test]
    fn same_row_hits() {
        let mut m = mc();
        let first = m.request(0, 0);
        let second = m.request(64, first.completion);
        assert_eq!(second.row, RowOutcome::Hit);
        assert_eq!(second.completion - second.service_start, 30 + 4);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut m = mc();
        let first = m.request(0, 0);
        // 16 frames ahead wraps banks (4 banks) and advances the row.
        let conflict_addr = 16 * FRAME / 4 * 4; // = 16 frames of MC0
        let second = m.request(16 * FRAME, first.completion);
        let _ = conflict_addr;
        assert_eq!(second.bank, first.bank);
        assert_eq!(second.row, RowOutcome::Conflict);
        assert_eq!(second.completion - second.service_start, 90 + 4);
    }

    #[test]
    fn different_banks_overlap_but_channel_serializes() {
        let mut m = mc();
        let a = m.request(0, 0); // bank 0
        let b = m.request(FRAME, 0); // bank 1, same channel
        assert_ne!(a.bank, b.bank);
        // Bank 1 is free, but the data channel forces b after a's burst.
        assert!(b.service_start >= a.completion);
    }

    #[test]
    fn bank_busy_defers_back_to_back_same_bank() {
        let mut m = mc();
        let a = m.request(0, 0);
        let b = m.request(64, 0); // same row, bank busy until data_ready
        assert_eq!(b.row, RowOutcome::Hit);
        assert!(b.service_start >= a.completion - 4);
        assert!(b.queue_delay() > 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mc();
        m.request(0, 0);
        m.request(64, 200);
        m.request(16 * FRAME, 400);
        assert_eq!(m.stats.requests, 3);
        assert_eq!(m.stats.row_misses, 1);
        assert_eq!(m.stats.row_hits, 1);
        assert_eq!(m.stats.row_conflicts, 1);
        assert!(m.stats.outcomes_accounted());
        let broken = McStats {
            requests: 4,
            ..m.stats
        };
        assert!(!broken.outcomes_accounted());
        assert!((m.stats.row_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        // Three bursts of 4 cycles crossed the channel.
        assert_eq!(m.stats.channel_busy_cycles, 12);
        assert!((m.stats.channel_utilization(120) - 0.1).abs() < 1e-12);
        assert_eq!(m.stats.channel_utilization(0), 0.0);
    }

    #[test]
    fn row_outcome_labels_are_stable() {
        assert_eq!(RowOutcome::Hit.label(), "hit");
        assert_eq!(RowOutcome::Miss.label(), "miss");
        assert_eq!(RowOutcome::Conflict.label(), "conflict");
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = mc();
        m.request(0, 0);
        m.reset();
        let a = m.request(64, 0);
        assert_eq!(a.row, RowOutcome::Miss);
        assert_eq!(a.service_start, 0);
        assert_eq!(m.stats.requests, 1);
    }
}
