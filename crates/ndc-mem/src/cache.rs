//! A timed, LRU, set-associative cache.
//!
//! Used for both L1s (32 KB, 64 B lines, 2-way) and NUCA L2 banks
//! (512 KB, 256 B lines, 64-way). Each resident line remembers the cycle
//! it was filled: the simulator uses fill times to compute how long one
//! operand has been L2-resident when the other arrives (the
//! cache-controller arrival window of Figure 2b).

use ndc_types::{Addr, CacheConfig, Cycle};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident; carries the cycle it was filled.
    Hit { filled_at: Cycle },
    /// The line was not resident. It has been filled (allocated) by this
    /// access; `evicted` names the line address displaced, if any, and
    /// `coherence` is true when the line was absent because of a
    /// directory invalidation (a coherence miss).
    Miss {
        evicted: Option<Addr>,
        coherence: bool,
    },
}

impl AccessOutcome {
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }
}

/// Hit/miss counters, split by demand kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Misses caused by a directory invalidation having removed the
    /// line (coherence misses). A subset of `misses`.
    pub coherence_misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LineEntry {
    tag: u64,
    /// Monotone LRU stamp: larger = more recently used.
    lru: u64,
    filled_at: Cycle,
    dirty: bool,
    valid: bool,
}

const INVALID: LineEntry = LineEntry {
    tag: 0,
    lru: 0,
    filled_at: 0,
    dirty: false,
    valid: false,
};

/// A set-associative, write-allocate, LRU cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: u64,
    ways: usize,
    /// `sets * ways` entries, row-major by set.
    lines: Vec<LineEntry>,
    lru_clock: u64,
    /// Lines whose next miss should count as a coherence miss because
    /// an invalidation (not capacity/conflict pressure) removed them.
    invalidated: std::collections::HashSet<Addr>,
    pub stats: CacheStats,
}

impl SetAssocCache {
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        let ways = cfg.ways as usize;
        SetAssocCache {
            cfg,
            sets,
            ways,
            lines: vec![INVALID; (sets as usize) * ways],
            lru_clock: 0,
            invalidated: std::collections::HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-aligned address of the block containing `addr`.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr / self.cfg.line_bytes * self.cfg.line_bytes
    }

    fn set_of(&self, addr: Addr) -> usize {
        ((addr / self.cfg.line_bytes) % self.sets) as usize
    }

    fn tag_of(&self, addr: Addr) -> u64 {
        addr / self.cfg.line_bytes / self.sets
    }

    fn set_slice(&mut self, set: usize) -> &mut [LineEntry] {
        let base = set * self.ways;
        &mut self.lines[base..base + self.ways]
    }

    /// Access `addr` at cycle `now`. On a miss the line is allocated
    /// (fills are modelled as instantaneous at `now`; the *latency* of
    /// the fill is the caller's concern — it knows the full path cost).
    pub fn access(&mut self, addr: Addr, now: Cycle, is_write: bool) -> AccessOutcome {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lru_clock += 1;
        let clock = self.lru_clock;

        if let Some(e) = self
            .set_slice(set)
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)
        {
            e.lru = clock;
            e.dirty |= is_write;
            let filled_at = e.filled_at;
            self.stats.hits += 1;
            return AccessOutcome::Hit { filled_at };
        }

        // Miss: allocate, evicting LRU if the set is full.
        self.stats.misses += 1;
        let coherence = self.invalidated.remove(&line_addr);
        if coherence {
            self.stats.coherence_misses += 1;
        }
        let sets = self.sets;
        let line_bytes = self.cfg.line_bytes;
        let slot = {
            let set_lines = self.set_slice(set);
            let mut victim = 0usize;
            let mut victim_lru = u64::MAX;
            let mut found_invalid = false;
            for (i, e) in set_lines.iter().enumerate() {
                if !e.valid {
                    victim = i;
                    found_invalid = true;
                    break;
                }
                if e.lru < victim_lru {
                    victim_lru = e.lru;
                    victim = i;
                }
            }
            (victim, found_invalid)
        };
        let (victim, was_invalid) = slot;
        let evicted = if was_invalid {
            None
        } else {
            let e = &self.set_slice(set)[victim];
            let evicted_addr = (e.tag * sets + set as u64) * line_bytes;
            Some(evicted_addr)
        };
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        self.set_slice(set)[victim] = LineEntry {
            tag,
            lru: clock,
            filled_at: now,
            dirty: is_write,
            valid: true,
        };
        AccessOutcome::Miss { evicted, coherence }
    }

    /// Non-mutating residency probe (the LD/ST unit's "local $ probe"
    /// before offloading, Figure 1).
    pub fn probe(&self, addr: Addr) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|e| e.valid && e.tag == tag)
    }

    /// Fill time of a resident line, if resident.
    pub fn resident_since(&self, addr: Addr) -> Option<Cycle> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.filled_at)
    }

    /// Remove a line (directory-initiated invalidation). The next demand
    /// miss on this line is counted as a coherence miss.
    pub fn invalidate(&mut self, addr: Addr) {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let mut hit = false;
        for e in self.set_slice(set) {
            if e.valid && e.tag == tag {
                e.valid = false;
                hit = true;
                break;
            }
        }
        if hit {
            self.stats.invalidations += 1;
            self.invalidated.insert(line_addr);
        }
    }

    /// Number of currently-valid lines (tests and occupancy metrics).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            latency: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.sets, 4);
        assert_eq!(c.ways, 2);
        assert_eq!(c.line_addr(130), 128);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, 10, false).is_hit());
        match c.access(32, 11, false) {
            AccessOutcome::Hit { filled_at } => assert_eq!(filled_at, 10),
            _ => panic!("same line should hit"),
        }
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with (line_index % 4 == 0): 0, 256, 512, ...
        c.access(0, 1, false); // A
        c.access(256, 2, false); // B
        c.access(0, 3, false); // touch A -> B is now LRU
        match c.access(512, 4, false) {
            AccessOutcome::Miss { evicted, .. } => assert_eq!(evicted, Some(256)),
            _ => panic!("expected miss"),
        }
        // A must still be resident.
        assert!(c.probe(0));
        assert!(!c.probe(256));
    }

    #[test]
    fn associativity_is_respected() {
        let mut c = tiny();
        c.access(0, 1, false);
        c.access(256, 2, false);
        assert_eq!(c.occupancy(), 2);
        c.access(512, 3, false);
        // Still only 2 lines in set 0.
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0, 1, false);
        let stats_before = c.stats;
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert_eq!(c.stats, stats_before);
    }

    #[test]
    fn invalidation_counts_coherence_miss() {
        let mut c = tiny();
        c.access(0, 1, false);
        c.invalidate(0);
        assert!(!c.probe(0));
        assert_eq!(c.stats.invalidations, 1);
        match c.access(0, 2, false) {
            AccessOutcome::Miss { coherence, .. } => assert!(coherence),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.stats.coherence_misses, 1);
        // A second miss on the same line (capacity path) is not
        // coherence.
        c.access(256, 3, false);
        c.access(512, 4, false); // evicts line 0's set members
        c.access(0, 5, false);
        assert_eq!(c.stats.coherence_misses, 1);
    }

    #[test]
    fn resident_since_reports_fill_time() {
        let mut c = tiny();
        assert_eq!(c.resident_since(0), None);
        c.access(0, 42, false);
        assert_eq!(c.resident_since(0), Some(42));
        assert_eq!(c.resident_since(32), Some(42));
    }

    #[test]
    fn writes_mark_dirty_and_hit() {
        let mut c = tiny();
        c.access(0, 1, true);
        assert!(c.access(0, 2, true).is_hit());
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = tiny();
        // Line at address 64 lives in set 1; its set-mates are 64+256k.
        c.access(64, 1, false);
        c.access(64 + 256, 2, false);
        match c.access(64 + 512, 3, false) {
            AccessOutcome::Miss { evicted, .. } => assert_eq!(evicted, Some(64)),
            _ => panic!("expected miss"),
        }
    }
}
