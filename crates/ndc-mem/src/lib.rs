//! Memory-hierarchy substrate for the NDC manycore.
//!
//! Three pieces, composed by the simulator:
//!
//! * [`cache::SetAssocCache`] — a timed, LRU, set-associative cache used
//!   for both the per-core L1s and the static-NUCA L2 banks (Table 1
//!   geometries). Lines carry their fill timestamp so the simulator can
//!   measure L2-residency arrival windows.
//! * [`directory::Directory`] — a full-map sharer directory at the L2
//!   home banks. Writes invalidate remote L1 copies; the resulting
//!   *coherence misses* are exactly what the paper's CME estimator does
//!   not model, driving the Table 2 accuracy gap.
//! * [`dram::MemoryController`] — a banked DRAM channel with open-row
//!   buffers and FR-FCFS-flavoured timing: row hits, row misses
//!   (activations) and row conflicts (precharge+activate) cost
//!   different latencies, banks serialize on their busy horizon, and
//!   the shared data channel serializes bursts.

pub mod cache;
pub mod directory;
pub mod dram;

pub use cache::{AccessOutcome, CacheStats, SetAssocCache};
pub use directory::{DirStats, Directory, MAX_CORES};
pub use dram::{McAccess, McStats, MemoryController, RowOutcome};
