//! Determinism-preserving observability for the simulated datapath.
//!
//! The paper's argument is about *where* cycles go on the
//! L1→NoC→L2→NoC→MC→DRAM path; this crate gives every component a way
//! to say so without perturbing the simulation or its determinism
//! contract:
//!
//! * [`Metrics`] — an insertion-ordered tree of counters and
//!   window-bucket histograms, rendered through `ndc_types::Json`.
//!   Merging is defined per node kind (counters add, histograms merge,
//!   subtrees recurse), so per-worker trees collected by
//!   `ndc_par::parallel_map` in input order fold into one tree whose
//!   rendering is independent of thread count.
//! * [`ObsSink`] — the event hook the hot path talks to. Its default
//!   methods are no-ops and [`NullSink`] is a zero-sized implementor,
//!   so a disabled sink costs one predictable branch. [`RingSink`]
//!   keeps a bounded ring of [`Event`]s (oldest dropped first) for
//!   trace emission.
//! * [`trace_json`] — Chrome trace-format JSON (`chrome://tracing`,
//!   Perfetto) assembly from per-run event streams.
//!
//! Nothing in here reads clocks or random state: timestamps are
//! simulated cycles supplied by the caller, and every container
//! preserves insertion order.

use ndc_types::{Cycle, Json, WindowHistogram, BUCKET_LABELS};

pub mod ledger;
pub mod sketch;
pub mod span;

/// How much observability a run should collect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsLevel {
    /// Collect the per-component [`Metrics`] tree.
    pub metrics: bool,
    /// Capacity of the trace event ring; `0` disables event capture.
    pub trace_capacity: usize,
    /// Causal span tracing: sample one request in `span_one_in`
    /// (deterministically, by request id — see [`span::SpanSampler`]);
    /// `0` disables span collection.
    pub span_one_in: u32,
    /// Collect the per-tenant [`ledger::AttributionLedger`] (cycle,
    /// byte, and flit-hop attribution plus latency sketches).
    pub ledger: bool,
}

impl ObsLevel {
    /// Everything off — the default for figure runs.
    pub fn off() -> ObsLevel {
        ObsLevel::default()
    }

    /// Metrics tree only.
    pub fn metrics() -> ObsLevel {
        ObsLevel {
            metrics: true,
            ..ObsLevel::default()
        }
    }

    /// Metrics tree plus a bounded event trace.
    pub fn with_trace(capacity: usize) -> ObsLevel {
        ObsLevel {
            metrics: true,
            trace_capacity: capacity,
            ..ObsLevel::default()
        }
    }

    /// Metrics tree plus span traces for one request in `one_in`.
    pub fn with_spans(one_in: u32) -> ObsLevel {
        ObsLevel {
            metrics: true,
            span_one_in: one_in.max(1),
            ..ObsLevel::default()
        }
    }

    /// Metrics tree plus the attribution ledger — the `profile` level.
    pub fn with_ledger() -> ObsLevel {
        ObsLevel {
            metrics: true,
            ledger: true,
            ..ObsLevel::default()
        }
    }

    /// True when any collection is requested.
    pub fn any(&self) -> bool {
        self.metrics || self.trace_capacity > 0 || self.span_one_in > 0 || self.ledger
    }
}

/// How much runtime invariant checking a run should collect. Mirrors
/// [`ObsLevel`]: `off()` is the default for figure runs and must leave
/// simulator output byte-identical; `full()` makes the engine record a
/// fine-grained check-event stream (see [`chk`]) that `ndc-check`
/// validates against the simulator's conservation laws.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckLevel {
    /// Collect the check-event stream for invariant validation.
    pub invariants: bool,
}

impl CheckLevel {
    /// No checking — the default for figure runs.
    pub fn off() -> CheckLevel {
        CheckLevel::default()
    }

    /// Record the full check-event stream.
    pub fn full() -> CheckLevel {
        CheckLevel { invariants: true }
    }

    /// True when any checking is requested.
    pub fn any(&self) -> bool {
        self.invariants
    }
}

/// The check-event contract shared by the emitter (`ndc-sim`) and the
/// validator (`ndc-check`).
///
/// Request-path events (`CAT_REQ`) carry the request id in `pid` and
/// appear in emission order per request:
/// `issue → [l2_req] → [mem_queue → mem_service → mem_done] →
/// [data_at_bank] → retire`, with non-decreasing `ts`. Link events
/// (`CAT_LINK`) carry the link id in `tid` and the request id in `pid`;
/// one `flit_enter` (ts = slot entry) and one `flit_exit` (ts = slot
/// exit) per link traversal, so per-link occupancy computed from the
/// pair sweep is non-negative and drains to zero.
pub mod chk {
    /// Category of request-path events.
    pub const CAT_REQ: &str = "chk:req";
    /// Category of per-link flit occupancy events.
    pub const CAT_LINK: &str = "chk:link";

    pub const ISSUE: &str = "issue";
    pub const L2_REQ: &str = "l2_req";
    pub const MEM_QUEUE: &str = "mem_queue";
    pub const MEM_SERVICE: &str = "mem_service";
    pub const MEM_DONE: &str = "mem_done";
    pub const DATA_AT_BANK: &str = "data_at_bank";
    pub const RETIRE: &str = "retire";

    pub const FLIT_ENTER: &str = "flit_enter";
    pub const FLIT_EXIT: &str = "flit_exit";
}

/// One node in a [`Metrics`] tree.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricNode {
    /// A monotonically accumulated count (cycles, events, bytes…).
    Counter(u64),
    /// A distribution over the paper's window buckets.
    Hist(WindowHistogram),
    /// A named subtree.
    Tree(Metrics),
}

/// An insertion-ordered tree of named metrics.
///
/// Keys keep first-insertion order so the rendered JSON is byte-stable;
/// lookups are linear, which is fine at the tens-of-entries scale this
/// tree has (per component, per bank, per link).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: Vec<(String, MetricNode)>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Set (or overwrite) a counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.put(name, MetricNode::Counter(value));
        self
    }

    /// Add to a counter, creating it at zero first if absent.
    pub fn add(&mut self, name: &str, delta: u64) -> &mut Self {
        match self.entry_mut(name) {
            Some(MetricNode::Counter(c)) => *c += delta,
            Some(other) => panic!("metric {name:?} is not a counter: {other:?}"),
            None => self.put(name, MetricNode::Counter(delta)),
        }
        self
    }

    /// Set (or overwrite) a histogram.
    pub fn hist(&mut self, name: &str, h: &WindowHistogram) -> &mut Self {
        self.put(name, MetricNode::Hist(h.clone()));
        self
    }

    /// Get-or-create a subtree and hand back a mutable reference.
    pub fn tree(&mut self, name: &str) -> &mut Metrics {
        if self.entry_mut(name).is_none() {
            self.put(name, MetricNode::Tree(Metrics::new()));
        }
        match self.entry_mut(name) {
            Some(MetricNode::Tree(t)) => t,
            Some(other) => panic!("metric {name:?} is not a subtree: {other:?}"),
            None => unreachable!(),
        }
    }

    /// Look up a node by name.
    pub fn get(&self, name: &str) -> Option<&MetricNode> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Convenience: the value of a counter, or `None`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricNode::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Number of direct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold another tree into this one: counters add, histograms merge,
    /// subtrees recurse; keys absent here are appended in the other
    /// tree's order. Merging worker trees in input order therefore
    /// yields the same tree — same keys, same order, same totals — as a
    /// serial run.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.entries {
            match self.entry_mut(k) {
                None => self.put(k, v.clone()),
                Some(mine) => match (mine, v) {
                    (MetricNode::Counter(a), MetricNode::Counter(b)) => *a += *b,
                    (MetricNode::Hist(a), MetricNode::Hist(b)) => a.merge(b),
                    (MetricNode::Tree(a), MetricNode::Tree(b)) => a.merge(b),
                    (mine, theirs) => {
                        panic!("metric {k:?} kind mismatch: {mine:?} vs {theirs:?}")
                    }
                },
            }
        }
    }

    /// Render as a JSON object. Counters become numbers; histograms
    /// become `{bucket label: count, ..., "total": n}` objects; subtrees
    /// nest.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, v) in &self.entries {
            match v {
                MetricNode::Counter(c) => {
                    obj.set(k.clone(), *c);
                }
                MetricNode::Hist(h) => {
                    let mut hj = Json::obj();
                    for (b, label) in BUCKET_LABELS.iter().enumerate() {
                        hj.set(*label, h.count(b));
                    }
                    hj.set("total", h.total());
                    obj.set(k.clone(), hj);
                }
                MetricNode::Tree(t) => {
                    obj.set(k.clone(), t.to_json());
                }
            }
        }
        obj
    }

    fn entry_mut(&mut self, name: &str) -> Option<&mut MetricNode> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    fn put(&mut self, name: &str, node: MetricNode) {
        if let Some(slot) = self.entry_mut(name) {
            *slot = node;
        } else {
            self.entries.push((name.to_string(), node));
        }
    }
}

/// One trace event: a named duration on a simulated timeline.
///
/// `pid`/`tid` map to Chrome-trace process/thread rows; we use pid for
/// the run (benchmark × scheme) and tid for the simulated core or
/// component lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub name: String,
    /// Category string, comma-separable in trace viewers.
    pub cat: &'static str,
    /// Start, in simulated cycles.
    pub ts: Cycle,
    /// Duration, in simulated cycles.
    pub dur: Cycle,
    pub pid: u32,
    pub tid: u32,
}

/// The hook the simulated datapath reports through. All methods have
/// no-op defaults so the disabled path ([`NullSink`]) costs a branch on
/// [`ObsSink::enabled`] and nothing else.
pub trait ObsSink {
    /// Cheap gate the hot path checks before building an [`Event`].
    fn enabled(&self) -> bool {
        false
    }

    /// Record one event. Implementations must be deterministic
    /// functions of the call sequence.
    fn record(&mut self, _ev: Event) {}
}

/// The do-nothing sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// A bounded ring of events: when full, the oldest event is dropped
/// and counted, so a long run keeps its *latest* window of activity —
/// the part that usually explains a tail — in bounded memory. Drops
/// are tallied per event category so a `--metrics` dump can say *whose*
/// history was truncated, not just that something was.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    cap: usize,
    events: std::collections::VecDeque<Event>,
    dropped: u64,
    /// Per-category eviction counts, in first-eviction order.
    dropped_by_cat: Vec<(&'static str, u64)>,
}

impl RingSink {
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap,
            events: std::collections::VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
            dropped_by_cat: Vec::new(),
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Consume the sink, returning retained events oldest-first.
    pub fn into_events(self) -> Vec<Event> {
        self.events.into()
    }

    /// How many events were evicted to keep the ring bounded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evictions per event category, in first-eviction order.
    pub fn dropped_by_cat(&self) -> &[(&'static str, u64)] {
        &self.dropped_by_cat
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl ObsSink for RingSink {
    fn enabled(&self) -> bool {
        self.cap > 0
    }

    fn record(&mut self, ev: Event) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            let old = self.events.pop_front().expect("ring at capacity");
            self.dropped += 1;
            match self.dropped_by_cat.iter_mut().find(|(c, _)| *c == old.cat) {
                Some((_, n)) => *n += 1,
                None => self.dropped_by_cat.push((old.cat, 1)),
            }
        }
        self.events.push_back(ev);
    }
}

/// An unbounded event sink: keeps everything, in record order. Used by
/// the invariant checker, which needs the *complete* stream — a ring
/// that drops its oldest events would turn every long run into a false
/// "request never retired" violation.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    pub fn new() -> VecSink {
        VecSink::default()
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl ObsSink for VecSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// Assemble Chrome trace-format JSON from per-run event streams.
///
/// Each `(label, events)` pair becomes one trace "process": a `ph:"M"`
/// `process_name` metadata record naming it, followed by its events as
/// `ph:"X"` complete-duration records. The result loads directly in
/// `chrome://tracing` or Perfetto. Cycle timestamps are emitted as
/// microseconds 1:1 (viewers need *some* time unit; relative spans are
/// what matter).
pub fn trace_json(runs: &[(String, Vec<Event>)]) -> Json {
    let mut events = Vec::new();
    for (pid, (label, evs)) in runs.iter().enumerate() {
        let pid = pid as u32;
        events.push(
            Json::obj()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", pid)
                .with("tid", 0u32)
                .with("args", Json::obj().with("name", label.clone())),
        );
        for ev in evs {
            events.push(
                Json::obj()
                    .with("name", ev.name.clone())
                    .with("cat", ev.cat)
                    .with("ph", "X")
                    .with("ts", ev.ts)
                    .with("dur", ev.dur)
                    .with("pid", pid)
                    .with("tid", ev.tid),
            );
        }
    }
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", "ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: Cycle) -> Event {
        Event {
            name: name.to_string(),
            cat: "test",
            ts,
            dur: 1,
            pid: 0,
            tid: 0,
        }
    }

    #[test]
    fn counters_add_and_render() {
        let mut m = Metrics::new();
        m.counter("requests", 3).add("requests", 2).add("hits", 1);
        assert_eq!(m.counter_value("requests"), Some(5));
        assert_eq!(m.counter_value("hits"), Some(1));
        assert_eq!(m.to_json().render(), r#"{"requests":5,"hits":1}"#);
    }

    #[test]
    fn trees_nest_and_keep_insertion_order() {
        let mut m = Metrics::new();
        m.tree("noc").counter("messages", 7);
        m.tree("dram").counter("row_hits", 2);
        m.tree("noc").counter("queueing", 9);
        assert_eq!(
            m.to_json().render(),
            r#"{"noc":{"messages":7,"queueing":9},"dram":{"row_hits":2}}"#
        );
    }

    #[test]
    fn hist_renders_bucket_labels() {
        let mut h = WindowHistogram::new();
        h.record(Some(5));
        h.record(None);
        let mut m = Metrics::new();
        m.hist("window", &h);
        assert_eq!(
            m.to_json().render(),
            r#"{"window":{"1":0,"10":1,"20":0,"50":0,"100":0,"500":0,"500+":1,"total":2}}"#
        );
    }

    #[test]
    fn merge_is_order_insensitive_on_totals_and_keeps_self_order() {
        let mut a = Metrics::new();
        a.counter("x", 1);
        a.tree("sub").counter("y", 10);
        let mut b = Metrics::new();
        b.tree("sub").counter("y", 5);
        b.counter("x", 2);
        b.counter("z", 4);

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counter_value("x"), Some(3));
        assert_eq!(ab.counter_value("z"), Some(4));
        match ab.get("sub") {
            Some(MetricNode::Tree(t)) => assert_eq!(t.counter_value("y"), Some(15)),
            other => panic!("expected subtree, got {other:?}"),
        }
        // Self's key order wins; new keys append.
        assert_eq!(ab.to_json().render(), r#"{"x":3,"sub":{"y":15},"z":4}"#);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Metrics::new();
        a.counter("x", 1);
        let before = a.to_json().render();
        a.merge(&Metrics::new());
        assert_eq!(a.to_json().render(), before);

        let mut e = Metrics::new();
        e.merge(&a);
        assert_eq!(e.to_json().render(), before);
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
    }

    #[test]
    fn ring_sink_bounds_and_keeps_latest() {
        let mut s = RingSink::new(3);
        assert!(s.enabled());
        for i in 0..5 {
            s.record(ev("e", i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ts: Vec<Cycle> = s.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        // Both evictions were category "test".
        assert_eq!(s.dropped_by_cat(), &[("test", 2)]);
    }

    #[test]
    fn ring_sink_attributes_drops_per_category() {
        let mut s = RingSink::new(1);
        s.record(Event {
            cat: "a",
            ..ev("e", 0)
        });
        s.record(Event {
            cat: "b",
            ..ev("e", 1)
        });
        s.record(Event {
            cat: "a",
            ..ev("e", 2)
        });
        s.record(ev("e", 3)); // evicts the "a" at ts=2
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.dropped_by_cat(), &[("a", 2), ("b", 1)]);
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut s = RingSink::new(0);
        assert!(!s.enabled());
        s.record(ev("e", 1));
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
        assert!(s.dropped_by_cat().is_empty());
    }

    #[test]
    fn trace_json_has_metadata_then_events() {
        let runs = vec![
            ("kdtree/baseline".to_string(), vec![ev("mshr_stall", 10)]),
            ("kdtree/alg1".to_string(), vec![]),
        ];
        let s = trace_json(&runs).render();
        assert!(s.starts_with(r#"{"traceEvents":["#));
        assert!(s.contains(r#""name":"process_name","ph":"M","pid":0"#));
        assert!(s.contains(r#""args":{"name":"kdtree/baseline"}"#));
        assert!(s.contains(
            r#""name":"mshr_stall","cat":"test","ph":"X","ts":10,"dur":1,"pid":0,"tid":0"#
        ));
        assert!(s.contains(r#""args":{"name":"kdtree/alg1"}"#));
        assert!(s.ends_with(r#""displayTimeUnit":"ns"}"#));
    }

    #[test]
    fn obs_level_constructors() {
        assert!(!ObsLevel::off().any());
        assert!(ObsLevel::metrics().metrics);
        assert_eq!(ObsLevel::with_trace(64).trace_capacity, 64);
        assert!(ObsLevel::with_trace(64).any());
        assert_eq!(ObsLevel::metrics().span_one_in, 0);
        assert_eq!(ObsLevel::with_spans(8).span_one_in, 8);
        assert_eq!(ObsLevel::with_spans(0).span_one_in, 1);
        assert!(ObsLevel::with_spans(8).any());
        assert!(ObsLevel::with_ledger().ledger);
        assert!(ObsLevel::with_ledger().any());
        assert!(!ObsLevel::metrics().ledger);
    }

    #[test]
    fn check_level_constructors() {
        assert!(!CheckLevel::off().any());
        assert!(CheckLevel::full().invariants);
        assert!(CheckLevel::full().any());
        assert_eq!(CheckLevel::default(), CheckLevel::off());
    }

    #[test]
    fn vec_sink_keeps_everything_in_order() {
        let mut s = VecSink::new();
        assert!(s.enabled());
        assert!(s.is_empty());
        for i in 0..10 {
            s.record(ev("e", i));
        }
        assert_eq!(s.len(), 10);
        let ts: Vec<Cycle> = s.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, (0..10).collect::<Vec<_>>());
        assert_eq!(s.into_events().len(), 10);
    }
}
