//! Causal span trees: per-request critical-path attribution.
//!
//! A [`SpanTrace`] is the full story of one sampled memory request: a
//! tree of labelled `[start, end)` intervals covering every segment of
//! the L1→NoC→L2→NoC→MC→DRAM path it actually took (plus the NDC
//! execution spans the engine adds for offloaded computes). The
//! structural contract — enforced by [`Span::partition_violation`] and
//! by `ndc-check`'s span-attribution invariant — is **exact
//! partitioning**: the children of every non-leaf span tile its
//! interval with no gap and no overlap, so summing any level of the
//! tree reproduces the root's end-to-end latency exactly. Time the
//! datapath cannot attribute to a component is never silently lost;
//! the recorder closes gaps with explicit residue leaves labelled
//! [`QUEUE`] or [`STALL`] via [`Span::fill_residue`].
//!
//! Sampling ([`SpanSampler`]) is a pure function of the request id and
//! a seed — never of thread, wall clock, or iteration order — so the
//! set of sampled requests (and therefore the rendered traces) is
//! byte-identical at any `NDC_THREADS`.

use ndc_types::{Cycle, SplitMix64};

/// Residue label for time spent waiting behind earlier traffic
/// (link queues, MC queues, DRAM bank contention).
pub const QUEUE: &str = "queue";
/// Residue label for time the request held a resource without
/// progressing (e.g. the core stalled on an in-flight line).
pub const STALL: &str = "stall";

/// One labelled interval in a span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Segment label. Instance suffixes go after a `:`; a numeric
    /// suffix (`link:14`) is stripped by [`decompose`], a symbolic one
    /// (`dram:hit`) is kept.
    pub label: String,
    pub start: Cycle,
    pub end: Cycle,
    pub children: Vec<Span>,
}

impl Span {
    pub fn new(label: impl Into<String>, start: Cycle, end: Cycle) -> Span {
        Span {
            label: label.into(),
            start,
            end,
            children: Vec::new(),
        }
    }

    /// Duration in cycles.
    pub fn dur(&self) -> Cycle {
        self.end - self.start
    }

    /// Append a child span (children must be pushed in time order).
    pub fn push(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Convenience: append a leaf child.
    pub fn leaf(&mut self, label: impl Into<String>, start: Cycle, end: Cycle) {
        self.push(Span::new(label, start, end));
    }

    /// Close every gap at this level with residue leaves labelled
    /// `residue`, so the children exactly partition `[start, end)`.
    /// Zero-length gaps produce no span. Does not recurse: each level
    /// chooses its own residue label (`queue` inside the NoC and MC,
    /// `stall` at the request root).
    pub fn fill_residue(&mut self, residue: &str) {
        if self.children.is_empty() {
            return;
        }
        let mut filled = Vec::with_capacity(self.children.len());
        let mut cursor = self.start;
        for child in self.children.drain(..) {
            if child.start > cursor {
                filled.push(Span::new(residue, cursor, child.start));
            }
            cursor = child.end;
            filled.push(child);
        }
        if cursor < self.end {
            filled.push(Span::new(residue, cursor, self.end));
        }
        self.children = filled;
    }

    /// Recursively verify the exact-partition contract. Returns a
    /// description of the first violation, or `None` if every non-leaf
    /// span's children tile its interval exactly.
    pub fn partition_violation(&self) -> Option<String> {
        if self.end < self.start {
            return Some(format!(
                "span '{}' ends before it starts: [{}, {})",
                self.label, self.start, self.end
            ));
        }
        if self.children.is_empty() {
            return None;
        }
        let mut cursor = self.start;
        for child in &self.children {
            if child.start != cursor {
                return Some(format!(
                    "child '{}' of '{}' starts at {} but the covered prefix ends at {}",
                    child.label, self.label, child.start, cursor
                ));
            }
            if let Some(v) = child.partition_violation() {
                return Some(v);
            }
            cursor = child.end;
        }
        if cursor != self.end {
            return Some(format!(
                "children of '{}' cover [{}, {}) but the span ends at {}",
                self.label, self.start, cursor, self.end
            ));
        }
        None
    }

    /// Visit every leaf of the tree, in time order.
    pub fn for_each_leaf(&self, f: &mut impl FnMut(&Span)) {
        if self.children.is_empty() {
            f(self);
        } else {
            for c in &self.children {
                c.for_each_leaf(f);
            }
        }
    }
}

/// The complete span tree of one sampled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTrace {
    /// Request id (issue order — identical at any thread count).
    pub id: u64,
    /// Issuing core (or NDC location index for offload spans).
    pub core: u32,
    /// Request address (0 for NDC execution spans).
    pub addr: u64,
    pub root: Span,
}

impl SpanTrace {
    /// End-to-end latency of the traced request.
    pub fn latency(&self) -> Cycle {
        self.root.dur()
    }
}

/// Deterministic request sampler: keep a request iff a SplitMix64 draw
/// keyed *only* by `(seed, id)` lands in the `1/one_in` acceptance
/// window. `one_in <= 1` keeps everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSampler {
    seed: u64,
    one_in: u32,
}

impl SpanSampler {
    pub fn new(seed: u64, one_in: u32) -> SpanSampler {
        SpanSampler { seed, one_in }
    }

    /// Should the request with this id be traced?
    pub fn keep(&self, id: u64) -> bool {
        if self.one_in <= 1 {
            return true;
        }
        let mut g = SplitMix64::new(self.seed ^ id.wrapping_mul(0xa076_1d64_78bd_642f));
        g.below(self.one_in as u64) == 0
    }

    /// The sampling rate (for reporting).
    pub fn one_in(&self) -> u32 {
        self.one_in.max(1)
    }
}

/// The segment a leaf label belongs to: the label with a trailing
/// *numeric* instance suffix stripped (`link:14` → `link`), symbolic
/// suffixes kept (`dram:hit` stays `dram:hit`).
pub fn segment_of(label: &str) -> &str {
    match label.rsplit_once(':') {
        Some((head, tail)) if tail.bytes().all(|b| b.is_ascii_digit()) && !tail.is_empty() => head,
        _ => label,
    }
}

/// Sum leaf durations across traces, grouped by [`segment_of`] the
/// leaf label. Output is sorted by segment name (deterministic).
pub fn decompose(traces: &[SpanTrace]) -> Vec<(String, Cycle)> {
    let mut by_seg = std::collections::BTreeMap::<String, Cycle>::new();
    for t in traces {
        t.root.for_each_leaf(&mut |leaf| {
            *by_seg
                .entry(segment_of(&leaf.label).to_string())
                .or_insert(0) += leaf.dur();
        });
    }
    by_seg.into_iter().collect()
}

/// Render one trace as an indented text tree (deterministic; used by
/// `ndc-eval explain` and the thread-count diff in verify.sh).
pub fn render_tree(trace: &SpanTrace) -> String {
    let mut out = format!(
        "req#{} core={} addr={:#x} latency={}\n",
        trace.id,
        trace.core,
        trace.addr,
        trace.latency()
    );
    render_span(&trace.root, 1, &mut out);
    out
}

fn render_span(span: &Span, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "{}{} [{}, {}) {}",
        "  ".repeat(depth),
        span.label,
        span.start,
        span.end,
        span.dur()
    );
    for c in &span.children {
        render_span(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(root: Span) -> SpanTrace {
        SpanTrace {
            id: 7,
            core: 2,
            addr: 0x40,
            root,
        }
    }

    #[test]
    fn fill_residue_tiles_the_parent_exactly() {
        let mut s = Span::new("req", 100, 160);
        s.leaf("l1", 100, 104);
        s.leaf("l2", 120, 130); // gap 104..120
        s.fill_residue(STALL); // and tail gap 130..160
        assert_eq!(s.partition_violation(), None);
        let labels: Vec<&str> = s.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["l1", STALL, "l2", STALL]);
        let total: Cycle = s.children.iter().map(Span::dur).sum();
        assert_eq!(total, s.dur());
    }

    #[test]
    fn fill_residue_is_a_noop_on_exact_children() {
        let mut s = Span::new("req", 0, 10);
        s.leaf("a", 0, 4);
        s.leaf("b", 4, 10);
        s.fill_residue(QUEUE);
        assert_eq!(s.children.len(), 2);
        assert_eq!(s.partition_violation(), None);
    }

    #[test]
    fn partition_violation_reports_gap_overlap_and_overhang() {
        let mut gap = Span::new("req", 0, 10);
        gap.leaf("a", 0, 3);
        gap.leaf("b", 5, 10);
        assert!(gap.partition_violation().unwrap().contains("starts at 5"));

        let mut short = Span::new("req", 0, 10);
        short.leaf("a", 0, 8);
        assert!(short.partition_violation().unwrap().contains("ends at 10"));

        let mut nested = Span::new("req", 0, 10);
        let mut mid = Span::new("noc", 0, 10);
        mid.leaf("link:0", 0, 4); // inner gap 4..10
        nested.push(mid);
        assert!(nested.partition_violation().is_some());
    }

    #[test]
    fn sampler_is_a_pure_function_of_id() {
        let s = SpanSampler::new(0xfeed, 8);
        let a: Vec<bool> = (0..256).map(|i| s.keep(i)).collect();
        let b: Vec<bool> = (0..256).map(|i| s.keep(i)).collect();
        assert_eq!(a, b);
        let kept = a.iter().filter(|&&k| k).count();
        // ~1/8 of 256 = 32; the seeded draw should land near it.
        assert!((8..=80).contains(&kept), "kept {kept} of 256");
        // one_in <= 1 keeps everything.
        assert!((0..64).all(|i| SpanSampler::new(1, 0).keep(i)));
        assert!((0..64).all(|i| SpanSampler::new(1, 1).keep(i)));
    }

    #[test]
    fn segments_strip_numeric_suffixes_only() {
        assert_eq!(segment_of("link:14"), "link");
        assert_eq!(segment_of("dram:hit"), "dram:hit");
        assert_eq!(segment_of("l1"), "l1");
        assert_eq!(segment_of("ndc:gather"), "ndc:gather");
        assert_eq!(segment_of("x:"), "x:");
    }

    #[test]
    fn decompose_sums_leaves_by_segment() {
        let mut root = Span::new("req", 0, 20);
        root.leaf("l1", 0, 4);
        let mut noc = Span::new("noc:req", 4, 16);
        noc.leaf("link:0", 4, 7);
        noc.leaf("link:5", 7, 12);
        noc.leaf(QUEUE, 12, 16);
        root.push(noc);
        root.leaf("l2", 16, 20);
        let d = decompose(&[trace(root)]);
        assert_eq!(
            d,
            vec![
                ("l1".to_string(), 4),
                ("l2".to_string(), 4),
                ("link".to_string(), 8),
                (QUEUE.to_string(), 4),
            ]
        );
        // Leaf segments account for the whole request.
        let total: Cycle = d.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn render_tree_is_indented_and_complete() {
        let mut root = Span::new("req", 0, 10);
        let mut noc = Span::new("noc:req", 0, 10);
        noc.leaf("link:3", 0, 10);
        root.push(noc);
        let text = render_tree(&trace(root));
        assert_eq!(
            text,
            "req#7 core=2 addr=0x40 latency=10\n  req [0, 10) 10\n    noc:req [0, 10) 10\n      link:3 [0, 10) 10\n"
        );
    }
}
