//! The tenant/request attribution ledger.
//!
//! Every simulated cycle, DRAM byte, NoC message/flit-hop, and NDC
//! gather/exec/feed cycle is charged to an owning tenant row at the
//! moment the simulated component pays it. Charging is pure
//! bookkeeping — it never reads or perturbs simulated timing — and all
//! row operations are commutative `u64` sums plus
//! [`QuantileSketch`](crate::sketch::QuantileSketch) merges, so
//! lane-local ledgers merged in canonical core order reproduce the
//! serial ledger byte-for-byte.
//!
//! The point of the ledger is that its column sums are *conserved*
//! quantities: `ndc-check` asserts they equal the simulator's global
//! counters (messages, flit-hops, DRAM requests × line bytes, NDC
//! offload/wait cycles) and that the per-location
//! gather + wait + exec + feed decomposition tiles each offload column
//! exactly. A mis-charge anywhere breaks a column sum and the
//! `ledger-conservation` invariant fires.

use crate::sketch::QuantileSketch;
use ndc_types::{Cycle, Json};

/// NDC location count (mirrors `ndc_types::NdcLocation`: link buffer,
/// cache controller, memory controller, memory bank).
pub const NUM_LOCATIONS: usize = 4;

/// Everything charged to one tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantRow {
    /// Memory requests completed (one per access path walked).
    pub requests: u64,
    /// Sum of request end-to-end latencies, in cycles.
    pub request_cycles: u64,
    /// NoC messages injected on behalf of this tenant.
    pub noc_messages: u64,
    /// Flit-hops: link occupancy cycles × links crossed, summed over
    /// every message.
    pub noc_flit_hops: u64,
    /// DRAM bytes moved (line-sized transfers).
    pub dram_bytes: u64,
    /// Issue→result-at-core cycles of performed NDC, per location.
    pub ndc_offload_cycles: [u64; NUM_LOCATIONS],
    /// First-operand wait at the component, per location.
    pub ndc_wait_cycles: [u64; NUM_LOCATIONS],
    /// Operand-gather leg (issue → first arrival), per location.
    pub ndc_gather_cycles: [u64; NUM_LOCATIONS],
    /// Execution at the component, per location.
    pub ndc_exec_cycles: [u64; NUM_LOCATIONS],
    /// CPU-feed leg (op done → result at core), per location.
    pub ndc_feed_cycles: [u64; NUM_LOCATIONS],
    /// Distribution of per-request end-to-end latencies.
    pub latency: QuantileSketch,
    /// Distribution of DRAM controller queue delays (requests that
    /// reached a memory controller).
    pub queue_delay: QuantileSketch,
    /// Distribution of per-offload issue→result cycles, per location.
    pub offload: [QuantileSketch; NUM_LOCATIONS],
}

impl TenantRow {
    fn new() -> TenantRow {
        TenantRow {
            latency: QuantileSketch::new(),
            queue_delay: QuantileSketch::new(),
            offload: std::array::from_fn(|_| QuantileSketch::new()),
            ..TenantRow::default()
        }
    }

    /// Fold another row into this one (commutative, associative).
    pub fn merge(&mut self, other: &TenantRow) {
        self.requests += other.requests;
        self.request_cycles += other.request_cycles;
        self.noc_messages += other.noc_messages;
        self.noc_flit_hops += other.noc_flit_hops;
        self.dram_bytes += other.dram_bytes;
        for i in 0..NUM_LOCATIONS {
            self.ndc_offload_cycles[i] += other.ndc_offload_cycles[i];
            self.ndc_wait_cycles[i] += other.ndc_wait_cycles[i];
            self.ndc_gather_cycles[i] += other.ndc_gather_cycles[i];
            self.ndc_exec_cycles[i] += other.ndc_exec_cycles[i];
            self.ndc_feed_cycles[i] += other.ndc_feed_cycles[i];
            self.offload[i].merge(&other.offload[i]);
        }
        self.latency.merge(&other.latency);
        self.queue_delay.merge(&other.queue_delay);
    }
}

/// Per-tenant attribution rows, indexed densely by tenant id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributionLedger {
    rows: Vec<TenantRow>,
}

impl AttributionLedger {
    /// A ledger with `num_tenants` zeroed rows (at least one — the
    /// default single-tenant world charges everything to tenant 0).
    pub fn new(num_tenants: usize) -> AttributionLedger {
        AttributionLedger {
            rows: (0..num_tenants.max(1)).map(|_| TenantRow::new()).collect(),
        }
    }

    pub fn num_tenants(&self) -> usize {
        self.rows.len()
    }

    pub fn rows(&self) -> &[TenantRow] {
        &self.rows
    }

    pub fn row(&self, tenant: u16) -> Option<&TenantRow> {
        self.rows.get(tenant as usize)
    }

    /// Mutable row access, growing the table if a new tenant appears.
    pub fn row_mut(&mut self, tenant: u16) -> &mut TenantRow {
        let i = tenant as usize;
        while self.rows.len() <= i {
            self.rows.push(TenantRow::new());
        }
        &mut self.rows[i]
    }

    /// Charge one completed memory request: its end-to-end latency and
    /// (when it reached a memory controller) its queue delay.
    pub fn charge_request(&mut self, tenant: u16, latency: Cycle, queue_delay: Option<Cycle>) {
        let row = self.row_mut(tenant);
        row.requests += 1;
        row.request_cycles += latency;
        row.latency.record(latency);
        if let Some(q) = queue_delay {
            row.queue_delay.record(q);
        }
    }

    /// Charge one NoC message and its flit-hops.
    pub fn charge_traverse(&mut self, tenant: u16, flit_hops: u64) {
        let row = self.row_mut(tenant);
        row.noc_messages += 1;
        row.noc_flit_hops += flit_hops;
    }

    /// Charge one DRAM transfer.
    pub fn charge_dram(&mut self, tenant: u16, bytes: u64) {
        self.row_mut(tenant).dram_bytes += bytes;
    }

    /// Charge one performed NDC offload, decomposed exactly the way the
    /// span layer tiles it: `gather + wait + exec + feed` covers
    /// `[issue, result_at_core)` with no residue, so the per-location
    /// components always sum to the offload column.
    #[allow(clippy::too_many_arguments)]
    pub fn charge_ndc(
        &mut self,
        tenant: u16,
        loc: usize,
        issue: Cycle,
        wait: Cycle,
        op_done: Cycle,
        exec_cycles: Cycle,
        result_at_core: Cycle,
    ) {
        let total = result_at_core.saturating_sub(issue);
        let feed = result_at_core.saturating_sub(op_done).min(total);
        let exec = exec_cycles.min(total - feed);
        let wait_part = wait.min(total - feed - exec);
        let gather = total - feed - exec - wait_part;
        let row = self.row_mut(tenant);
        row.ndc_offload_cycles[loc] += total;
        row.ndc_wait_cycles[loc] += wait_part;
        row.ndc_gather_cycles[loc] += gather;
        row.ndc_exec_cycles[loc] += exec;
        row.ndc_feed_cycles[loc] += feed;
        row.offload[loc].record(total);
    }

    /// Fold another ledger into this one, row by row (commutative).
    pub fn merge(&mut self, other: &AttributionLedger) {
        for (t, row) in other.rows.iter().enumerate() {
            self.row_mut(t as u16).merge(row);
        }
    }

    /// Render as a JSON array of per-tenant rows, in tenant order.
    pub fn to_json(&self) -> Json {
        let arr =
            |xs: &[u64; NUM_LOCATIONS]| Json::Arr(xs.iter().map(|&x| Json::UInt(x)).collect());
        Json::Arr(
            self.rows
                .iter()
                .enumerate()
                .map(|(t, r)| {
                    Json::obj()
                        .with("tenant", t as u64)
                        .with("requests", r.requests)
                        .with("request_cycles", r.request_cycles)
                        .with("noc_messages", r.noc_messages)
                        .with("noc_flit_hops", r.noc_flit_hops)
                        .with("dram_bytes", r.dram_bytes)
                        .with("ndc_offload_cycles", arr(&r.ndc_offload_cycles))
                        .with("ndc_wait_cycles", arr(&r.ndc_wait_cycles))
                        .with("ndc_gather_cycles", arr(&r.ndc_gather_cycles))
                        .with("ndc_exec_cycles", arr(&r.ndc_exec_cycles))
                        .with("ndc_feed_cycles", arr(&r.ndc_feed_cycles))
                        .with("latency", r.latency.to_json())
                        .with("dram_queue_delay", r.queue_delay.to_json())
                        .with(
                            "offload",
                            Json::Arr(r.offload.iter().map(|s| s.to_json()).collect()),
                        )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_tenant() {
        let mut l = AttributionLedger::new(2);
        l.charge_request(0, 100, Some(7));
        l.charge_request(1, 50, None);
        l.charge_traverse(0, 12);
        l.charge_dram(1, 64);
        assert_eq!(l.rows()[0].requests, 1);
        assert_eq!(l.rows()[0].request_cycles, 100);
        assert_eq!(l.rows()[0].noc_messages, 1);
        assert_eq!(l.rows()[0].noc_flit_hops, 12);
        assert_eq!(l.rows()[1].dram_bytes, 64);
        assert_eq!(l.rows()[0].queue_delay.count(), 1);
        assert_eq!(l.rows()[1].queue_delay.count(), 0);
    }

    #[test]
    fn ndc_decomposition_tiles_offload_exactly() {
        let mut l = AttributionLedger::new(1);
        // issue 100, first arrival 130, wait to 150, exec to 152,
        // feed to 170.
        l.charge_ndc(0, 2, 100, 20, 152, 2, 170);
        let r = &l.rows()[0];
        assert_eq!(r.ndc_offload_cycles[2], 70);
        assert_eq!(r.ndc_gather_cycles[2], 30);
        assert_eq!(r.ndc_wait_cycles[2], 20);
        assert_eq!(r.ndc_exec_cycles[2], 2);
        assert_eq!(r.ndc_feed_cycles[2], 18);
        assert_eq!(
            r.ndc_gather_cycles[2]
                + r.ndc_wait_cycles[2]
                + r.ndc_exec_cycles[2]
                + r.ndc_feed_cycles[2],
            r.ndc_offload_cycles[2]
        );
        assert_eq!(r.offload[2].count(), 1);
    }

    #[test]
    fn merge_is_commutative_and_grows_rows() {
        let mut a = AttributionLedger::new(1);
        a.charge_request(0, 10, None);
        let mut b = AttributionLedger::new(3);
        b.charge_request(2, 30, Some(4));
        b.charge_traverse(0, 5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.num_tenants(), 3);
        assert_eq!(ab.rows()[0].requests, 1);
        assert_eq!(ab.rows()[2].request_cycles, 30);
    }

    #[test]
    fn json_rows_in_tenant_order() {
        let mut l = AttributionLedger::new(2);
        l.charge_request(1, 5, None);
        let s = l.to_json().render();
        assert!(s.starts_with(r#"[{"tenant":0,"#), "{s}");
        assert!(s.contains(r#"{"tenant":1,"requests":1"#), "{s}");
    }
}
