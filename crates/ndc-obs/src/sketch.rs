//! Deterministic mergeable quantile sketches over integer cycle counts.
//!
//! A [`QuantileSketch`] is a DDSketch-style log-bucketed histogram:
//! values land in buckets addressed by `(octave, sub)` where `octave =
//! floor(log2 v)` and each octave is split into [`SUB_BUCKETS`] linear
//! sub-buckets. Bucketing, merging, and quantile extraction are pure
//! integer arithmetic — no floats anywhere — so results are
//! byte-identical on every host, at every thread count, and under any
//! grouping of merges (bucket counts are `u64` sums; min/max/sum/count
//! fold commutatively and associatively).
//!
//! The bucket representative is the integer midpoint of the bucket, so
//! an interior quantile estimate is within `1/(2·SUB_BUCKETS)` relative
//! error of some value actually recorded at that rank (values below
//! `SUB_BUCKETS` get exact single-value buckets). Memory is
//! O(touched buckets), at most `64 · SUB_BUCKETS` slots — replacing
//! full-sample retention so million-request runs stay O(buckets).

use ndc_types::Json;

/// Sub-buckets per power-of-two octave. Relative quantile error is
/// bounded by `1 / SUB_BUCKETS` (midpoint representatives halve it).
pub const SUB_BUCKETS: u64 = 16;
const SUB_LOG2: u32 = 4;

/// A deterministic, mergeable log-bucketed quantile sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    count: u64,
    sum: u64,
    /// Exact extremes (`min` is meaningful only when `count > 0`).
    min: u64,
    max: u64,
    /// Zero is below every octave; it gets its own exact bucket.
    zeros: u64,
    /// Dense bucket counts, grown to the highest touched index.
    buckets: Vec<u64>,
}

/// Bucket index for `v >= 1`.
fn bucket_index(v: u64) -> usize {
    let octave = 63 - v.leading_zeros();
    let base = 1u64 << octave;
    // Linear position of v inside [2^o, 2^(o+1)), scaled to SUB_BUCKETS
    // slots. Wide in u128: `(v - base) << SUB_LOG2` can overflow u64
    // for octaves >= 60.
    let sub = ((((v - base) as u128) << SUB_LOG2) >> octave) as usize;
    octave as usize * SUB_BUCKETS as usize + sub
}

/// Integer midpoint of bucket `index` — the quantile representative.
fn representative(index: usize) -> u64 {
    let octave = (index as u64) / SUB_BUCKETS;
    let sub = (index as u64) % SUB_BUCKETS;
    let base = 1u128 << octave;
    let lo = base + ((sub as u128) << octave >> SUB_LOG2);
    let hi = base + (((sub + 1) as u128) << octave >> SUB_LOG2);
    let mid = lo + (hi - lo) / 2;
    mid.min(u64::MAX as u128) as u64
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            min: u64::MAX,
            ..QuantileSketch::default()
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0 {
            self.zeros += 1;
        } else {
            let i = bucket_index(v);
            if i >= self.buckets.len() {
                self.buckets.resize(i + 1, 0);
            }
            self.buckets[i] += 1;
        }
    }

    /// Fold another sketch into this one. Exactly commutative and
    /// associative: any merge tree over the same records yields the
    /// same sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zeros += other.zeros;
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (floor), or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at percentile `pct` (0..=100): the bucket midpoint at
    /// rank `ceil(pct/100 · count)`, clamped to the exact `[min, max]`
    /// envelope. `pct = 0` returns the exact minimum, `pct >= 100` the
    /// exact maximum. `None` when the sketch is empty.
    pub fn quantile_pct(&self, pct: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if pct == 0 {
            return Some(self.min);
        }
        if pct >= 100 {
            return Some(self.max);
        }
        let rank = ((pct as u128 * self.count as u128).div_ceil(100) as u64).max(1);
        let mut cum = self.zeros;
        if rank <= cum {
            return Some(0);
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if rank <= cum {
                return Some(representative(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Render the standard summary row: count, exact min/max and sum,
    /// and the p50/p90/p99 bucket-midpoint estimates (0 when empty).
    pub fn to_json(&self) -> Json {
        let q = |p| self.quantile_pct(p).unwrap_or(0);
        Json::obj()
            .with("count", self.count)
            .with("min", self.min().unwrap_or(0))
            .with("p50", q(50))
            .with("p90", q(90))
            .with("p99", q(99))
            .with("max", self.max().unwrap_or(0))
            .with("sum", self.sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_pct(50), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 2, 3, 5, 7, 11, 15] {
            s.record(v);
        }
        // Below SUB_BUCKETS every value has its own bucket.
        assert_eq!(s.quantile_pct(0), Some(0));
        assert_eq!(s.quantile_pct(100), Some(15));
        assert_eq!(s.quantile_pct(50), Some(3));
        assert_eq!(s.sum(), 44);
    }

    #[test]
    fn relative_error_bound_holds() {
        // A deterministic spread over five decades.
        let mut vals = Vec::new();
        let mut v = 1u64;
        while v < 10_000_000 {
            vals.push(v);
            v = v * 17 / 16 + 1;
        }
        let mut s = QuantileSketch::new();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_unstable();
        for pct in [1u64, 10, 25, 50, 75, 90, 99] {
            let rank = ((pct as u128 * vals.len() as u128).div_ceil(100) as usize).max(1);
            let exact = vals[rank - 1];
            let est = s.quantile_pct(pct).unwrap();
            let bound = exact / SUB_BUCKETS + 1;
            assert!(
                est.abs_diff(exact) <= bound,
                "p{pct}: est {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn merge_equals_single_sketch() {
        let vals: Vec<u64> = (0..1000).map(|i| i * i % 7919 + i).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(ab.to_json().render(), whole.to_json().render());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = QuantileSketch::new();
        for v in [3u64, 99, 4096] {
            s.record(v);
        }
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut e = QuantileSketch::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut s = QuantileSketch::new();
        s.record(u64::MAX);
        s.record(u64::MAX - 1);
        assert_eq!(s.count(), 2);
        assert_eq!(s.quantile_pct(100), Some(u64::MAX));
        // Clamped to the exact [min, max] envelope even in the top bucket.
        assert!(s.quantile_pct(50).unwrap() >= u64::MAX - 1);
    }

    #[test]
    fn json_summary_shape() {
        let mut s = QuantileSketch::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        let j = s.to_json().render();
        assert!(j.starts_with(r#"{"count":100,"min":1,"#), "{j}");
        assert!(j.contains(r#""max":100"#), "{j}");
    }
}
