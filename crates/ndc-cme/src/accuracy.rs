//! Table 2: estimation accuracy of the CME predictor against the
//! simulator's measured per-reference hit/miss behaviour.
//!
//! Accuracy is the access-weighted agreement between predicted and
//! observed miss rates: a reference with predicted rate `p` and
//! observed rate `q` over `n` accesses correctly classifies
//! `n · (1 − |p − q|)` of them. Coherence misses, which the estimator
//! does not model, appear in `q` but never in `p` — they are the main
//! source of disagreement, exactly as the paper reports.

use crate::predict::{CmeAnalysis, RefKey};
use ndc_types::FxHashMap;
use ndc_types::Pc;

/// The simulator-side per-reference counters the accuracy comparison
/// consumes: `(pc, slot) → (hits, misses)`.
pub type SimCounters = FxHashMap<(Pc, u8), (u64, u64)>;

/// Per-benchmark accuracy numbers (one Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Percent of L1 accesses whose behaviour the estimator predicted.
    pub l1_accuracy_pct: f64,
    /// Same for L2 (over accesses that reached L2).
    pub l2_accuracy_pct: f64,
    /// Dynamic accesses compared.
    pub l1_accesses: u64,
    pub l2_accesses: u64,
}

/// Compare CME predictions against simulator counters.
///
/// `pc_of_key` maps a reference to its simulator PC (the lowering's
/// numbering); references the simulator never executed (e.g. fully
/// out-of-bounds halo slots) are skipped.
pub fn accuracy_against_sim(
    analysis: &CmeAnalysis,
    l1_counters: &SimCounters,
    l2_counters: &SimCounters,
    pc_of_key: impl Fn(&RefKey) -> Pc,
) -> AccuracyReport {
    let mut l1_weighted = 0.0;
    let mut l1_total = 0u64;
    let mut l2_weighted = 0.0;
    let mut l2_total = 0u64;

    for (key, pred) in &analysis.predictions {
        let pc = pc_of_key(key);
        if let Some(&(hits, misses)) = l1_counters.get(&(pc, key.slot)) {
            let n = hits + misses;
            if n > 0 {
                let q = misses as f64 / n as f64;
                let agree = 1.0 - (pred.l1_miss_rate - q).abs();
                l1_weighted += agree * n as f64;
                l1_total += n;
            }
        }
        if let Some(&(hits, misses)) = l2_counters.get(&(pc, key.slot)) {
            let n = hits + misses;
            if n > 0 {
                let q = misses as f64 / n as f64;
                let agree = 1.0 - (pred.l2_miss_rate - q).abs();
                l2_weighted += agree * n as f64;
                l2_total += n;
            }
        }
    }

    AccuracyReport {
        l1_accuracy_pct: if l1_total == 0 {
            0.0
        } else {
            100.0 * l1_weighted / l1_total as f64
        },
        l2_accuracy_pct: if l2_total == 0 {
            0.0
        } else {
            100.0 * l2_weighted / l2_total as f64
        },
        l1_accesses: l1_total,
        l2_accesses: l2_total,
    }
}

/// Predicted-vs-measured offload latency for one NDC location —
/// the `ndc-eval explain` cross-check of the compiler's offload cost
/// model against the simulator's issue→result-at-core measurements.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OffloadAccuracy {
    /// Plan-weighted mean predicted cycles (0 when nothing targeted
    /// this location).
    pub predicted_cycles: f64,
    /// Measured mean cycles over performed offloads (0 when none).
    pub measured_cycles: f64,
    /// Offloads measured.
    pub samples: u64,
}

impl OffloadAccuracy {
    /// Relative error in percent (`100·|pred − meas| / meas`), or
    /// `None` when either side has no data to compare.
    pub fn error_pct(&self) -> Option<f64> {
        if self.samples == 0 || self.measured_cycles <= 0.0 || self.predicted_cycles <= 0.0 {
            None
        } else {
            Some(
                100.0 * (self.predicted_cycles - self.measured_cycles).abs() / self.measured_cycles,
            )
        }
    }
}

/// Per-benchmark predicted-vs-measured offload latency, per NDC
/// location (indexed by `NdcLocation::index()`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OffloadAccuracyReport {
    pub per_location: [OffloadAccuracy; 4],
}

/// Join the compiler's per-location predictions with the simulator's
/// measurements. `predicted` is the plan-weighted mean predicted
/// cycles per location; `measured_cycles`/`measured_samples` are the
/// `SimResult` offload totals.
pub fn offload_accuracy(
    predicted: [f64; 4],
    measured_cycles: [u64; 4],
    measured_samples: [u64; 4],
) -> OffloadAccuracyReport {
    let mut report = OffloadAccuracyReport::default();
    for i in 0..4 {
        let n = measured_samples[i];
        report.per_location[i] = OffloadAccuracy {
            predicted_cycles: predicted[i],
            measured_cycles: if n == 0 {
                0.0
            } else {
                measured_cycles[i] as f64 / n as f64
            },
            samples: n,
        };
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::MissPrediction;
    use crate::reuse::ReuseKind;

    fn analysis_with(rate_l1: f64, rate_l2: f64) -> (CmeAnalysis, RefKey) {
        let key = RefKey {
            nest_pos: 0,
            stmt_pos: 0,
            slot: 0,
        };
        let mut a = CmeAnalysis::default();
        a.predictions.insert(
            key,
            MissPrediction {
                l1_miss_rate: rate_l1,
                l2_miss_rate: rate_l2,
                reuse: ReuseKind::None,
            },
        );
        (a, key)
    }

    #[test]
    fn offload_accuracy_join_and_error() {
        let r = offload_accuracy([110.0, 0.0, 95.0, 0.0], [1000, 0, 0, 500], [10, 0, 0, 0]);
        let cc = r.per_location[0];
        assert!((cc.measured_cycles - 100.0).abs() < 1e-12);
        assert!((cc.error_pct().unwrap() - 10.0).abs() < 1e-9);
        // Predicted but never performed: no error claimable.
        assert_eq!(r.per_location[2].error_pct(), None);
        // No prediction and no samples.
        assert_eq!(r.per_location[1].error_pct(), None);
        // Cycles without samples are ignored.
        assert_eq!(r.per_location[3].samples, 0);
        assert_eq!(r.per_location[3].error_pct(), None);
    }

    #[test]
    fn perfect_prediction_is_100_percent() {
        let (a, _) = analysis_with(0.25, 0.5);
        let mut l1 = SimCounters::default();
        l1.insert((16, 0), (75, 25)); // observed 25% misses
        let mut l2 = SimCounters::default();
        l2.insert((16, 0), (10, 10)); // observed 50%
        let rep = accuracy_against_sim(&a, &l1, &l2, |_| 16);
        assert!((rep.l1_accuracy_pct - 100.0).abs() < 1e-9);
        assert!((rep.l2_accuracy_pct - 100.0).abs() < 1e-9);
        assert_eq!(rep.l1_accesses, 100);
        assert_eq!(rep.l2_accesses, 20);
    }

    #[test]
    fn coherence_misses_erode_accuracy() {
        // Predict 10% misses; coherence pushes observed to 40%.
        let (a, _) = analysis_with(0.1, 0.1);
        let mut l1 = SimCounters::default();
        l1.insert((16, 0), (60, 40));
        let rep = accuracy_against_sim(&a, &l1, &SimCounters::default(), |_| 16);
        assert!((rep.l1_accuracy_pct - 70.0).abs() < 1e-9);
    }

    #[test]
    fn unexecuted_references_are_skipped() {
        let (a, _) = analysis_with(0.5, 0.5);
        let rep =
            accuracy_against_sim(&a, &SimCounters::default(), &SimCounters::default(), |_| 16);
        assert_eq!(rep.l1_accesses, 0);
        assert_eq!(rep.l1_accuracy_pct, 0.0);
    }

    #[test]
    fn weighting_by_access_count() {
        let key2 = RefKey {
            nest_pos: 0,
            stmt_pos: 1,
            slot: 0,
        };
        let (mut a, _) = analysis_with(0.0, 0.0);
        a.predictions.insert(
            key2,
            MissPrediction {
                l1_miss_rate: 1.0,
                l2_miss_rate: 1.0,
                reuse: ReuseKind::None,
            },
        );
        let mut l1 = SimCounters::default();
        // Ref 1 (predict 0.0): observed 0% over 900 accesses — perfect.
        l1.insert((16, 0), (900, 0));
        // Ref 2 (predict 1.0): observed 0% over 100 accesses — fully
        // wrong.
        l1.insert((32, 0), (100, 0));
        let rep = accuracy_against_sim(&a, &l1, &SimCounters::default(), |k| {
            if k.stmt_pos == 0 {
                16
            } else {
                32
            }
        });
        // 900 perfect + 100 wrong = 90%.
        assert!((rep.l1_accuracy_pct - 90.0).abs() < 1e-9);
    }
}
