//! Cache Miss Equations (CME) — the static cache-behaviour estimator
//! the NDC compiler conditions on (§5.2, a variant of Ghosh, Martonosi
//! & Malik's framework).
//!
//! The estimator is built on compiler reuse analysis: for every array
//! reference it derives reuse vectors (self-spatial, self-temporal and
//! group-temporal, by solving the linear Diophantine systems
//! `F·d = Δf`), converts reuse distances into cache footprints, and
//! classifies the reference's expected *cold*, *capacity* and
//! *conflict* behaviour in both L1 and L2.
//!
//! Faithful to the paper, the estimator **does not model coherence
//! misses** — cross-thread invalidations are invisible to the static
//! analysis. That blind spot is what caps the Table 2 accuracies
//! (≈81% L1 / ≈73% L2 on average in the paper), and our accuracy
//! comparison ([`accuracy`]) measures the same effect against the
//! simulator's per-reference counters, which *do* include coherence
//! misses.

pub mod accuracy;
pub mod bottleneck;
pub mod predict;
pub mod reuse;

pub use accuracy::{
    accuracy_against_sim, offload_accuracy, AccuracyReport, OffloadAccuracy, OffloadAccuracyReport,
};
pub use bottleneck::{classify, BottleneckClass, BottleneckCounters};
pub use predict::{analyze, CmeAnalysis, MissPrediction, RefKey};
pub use reuse::{innermost_stride, ReuseInfo, ReuseKind};
