//! The prediction half of the Cache Miss Equations: classify each
//! reference's expected miss rates in L1 and L2 from its reuse, the
//! nest's footprint, and set-mapping conflicts.

use crate::reuse::{analyze_reuse, ReuseInfo, ReuseKind};
use ndc_ir::program::{LoopNest, Program};
use ndc_types::FxHashMap;
use ndc_types::{ArchConfig, Pc};

/// Identity of one static reference: nest position, statement position
/// within the nest body, and operand slot (0 = `a`, 1 = `b`, 2 = store
/// target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefKey {
    pub nest_pos: usize,
    pub stmt_pos: usize,
    pub slot: u8,
}

impl RefKey {
    /// The simulator PC carrying this reference's accesses (see
    /// `ndc_ir::lower::pc_of`; all three slots share the MAIN role's
    /// PC except copy-statement stores).
    pub fn pc(&self, is_copy_store: bool) -> Pc {
        let role = if is_copy_store {
            ndc_ir::ROLE_STORE
        } else {
            ndc_ir::ROLE_MAIN
        };
        ndc_ir::pc_of(self.nest_pos, self.stmt_pos, role)
    }
}

/// Predicted miss rates for one reference.
#[derive(Debug, Clone, PartialEq)]
pub struct MissPrediction {
    /// Expected L1 miss rate over this reference's dynamic accesses.
    pub l1_miss_rate: f64,
    /// Expected L2 miss rate over the accesses that reach L2 (i.e., of
    /// the predicted L1 misses).
    pub l2_miss_rate: f64,
    /// The reuse classification that produced the prediction.
    pub reuse: ReuseKind,
}

/// Whole-program CME output.
#[derive(Debug, Clone, Default)]
pub struct CmeAnalysis {
    pub predictions: FxHashMap<RefKey, MissPrediction>,
}

impl CmeAnalysis {
    pub fn get(&self, key: &RefKey) -> Option<&MissPrediction> {
        self.predictions.get(key)
    }

    /// Predicted probability that this reference L1-misses (the NDC
    /// algorithms' precondition: both operands must miss L1 to meet at
    /// the L2 bank, §5.2.1 challenge 1).
    pub fn l1_miss_probability(&self, key: &RefKey) -> f64 {
        self.predictions
            .get(key)
            .map(|p| p.l1_miss_rate)
            .unwrap_or(1.0)
    }
}

/// Run the estimator over a program for a machine configuration.
///
/// `cores` is the thread count the parallel dimension is split over
/// (per-thread iteration extents drive reuse-window footprints).
pub fn analyze(prog: &Program, cfg: &ArchConfig, cores: usize) -> CmeAnalysis {
    let mut out = CmeAnalysis::default();
    for (nest_pos, nest) in prog.nests.iter().enumerate() {
        analyze_nest(prog, cfg, cores, nest_pos, nest, &mut out);
    }
    out
}

fn analyze_nest(
    prog: &Program,
    cfg: &ArchConfig,
    cores: usize,
    nest_pos: usize,
    nest: &LoopNest,
    out: &mut CmeAnalysis,
) {
    let l1_line = cfg.l1.line_bytes;
    let l2_line = cfg.l2.line_bytes;
    // Per-thread iteration extents (block partitioning of the parallel
    // level).
    let mut extents: Vec<i64> = nest
        .lo
        .iter()
        .zip(nest.hi.iter())
        .map(|(l, h)| h - l)
        .collect();
    if let Some(level) = nest.parallel_level {
        extents[level] = (extents[level] + cores as i64 - 1) / cores.max(1) as i64;
    }

    // Gather reuse for every reference first (group analysis needs the
    // full set).
    let mut infos: Vec<(RefKey, ReuseInfo)> = Vec::new();
    for (stmt_pos, stmt) in nest.body.iter().enumerate() {
        for (slot, (aref, _w)) in stmt.array_refs().iter().enumerate() {
            let info = analyze_reuse(prog, nest, stmt_pos, slot as u8, aref, l1_line);
            infos.push((
                RefKey {
                    nest_pos,
                    stmt_pos,
                    slot: slot as u8,
                },
                info,
            ));
        }
    }

    // Streaming footprint per innermost iteration: new bytes brought in
    // by all references (capped at a line each).
    let bytes_per_iter: i64 = infos
        .iter()
        .map(|(_, i)| i.stride_bytes.unsigned_abs().min(l1_line) as i64)
        .sum::<i64>()
        .max(1);

    // Conflict analysis: persistent set conflicts occur between two
    // same-stride streams whose base line addresses collide modulo the
    // set count (the CME congruence `(addr1 - addr2)/line ≡ 0 (mod
    // sets)`). Count streams per L1 set at the nest origin.
    let l1_sets = cfg.l1.sets() as i64;
    let mut set_population: FxHashMap<i64, u32> = FxHashMap::default();
    for stmt in &nest.body {
        for (aref, _w) in stmt.array_refs() {
            if let Some(addr) = prog.addr_of(aref, &nest.lo) {
                let set = (addr / l1_line) as i64 % l1_sets;
                *set_population.entry(set).or_insert(0) += 1;
            }
        }
    }

    for (key, info) in infos {
        let stmt = &nest.body[key.stmt_pos];
        let aref = match key.slot {
            0 => stmt.a.as_array().cloned(),
            1 => stmt.b.as_ref().and_then(|b| b.as_array()).cloned(),
            _ => Some(stmt.dst.clone()),
        };
        let Some(aref) = aref else { continue };

        // --- L1 cold/spatial rate ---
        let spatial_rate = |line: u64| -> f64 {
            let s = info.stride_bytes.unsigned_abs();
            if s == 0 {
                0.0
            } else {
                (s as f64 / line as f64).min(1.0)
            }
        };

        let mut l1_miss = match &info.kind {
            ReuseKind::SelfTemporalInnermost => {
                // One miss per outer-iteration change of address; nearly
                // always hits.
                0.02
            }
            ReuseKind::SelfTemporal { distance } | ReuseKind::GroupTemporal { distance, .. } => {
                // Reuse window: iterations between reuse × bytes per
                // iteration.
                let iters = distance_iterations(distance, &extents);
                let window_bytes = iters.saturating_mul(bytes_per_iter as u64);
                if window_bytes <= cfg.l1.size_bytes {
                    // The leader pays the cold misses; the follower
                    // hits.
                    if matches!(info.kind, ReuseKind::GroupTemporal { .. }) {
                        0.02
                    } else {
                        spatial_rate(l1_line) * 0.1
                    }
                } else {
                    // Capacity miss: reuse distance exceeds the cache.
                    spatial_rate(l1_line).max(0.02)
                }
            }
            ReuseKind::SelfSpatial { .. } => spatial_rate(l1_line),
            ReuseKind::None => 1.0,
        };

        // Conflict adjustment: if more equal-stride streams map to this
        // reference's set than the associativity, thrashing defeats the
        // reuse.
        if let Some(addr) = prog.addr_of(&aref, &nest.lo) {
            let set = (addr / l1_line) as i64 % l1_sets;
            let pop = set_population.get(&set).copied().unwrap_or(0);
            if pop > cfg.l1.ways {
                let over = (pop - cfg.l1.ways) as f64 / pop as f64;
                l1_miss = (l1_miss + over * spatial_rate(l1_line).max(0.25)).min(1.0);
            }
        }

        // --- L2 ---
        // Accesses reaching L2 are the L1 misses, spaced
        // max(stride, L1 line) bytes apart; consecutive ones fall into
        // the same (4x larger) L2 line, so the cold L2 miss rate of the
        // stream is that spacing over the L2 line size. The aggregate
        // L2 capacity is the per-bank size times the bank count (static
        // NUCA); working sets that fit stay resident across the
        // application's solver timesteps, so only the first sweep pays
        // cold misses.
        let l2_total = cfg.l2.size_bytes * cfg.nodes() as u64;
        let array_bytes = prog.array(aref.array).size_bytes();
        let l2_miss = match &info.kind {
            ReuseKind::SelfTemporalInnermost => 0.05,
            _ => {
                let spacing = info.stride_bytes.unsigned_abs().max(l1_line) as f64;
                let cold = (spacing / l2_line as f64).min(1.0);
                if array_bytes <= l2_total / 4 {
                    // Resident after the first sweep: later timesteps
                    // hit.
                    cold * 0.35
                } else {
                    cold
                }
            }
        };

        out.predictions.insert(
            key,
            MissPrediction {
                l1_miss_rate: l1_miss.clamp(0.0, 1.0),
                l2_miss_rate: l2_miss.clamp(0.0, 1.0),
                reuse: info.kind,
            },
        );
    }
}

/// Number of innermost iterations spanned by a reuse distance vector,
/// given per-thread loop extents (row-major weighting).
fn distance_iterations(d: &[i64], extents: &[i64]) -> u64 {
    let mut weight: i64 = 1;
    let mut total: i64 = 0;
    for (k, &dk) in d.iter().enumerate().rev() {
        total += dk * weight;
        weight = weight.saturating_mul(extents[k].max(1));
    }
    total.unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::program::{ArrayDecl, ArrayRef, Program, Ref, Stmt};
    use ndc_types::Op;

    fn cfg() -> ArchConfig {
        ArchConfig::paper_default()
    }

    /// Z[i] = X[i] + Y[i]: pure streaming, unit stride. Array sizes
    /// are padded (4608 elements = 36 KB) so the three bases land in
    /// different L1 sets — no conflict component.
    fn streaming() -> Program {
        let mut p = Program::new("stream");
        let x = p.add_array(ArrayDecl::new("X", vec![4608], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![4608], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![4608], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        p.nests.push(LoopNest::new(0, vec![0], vec![4608], vec![s]));
        p.assign_layout(0, 4096);
        p
    }

    /// Set-aligned streams in a 2-way L1 thrash: the conflict term must
    /// raise the prediction above the pure spatial rate.
    #[test]
    fn aligned_streams_predicted_to_conflict() {
        let mut p = Program::new("conflict");
        // 32 KB arrays aligned to 4 KB: all bases map to L1 set 0.
        let x = p.add_array(ArrayDecl::new("X", vec![4096], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![4096], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![4096], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        p.nests.push(LoopNest::new(0, vec![0], vec![4096], vec![s]));
        p.assign_layout(0, 4096);
        let a = analyze(&p, &cfg(), 25);
        let pred = a
            .get(&RefKey {
                nest_pos: 0,
                stmt_pos: 0,
                slot: 0,
            })
            .unwrap();
        assert!(
            pred.l1_miss_rate > 0.125 + 1e-9,
            "conflict term missing: {pred:?}"
        );
    }

    #[test]
    fn streaming_predicts_line_rate_misses() {
        let p = streaming();
        let a = analyze(&p, &cfg(), 25);
        let key = RefKey {
            nest_pos: 0,
            stmt_pos: 0,
            slot: 0,
        };
        let pred = a.get(&key).unwrap();
        // 8-byte stride on 64-byte lines: 1/8 misses.
        assert!((pred.l1_miss_rate - 0.125).abs() < 1e-9);
        // L1->L2 line collapse: 64/256 with fits-in-L2 discount.
        assert!(pred.l2_miss_rate > 0.0 && pred.l2_miss_rate < 0.5);
    }

    /// A small stencil with group reuse that fits in L1.
    #[test]
    fn stencil_follower_predicted_to_hit() {
        let mut p = Program::new("stencil");
        let x = p.add_array(ArrayDecl::new("X", vec![256], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![256], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(y, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![-1])),
            1,
        );
        p.nests.push(LoopNest::new(0, vec![1], vec![256], vec![s]));
        p.assign_layout(0, 4096);
        let a = analyze(&p, &cfg(), 1);
        let follower = a
            .get(&RefKey {
                nest_pos: 0,
                stmt_pos: 0,
                slot: 1,
            })
            .unwrap();
        // X[i-1] re-reads X[i]'s element one iteration later: hits.
        assert!(follower.l1_miss_rate < 0.1, "got {follower:?}");
        assert!(matches!(follower.reuse, ReuseKind::GroupTemporal { .. }));
    }

    /// Reuse across a huge outer span: capacity miss predicted.
    #[test]
    fn far_reuse_predicted_to_capacity_miss() {
        let mut p = Program::new("far");
        let x = p.add_array(ArrayDecl::new("X", vec![64, 2048], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![64, 2048], 8));
        // Y[i][j] = X[i][j] + X[i-1][j]: reuse distance (1,0) = one full
        // row = 2048*8 = 16 KB per ref per row -> window exceeds 32 KB
        // L1 with three streams.
        let s = Stmt::binary(
            0,
            ArrayRef::identity(y, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 0])),
            1,
        );
        let mut nest = LoopNest::new(0, vec![1, 0], vec![64, 2048], vec![s]);
        nest.parallel_level = None;
        p.nests.push(nest);
        p.assign_layout(0, 4096);
        let a = analyze(&p, &cfg(), 1);
        let follower = a
            .get(&RefKey {
                nest_pos: 0,
                stmt_pos: 0,
                slot: 1,
            })
            .unwrap();
        assert!(
            follower.l1_miss_rate > 0.1,
            "expected capacity misses, got {follower:?}"
        );
    }

    #[test]
    fn parallel_split_shrinks_reuse_window() {
        // Same as above but split over 25 cores: per-thread rows are
        // narrow... the reuse distance spans a full row regardless, so
        // the prediction is unchanged; this pins the extents plumbing.
        let mut p = Program::new("far_par");
        let x = p.add_array(ArrayDecl::new("X", vec![64, 2048], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![64, 2048], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(y, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 0])),
            1,
        );
        p.nests
            .push(LoopNest::new(0, vec![1, 0], vec![64, 2048], vec![s]));
        p.assign_layout(0, 4096);
        let a = analyze(&p, &cfg(), 25);
        assert_eq!(a.predictions.len(), 3);
    }

    #[test]
    fn every_reference_gets_a_prediction() {
        let p = streaming();
        let a = analyze(&p, &cfg(), 25);
        // Three references: X, Y reads + Z write.
        assert_eq!(a.predictions.len(), 3);
        for pred in a.predictions.values() {
            assert!((0.0..=1.0).contains(&pred.l1_miss_rate));
            assert!((0.0..=1.0).contains(&pred.l2_miss_rate));
        }
    }
}
