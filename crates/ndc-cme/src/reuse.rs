//! Reuse analysis: the front half of the Cache Miss Equations.
//!
//! For a reference `X(F·I + f)` we derive:
//!
//! * the **innermost stride** — the address delta between consecutive
//!   innermost iterations, which drives self-spatial reuse;
//! * **self-temporal reuse** — a nonzero lex-positive `d` with
//!   `F·d = 0` (the same element touched again `d` iterations later);
//! * **group-temporal reuse** — another reference `X(F·I + f')` in the
//!   nest with the same `F`; the reuse distance solves `F·d = f' − f`.
//!
//! All systems are solved exactly over the integers (Cramer with exact
//! divisibility checks), mirroring the paper's Diophantine machinery.

use ndc_ir::matrix::{lex_positive, IMat, IVec};
use ndc_ir::program::{ArrayRef, LoopNest, Program};

/// The reuse a reference enjoys, in decreasing order of quality.
#[derive(Debug, Clone, PartialEq)]
pub enum ReuseKind {
    /// The same element is accessed every innermost iteration
    /// (innermost stride 0).
    SelfTemporalInnermost,
    /// The same element is accessed again `distance` iterations later
    /// (solution of `F·d = 0`).
    SelfTemporal { distance: IVec },
    /// Another reference touches the same element `distance` iterations
    /// later/earlier; `leader_stmt_pos`/`leader_slot` identify the
    /// reference that touches it first.
    GroupTemporal {
        distance: IVec,
        leader_stmt_pos: usize,
        leader_slot: u8,
    },
    /// Only spatial reuse along the innermost loop (stride smaller than
    /// a line).
    SelfSpatial { stride_bytes: i64 },
    /// No reuse: every access touches a fresh line.
    None,
}

/// Reuse summary for one reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseInfo {
    pub kind: ReuseKind,
    /// Innermost-iteration address stride in bytes.
    pub stride_bytes: i64,
}

/// Address delta (bytes) between iterations `I` and `I + e_innermost`.
pub fn innermost_stride(prog: &Program, aref: &ArrayRef, nest: &LoopNest) -> i64 {
    let depth = nest.depth();
    let decl = prog.array(aref.array);
    // Column of the innermost iterator in F gives the index-space step;
    // convert to a linearized element step via row-major weights.
    let col = aref.coeffs.col(depth - 1);
    let mut weight: i64 = 1;
    let mut step: i64 = 0;
    for (dim, &c) in col.iter().enumerate().rev() {
        step += c * weight;
        weight = weight.saturating_mul(decl.dims[dim] as i64);
    }
    step * decl.elem_bytes as i64
}

/// Solve `F·d = c` exactly; `None` when no unique integer solution
/// exists.
fn solve_exact(f: &IMat, c: &IVec) -> Option<IVec> {
    if f.rows != f.cols {
        return None;
    }
    let det = f.det();
    if det == 0 {
        return None;
    }
    let n = f.rows;
    let mut d = vec![0i64; n];
    for j in 0..n {
        let mut fj = f.clone();
        for i in 0..n {
            fj[(i, j)] = c[i];
        }
        let dj = fj.det();
        if dj % det != 0 {
            return None;
        }
        d[j] = dj / det;
    }
    Some(d)
}

/// Kernel probe: a nonzero lex-positive `d` with `F·d = 0`, searched
/// over unit vectors (covers the common rank-deficient accesses like
/// `X[i]` inside an `(i, j)` nest, where the innermost column is 0).
fn self_temporal_distance(f: &IMat) -> Option<IVec> {
    let n = f.cols;
    for k in (0..n).rev() {
        let col = f.col(k);
        if col.iter().all(|&x| x == 0) {
            let mut d = vec![0i64; n];
            d[k] = 1;
            return Some(d);
        }
    }
    None
}

/// Analyze one reference's reuse within its nest.
///
/// `stmt_pos`/`slot` identify the reference so that group reuse can
/// point at its leader; `line_bytes` bounds what counts as spatial
/// reuse.
pub fn analyze_reuse(
    prog: &Program,
    nest: &LoopNest,
    stmt_pos: usize,
    slot: u8,
    aref: &ArrayRef,
    line_bytes: u64,
) -> ReuseInfo {
    let stride = innermost_stride(prog, aref, nest);

    // Innermost temporal: stride 0 means the same element every
    // innermost iteration.
    if stride == 0 {
        // Distinguish "innermost column of F is zero" (temporal) from a
        // degenerate constant access.
        return ReuseInfo {
            kind: ReuseKind::SelfTemporalInnermost,
            stride_bytes: 0,
        };
    }

    // Self-temporal across outer loops (kernel of F).
    if let Some(d) = self_temporal_distance(&aref.coeffs) {
        if lex_positive(&d) {
            return ReuseInfo {
                kind: ReuseKind::SelfTemporal { distance: d },
                stride_bytes: stride,
            };
        }
    }

    // Group-temporal: the lexicographically-smallest positive reuse
    // distance from any other reference with the same F.
    let mut best: Option<(IVec, usize, u8)> = None;
    for (other_pos, other_stmt) in nest.body.iter().enumerate() {
        for (other_slot, (other_ref, _w)) in other_stmt.array_refs().iter().enumerate() {
            if other_ref.array != aref.array || other_ref.coeffs != aref.coeffs {
                continue;
            }
            if other_pos == stmt_pos && other_slot as u8 == slot {
                continue;
            }
            // d such that this ref at I+d touches what `other` touched
            // at I: F·d = f_other − f_self.
            let c: IVec = other_ref
                .offsets
                .iter()
                .zip(aref.offsets.iter())
                .map(|(o, s)| o - s)
                .collect();
            if let Some(d) = solve_exact(&aref.coeffs, &c) {
                // Lex-positive: touched again d iterations later.
                // Zero distance: touched within the same iteration by
                // an earlier statement (or an earlier slot of this
                // statement) — the follower hits L1.
                let zero = d.iter().all(|&x| x == 0);
                let qualifies = lex_positive(&d)
                    || (zero
                        && (other_pos < stmt_pos
                            || (other_pos == stmt_pos && (other_slot as u8) < slot)));
                if qualifies
                    && best
                        .as_ref()
                        .is_none_or(|(b, _, _)| ndc_ir::matrix::lex_cmp(&d, b).is_lt())
                {
                    best = Some((d, other_pos, other_slot as u8));
                }
            }
        }
    }
    if let Some((distance, leader_stmt_pos, leader_slot)) = best {
        return ReuseInfo {
            kind: ReuseKind::GroupTemporal {
                distance,
                leader_stmt_pos,
                leader_slot,
            },
            stride_bytes: stride,
        };
    }

    if stride.unsigned_abs() < line_bytes {
        ReuseInfo {
            kind: ReuseKind::SelfSpatial {
                stride_bytes: stride,
            },
            stride_bytes: stride,
        }
    } else {
        ReuseInfo {
            kind: ReuseKind::None,
            stride_bytes: stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::program::{ArrayDecl, Program, Ref, Stmt};
    use ndc_types::Op;

    fn prog2d() -> Program {
        let mut p = Program::new("t");
        p.add_array(ArrayDecl::new("X", vec![64, 64], 8));
        p.add_array(ArrayDecl::new("Y", vec![64, 64], 8));
        p.assign_layout(0, 256);
        p
    }

    #[test]
    fn unit_stride_is_spatial() {
        let p = prog2d();
        let x = ndc_ir::program::ArrayId(0);
        let r = ArrayRef::identity(x, 2, vec![0, 0]);
        let nest = LoopNest::new(0, vec![0, 0], vec![64, 64], vec![]);
        assert_eq!(innermost_stride(&p, &r, &nest), 8);
        let info = analyze_reuse(&p, &nest, 0, 0, &r, 64);
        assert_eq!(info.kind, ReuseKind::SelfSpatial { stride_bytes: 8 });
    }

    #[test]
    fn transposed_access_is_large_stride() {
        let p = prog2d();
        let x = ndc_ir::program::ArrayId(0);
        // X[j][i]: innermost j varies the ROW -> stride = 64*8 bytes.
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[0, 1], &[1, 0]]), vec![0, 0]);
        let nest = LoopNest::new(0, vec![0, 0], vec![64, 64], vec![]);
        assert_eq!(innermost_stride(&p, &r, &nest), 64 * 8);
        let info = analyze_reuse(&p, &nest, 0, 0, &r, 64);
        assert_eq!(info.kind, ReuseKind::None);
    }

    #[test]
    fn row_broadcast_is_self_temporal() {
        let p = prog2d();
        let x = ndc_ir::program::ArrayId(0);
        // X[i][0] in an (i, j) nest: innermost column of F is zero.
        let r = ArrayRef::affine(x, IMat::from_rows(&[&[1, 0], &[0, 0]]), vec![0, 0]);
        let nest = LoopNest::new(0, vec![0, 0], vec![64, 64], vec![]);
        let info = analyze_reuse(&p, &nest, 0, 0, &r, 64);
        assert_eq!(info.kind, ReuseKind::SelfTemporalInnermost);
    }

    #[test]
    fn stencil_pair_has_group_reuse() {
        let p = prog2d();
        let x = ndc_ir::program::ArrayId(0);
        let y = ndc_ir::program::ArrayId(1);
        // Y[i][j] = X[i][j] + X[i-1][j]: the X[i-1][j] read re-touches
        // what X[i][j] read one outer iteration earlier -> d = (1, 0).
        let s = Stmt::binary(
            0,
            ArrayRef::identity(y, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 0])),
            1,
        );
        let nest = LoopNest::new(0, vec![1, 0], vec![64, 64], vec![s]);
        let lagging = nest.body[0].b.as_ref().unwrap().as_array().unwrap().clone();
        let info = analyze_reuse(&p, &nest, 0, 1, &lagging, 64);
        match info.kind {
            ReuseKind::GroupTemporal {
                distance,
                leader_stmt_pos,
                leader_slot,
            } => {
                assert_eq!(distance, vec![1, 0]);
                assert_eq!(leader_stmt_pos, 0);
                assert_eq!(leader_slot, 0);
            }
            other => panic!("expected group reuse, got {other:?}"),
        }
    }

    #[test]
    fn leader_of_group_is_not_its_own_follower() {
        let p = prog2d();
        let x = ndc_ir::program::ArrayId(0);
        let y = ndc_ir::program::ArrayId(1);
        let s = Stmt::binary(
            0,
            ArrayRef::identity(y, 2, vec![0, 0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 2, vec![0, 0])),
            Ref::Array(ArrayRef::identity(x, 2, vec![-1, 0])),
            1,
        );
        let nest = LoopNest::new(0, vec![1, 0], vec![64, 64], vec![s]);
        let leader = nest.body[0].a.as_array().unwrap().clone();
        let info = analyze_reuse(&p, &nest, 0, 0, &leader, 64);
        // The leader's "reuse" of the follower is lex-NEGATIVE, so it
        // falls through to spatial.
        assert_eq!(info.kind, ReuseKind::SelfSpatial { stride_bytes: 8 });
    }
}
