//! DAMOV-style bottleneck taxonomy over measured counters.
//!
//! DAMOV (Oliveira et al.) classifies workloads by *where* their time
//! goes — compute, memory bandwidth, or interconnect — from hardware
//! counters rather than hand labels, and NMPO motivates deciding
//! offload profitability the same way. This module is the counter side
//! of that methodology for our simulator: a plain counter struct
//! (filled from `SimResult` by the caller — this crate stays
//! simulator-independent) and a deterministic classifier labeling each
//! run compute-bound, DRAM-bandwidth-bound, or NoC-bound.
//!
//! The decision is two-step, mirroring DAMOV's: first decide whether
//! the run is memory-bound at all (share of core-cycles lost to memory
//! stalls), then attribute memory-boundedness to the network or to the
//! DRAM side by how much time messages spend queued in the NoC.

/// Counters the classifier conditions on. All are aggregates over a
/// whole simulation; the caller copies them out of its result type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BottleneckCounters {
    /// Cores in the mesh (denominator of per-core-cycle shares).
    pub cores: u32,
    /// End-to-end simulated cycles.
    pub total_cycles: u64,
    /// Instructions issued across all cores.
    pub issued_insts: u64,
    /// Core cycles stalled on full MSHRs (memory-level parallelism
    /// exhausted — the DRAM-bandwidth signature).
    pub mshr_stall_cycles: u64,
    /// Core cycles stalled waiting on NDC offload results.
    pub offload_stall_cycles: u64,
    /// Cycles messages spent queued behind busy NoC links.
    pub noc_queueing_cycles: u64,
    /// Messages injected into the NoC.
    pub noc_messages: u64,
    /// L1 misses (diagnostic; not used by the decision).
    pub l1_misses: u64,
    /// L2 misses, i.e. DRAM accesses (diagnostic).
    pub l2_misses: u64,
}

/// Where a run's time dominantly goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BottleneckClass {
    /// Memory stalls are a minor share of core cycles.
    ComputeBound,
    /// Memory-bound, and the time is lost on the DRAM side.
    DramBandwidthBound,
    /// Memory-bound, and messages queue heavily in the mesh.
    NocBound,
}

impl BottleneckClass {
    pub const ALL: [BottleneckClass; 3] = [
        BottleneckClass::ComputeBound,
        BottleneckClass::DramBandwidthBound,
        BottleneckClass::NocBound,
    ];

    /// Stable table label.
    pub fn label(&self) -> &'static str {
        match self {
            BottleneckClass::ComputeBound => "compute",
            BottleneckClass::DramBandwidthBound => "dram-bw",
            BottleneckClass::NocBound => "noc",
        }
    }
}

/// Memory-boundedness threshold: a run is memory-bound when at least
/// this share of core-cycles is lost to MSHR/offload stalls.
pub const MEM_BOUND_STALL_SHARE: f64 = 0.20;

/// NoC attribution threshold: a memory-bound run is NoC-bound when the
/// average message queues for at least this many cycles.
pub const NOC_BOUND_QUEUE_PER_MSG: f64 = 6.0;

/// Classify one run. Deterministic; an idle run (zero cycles) is
/// compute-bound by convention.
pub fn classify(c: &BottleneckCounters) -> BottleneckClass {
    let core_cycles = (c.total_cycles as f64) * f64::from(c.cores.max(1));
    if core_cycles <= 0.0 {
        return BottleneckClass::ComputeBound;
    }
    let stall_share = (c.mshr_stall_cycles + c.offload_stall_cycles) as f64 / core_cycles;
    if stall_share < MEM_BOUND_STALL_SHARE {
        return BottleneckClass::ComputeBound;
    }
    let queue_per_msg = c.noc_queueing_cycles as f64 / (c.noc_messages.max(1)) as f64;
    if queue_per_msg >= NOC_BOUND_QUEUE_PER_MSG {
        BottleneckClass::NocBound
    } else {
        BottleneckClass::DramBandwidthBound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BottleneckCounters {
        BottleneckCounters {
            cores: 25,
            total_cycles: 10_000,
            issued_insts: 200_000,
            ..Default::default()
        }
    }

    #[test]
    fn low_stall_share_is_compute_bound() {
        let mut c = base();
        c.mshr_stall_cycles = 10_000; // 4% of 250k core-cycles
        c.noc_queueing_cycles = 1_000_000;
        assert_eq!(classify(&c), BottleneckClass::ComputeBound);
    }

    #[test]
    fn mshr_stalls_without_queueing_are_dram_bound() {
        let mut c = base();
        c.mshr_stall_cycles = 100_000; // 40% of core-cycles
        c.noc_messages = 50_000;
        c.noc_queueing_cycles = 100_000; // 2 cycles/msg
        assert_eq!(classify(&c), BottleneckClass::DramBandwidthBound);
    }

    #[test]
    fn heavy_queueing_is_noc_bound() {
        let mut c = base();
        c.offload_stall_cycles = 100_000;
        c.noc_messages = 10_000;
        c.noc_queueing_cycles = 100_000; // 10 cycles/msg
        assert_eq!(classify(&c), BottleneckClass::NocBound);
    }

    #[test]
    fn idle_run_defaults_to_compute_bound() {
        let c = BottleneckCounters::default();
        assert_eq!(classify(&c), BottleneckClass::ComputeBound);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<_> = BottleneckClass::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels, vec!["compute", "dram-bw", "noc"]);
    }
}
