//! Table 2 machinery: the Cache Miss Equations analysis itself (static
//! compile-time cost), per workload.

use bench::Harness;
use ndc::prelude::*;

fn main() {
    let cfg = ArchConfig::paper_default();
    let mut h = Harness::new("table2_cme");
    for name in ["swim", "cholesky", "bwaves"] {
        let prog = by_name(name).unwrap().build(Scale::Test);
        h.bench(name, || ndc::cme::analyze(&prog, &cfg, cfg.nodes()));
    }
    h.finish();
}
