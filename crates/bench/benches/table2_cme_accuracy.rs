//! Table 2 machinery: the Cache Miss Equations analysis itself (static
//! compile-time cost), per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ndc::prelude::*;

fn bench_cme(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let mut group = c.benchmark_group("table2_cme");
    for name in ["swim", "cholesky", "bwaves"] {
        let prog = by_name(name).unwrap().build(Scale::Test);
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(ndc::cme::analyze(&prog, &cfg, cfg.nodes())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cme);
criterion_main!(benches);
