//! Figure 4 machinery: one full scheme comparison (baseline, Default
//! NDC, oracle, compiled Algorithm 2) per workload.

use bench::Harness;
use ndc::prelude::*;
use ndc_ir::{lower, LowerOptions};
use ndc_sim::engine::simulate;

fn main() {
    let cfg = ArchConfig::paper_default();
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let prog = by_name("kdtree").unwrap().build(Scale::Test);
    let traces = lower(&prog, &opts, None);
    let (sched, _) = compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
    let compiled = lower(&prog, &opts, Some(&sched));

    let mut h = Harness::new("fig4_schemes");
    h.bench("baseline", || {
        simulate(cfg, &traces, Scheme::Baseline).result.total_cycles
    });
    h.bench("default_ndc", || {
        simulate(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::Forever,
            },
        )
        .result
        .total_cycles
    });
    h.bench("oracle_two_pass", || {
        simulate(cfg, &traces, Scheme::Oracle { reuse_aware: true })
            .result
            .total_cycles
    });
    h.bench("compiled_alg2", || {
        simulate(cfg, &compiled, Scheme::Compiled)
            .result
            .total_cycles
    });
    h.finish();
}
