//! Figure 4 machinery: one full scheme comparison (baseline, Default
//! NDC, oracle, compiled Algorithm 2) per workload.

use bench::Harness;
use ndc::prelude::*;
use ndc_ir::{lower, LowerOptions};
use ndc_sim::engine::simulate;

fn main() {
    let cfg = ArchConfig::paper_default();
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let prog = by_name("kdtree").unwrap().build(Scale::Test);
    let traces = lower(&prog, &opts, None);
    let (sched, _) = compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
    let compiled = lower(&prog, &opts, Some(&sched));

    let mut h = Harness::new("fig4_schemes");
    // Each scheme registers its simulated counters next to the wall
    // timing: the gate compares those exactly, so a perturbed cycle
    // count fails even when the host timing is within tolerance.
    let counters = |h: &mut Harness, r: &ndc_sim::SimResult| {
        h.counter("total_cycles", r.total_cycles);
        h.counter("issued_insts", r.issued_insts);
        h.counter("noc_messages", r.noc_messages);
    };
    h.bench("baseline", || {
        simulate(cfg, &traces, Scheme::Baseline).result.total_cycles
    });
    counters(&mut h, &simulate(cfg, &traces, Scheme::Baseline).result);
    h.bench("default_ndc", || {
        simulate(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::Forever,
            },
        )
        .result
        .total_cycles
    });
    counters(
        &mut h,
        &simulate(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::Forever,
            },
        )
        .result,
    );
    h.bench("oracle_two_pass", || {
        simulate(cfg, &traces, Scheme::Oracle { reuse_aware: true })
            .result
            .total_cycles
    });
    counters(
        &mut h,
        &simulate(cfg, &traces, Scheme::Oracle { reuse_aware: true }).result,
    );
    h.bench("compiled_alg2", || {
        simulate(cfg, &compiled, Scheme::Compiled)
            .result
            .total_cycles
    });
    counters(&mut h, &simulate(cfg, &compiled, Scheme::Compiled).result);
    h.finish();
}
