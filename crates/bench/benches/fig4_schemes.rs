//! Figure 4 machinery: one full scheme comparison (baseline, Default
//! NDC, oracle, compiled Algorithm 2) per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ndc::prelude::*;
use ndc_ir::{lower, LowerOptions};
use ndc_sim::engine::simulate;

fn bench_schemes(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let prog = by_name("kdtree").unwrap().build(Scale::Test);
    let traces = lower(&prog, &opts, None);
    let (sched, _) = compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
    let compiled = lower(&prog, &opts, Some(&sched));

    let mut group = c.benchmark_group("fig4_schemes");
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        b.iter(|| std::hint::black_box(simulate(cfg, &traces, Scheme::Baseline).result.total_cycles))
    });
    group.bench_function("default_ndc", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate(
                    cfg,
                    &traces,
                    Scheme::NdcAll {
                        budget: WaitBudget::Forever,
                    },
                )
                .result
                .total_cycles,
            )
        })
    });
    group.bench_function("oracle_two_pass", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate(cfg, &traces, Scheme::Oracle { reuse_aware: true })
                    .result
                    .total_cycles,
            )
        })
    });
    group.bench_function("compiled_alg2", |b| {
        b.iter(|| std::hint::black_box(simulate(cfg, &compiled, Scheme::Compiled).result.total_cycles))
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
