//! Microbenchmarks of the substrates: cache accesses, DRAM requests,
//! XY routing, signature selection.

use bench::Harness;
use ndc_mem::{MemoryController, SetAssocCache};
use ndc_noc::{best_signature_pair, Mesh, Network};
use ndc_sim::queue::ReadyQueue;
use ndc_types::{ArchConfig, Coord, SplitMix64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn main() {
    let cfg = ArchConfig::paper_default();
    let mut h = Harness::new("substrate_micro");

    {
        let mut cache = SetAssocCache::new(cfg.l1);
        let mut addr = 0u64;
        h.bench("cache_access_stream", || {
            addr = addr.wrapping_add(64) % (1 << 20);
            cache.access(addr, 0, false)
        });
    }

    {
        let mut mc = MemoryController::new(cfg);
        let mut addr = 0u64;
        let mut t = 0u64;
        h.bench("dram_request_stream", || {
            addr = addr.wrapping_add(256) % (1 << 24);
            t += 10;
            mc.request(addr, t)
        });
    }

    {
        let mesh = Mesh::new(cfg.noc);
        let mut net = Network::new(mesh.clone());
        let route = mesh.xy_route(Coord::new(0, 0), Coord::new(4, 4));
        let mut t = 0u64;
        h.bench("noc_traverse_contended", || {
            t += 2;
            net.traverse(&route, t, 64).arrived
        });
    }

    // The engine's scheduler hot loop: pop the earliest core, advance
    // it, reinsert — calendar queue vs the binary heap it replaced,
    // over an identical pre-generated engine-like delta stream (mostly
    // 0–2 cycles, occasional memory-latency jumps).
    {
        let mut g = SplitMix64::new(0xbeef);
        let deltas: Vec<u64> = (0..4096)
            .map(|_| match g.below(8) {
                0..=5 => g.below(3),
                6 => g.below(300),
                _ => g.below(4000),
            })
            .collect();

        let mut q = ReadyQueue::new();
        for c in 0..256 {
            q.push(0, c);
        }
        let mut i = 0;
        h.bench("ready_queue_calendar", || {
            let (t, c) = q.pop().expect("queue never drains");
            i = (i + 1) % deltas.len();
            q.push(t + deltas[i], c);
            t
        });

        let mut heap: BinaryHeap<(Reverse<u64>, usize)> =
            (0..256).map(|c| (Reverse(0), c)).collect();
        let mut j = 0;
        h.bench("ready_queue_binary_heap", || {
            let (Reverse(t), c) = heap.pop().expect("heap never drains");
            j = (j + 1) % deltas.len();
            heap.push((Reverse(t + deltas[j]), c));
            t
        });
    }

    {
        let mesh = Mesh::new(cfg.noc);
        h.bench("signature_pair_selection", || {
            best_signature_pair(
                &mesh,
                Coord::new(0, 1),
                Coord::new(3, 2),
                Coord::new(1, 0),
                Coord::new(2, 3),
            )
            .common_links
        });
    }

    h.finish();
}
