//! Microbenchmarks of the substrates: cache accesses, DRAM requests,
//! XY routing, signature selection.

use bench::Harness;
use ndc_mem::{MemoryController, SetAssocCache};
use ndc_noc::{best_signature_pair, Mesh, Network};
use ndc_types::{ArchConfig, Coord};

fn main() {
    let cfg = ArchConfig::paper_default();
    let mut h = Harness::new("substrate_micro");

    {
        let mut cache = SetAssocCache::new(cfg.l1);
        let mut addr = 0u64;
        h.bench("cache_access_stream", || {
            addr = addr.wrapping_add(64) % (1 << 20);
            cache.access(addr, 0, false)
        });
    }

    {
        let mut mc = MemoryController::new(cfg);
        let mut addr = 0u64;
        let mut t = 0u64;
        h.bench("dram_request_stream", || {
            addr = addr.wrapping_add(256) % (1 << 24);
            t += 10;
            mc.request(addr, t)
        });
    }

    {
        let mesh = Mesh::new(cfg.noc);
        let mut net = Network::new(mesh.clone());
        let route = mesh.xy_route(Coord::new(0, 0), Coord::new(4, 4));
        let mut t = 0u64;
        h.bench("noc_traverse_contended", || {
            t += 2;
            net.traverse(&route, t, 64).arrived
        });
    }

    {
        let mesh = Mesh::new(cfg.noc);
        h.bench("signature_pair_selection", || {
            best_signature_pair(
                &mesh,
                Coord::new(0, 1),
                Coord::new(3, 2),
                Coord::new(1, 0),
                Coord::new(2, 3),
            )
            .common_links
        });
    }

    h.finish();
}
