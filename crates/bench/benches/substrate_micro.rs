//! Microbenchmarks of the substrates: cache accesses, DRAM requests,
//! XY routing, signature selection.

use criterion::{criterion_group, criterion_main, Criterion};
use ndc_mem::{MemoryController, SetAssocCache};
use ndc_noc::{best_signature_pair, Mesh, Network};
use ndc_types::{ArchConfig, Coord};

fn bench_substrates(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();

    c.bench_function("cache_access_stream", |b| {
        let mut cache = SetAssocCache::new(cfg.l1);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) % (1 << 20);
            std::hint::black_box(cache.access(addr, 0, false))
        })
    });

    c.bench_function("dram_request_stream", |b| {
        let mut mc = MemoryController::new(cfg);
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(256) % (1 << 24);
            t += 10;
            std::hint::black_box(mc.request(addr, t))
        })
    });

    c.bench_function("noc_traverse_contended", |b| {
        let mesh = Mesh::new(cfg.noc);
        let mut net = Network::new(mesh.clone());
        let route = mesh.xy_route(Coord::new(0, 0), Coord::new(4, 4));
        let mut t = 0u64;
        b.iter(|| {
            t += 2;
            std::hint::black_box(net.traverse(&route, t, 64).arrived)
        })
    });

    c.bench_function("signature_pair_selection", |b| {
        let mesh = Mesh::new(cfg.noc);
        b.iter(|| {
            std::hint::black_box(
                best_signature_pair(
                    &mesh,
                    Coord::new(0, 1),
                    Coord::new(3, 2),
                    Coord::new(1, 0),
                    Coord::new(2, 3),
                )
                .common_links,
            )
        })
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
