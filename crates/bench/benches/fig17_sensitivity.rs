//! Figure 17 machinery: a single sensitivity point (6x6 mesh) end to
//! end on one workload.

use bench::Harness;
use ndc::prelude::*;
use ndc_ir::{lower, LowerOptions};
use ndc_sim::engine::simulate;

fn main() {
    let mut cfg = ArchConfig::paper_default();
    cfg.noc.width = 6;
    cfg.noc.height = 6;
    let prog = by_name("fft").unwrap().build(Scale::Test);
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let mut h = Harness::new("fig17_sensitivity");
    h.bench("fft_6x6_alg1", || {
        let traces = lower(&prog, &opts, None);
        let base = simulate(cfg, &traces, Scheme::Baseline).result;
        let (s1, _) = compile_algorithm1(&prog, &cfg, cfg.nodes());
        let a1 = simulate(cfg, &lower(&prog, &opts, Some(&s1)), Scheme::Compiled).result;
        a1.improvement_over(&base)
    });
    h.finish();
}
