//! Compiler-pass cost: Algorithms 1 and 2 end to end, plus dependence
//! analysis and lowering, per workload.

use bench::Harness;
use ndc::prelude::*;
use ndc_ir::{lower, DependenceGraph, LowerOptions};

fn main() {
    let cfg = ArchConfig::paper_default();
    let prog = by_name("swim").unwrap().build(Scale::Test);
    let mut h = Harness::new("compiler_passes");

    h.bench("dependence_analysis_swim", || {
        for nest in &prog.nests {
            std::hint::black_box(DependenceGraph::analyze(nest));
        }
    });
    h.bench("algorithm1_swim", || {
        compile_algorithm1(&prog, &cfg, cfg.nodes()).1.planned
    });
    h.bench("algorithm2_swim", || {
        compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default())
            .1
            .planned
    });
    {
        let opts = LowerOptions {
            cores: cfg.nodes(),
            emit_busy: true,
        };
        h.bench("lowering_swim", || lower(&prog, &opts, None).total_insts());
    }

    h.finish();
}
