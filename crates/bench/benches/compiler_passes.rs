//! Compiler-pass cost: Algorithms 1 and 2 end to end, plus dependence
//! analysis and lowering, per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ndc::prelude::*;
use ndc_ir::{lower, DependenceGraph, LowerOptions};

fn bench_passes(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let prog = by_name("swim").unwrap().build(Scale::Test);

    c.bench_function("dependence_analysis_swim", |b| {
        b.iter(|| {
            for nest in &prog.nests {
                std::hint::black_box(DependenceGraph::analyze(nest));
            }
        })
    });
    c.bench_function("algorithm1_swim", |b| {
        b.iter(|| std::hint::black_box(compile_algorithm1(&prog, &cfg, cfg.nodes()).1.planned))
    });
    c.bench_function("algorithm2_swim", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default())
                    .1
                    .planned,
            )
        })
    });
    c.bench_function("lowering_swim", |b| {
        let opts = LowerOptions {
            cores: cfg.nodes(),
            emit_busy: true,
        };
        b.iter(|| std::hint::black_box(lower(&prog, &opts, None).total_insts()))
    });
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
