//! Cost and payoff of lint-gated candidate pruning.
//!
//! `sweep_workload` skips statically-illegal candidates without
//! executing them; the ungated variant executes everything and
//! cross-checks lint against the oracle. The gap between the two is the
//! sweep speedup static pruning buys — largest on wavefront workloads
//! (applu, smith.wa) where most candidates are illegal and every
//! skipped candidate saves two full interpreter runs. The micro rows
//! price the lint passes themselves.

use bench::Harness;
use ndc::check::{sweep_workload_with, SweepOptions};
use ndc::prelude::*;

fn main() {
    let cfg = ArchConfig::paper_default();
    let mut h = Harness::new("lint_gate");

    for name in ["applu", "smith.wa"] {
        let prog = by_name(name).unwrap().build_timesteps(Scale::Test, 1);
        h.bench(&format!("sweep_gated_{name}"), || {
            sweep_workload_with(
                &prog,
                SweepOptions {
                    max_skew: 1,
                    lint_gate: true,
                },
            )
            .legal_checked
        });
        h.bench(&format!("sweep_ungated_{name}"), || {
            sweep_workload_with(
                &prog,
                SweepOptions {
                    max_skew: 1,
                    lint_gate: false,
                },
            )
            .legal_checked
        });
    }

    let prog = by_name("smith.wa").unwrap().build_timesteps(Scale::Test, 1);
    let (sched, _) = compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
    h.bench("lint_schedule_smith.wa", || {
        ndc::lint::lint_schedule(&prog, &sched).errors.len()
    });
    h.bench("refine_smith.wa", || {
        prog.nests
            .iter()
            .map(|n| ndc::lint::refine(n).0.edges.len())
            .sum::<usize>()
    });

    h.finish();
}
