//! Figure 2 machinery: instrumented baseline runs collecting
//! arrival-window CDFs. Benchmarks the characterization cost per
//! workload (the data itself is printed by `ndc-eval fig2`).

use bench::Harness;
use ndc::prelude::*;
use ndc_ir::{lower, LowerOptions};
use ndc_sim::engine::Engine;

fn main() {
    let cfg = ArchConfig::paper_default();
    let mut h = Harness::new("fig2_arrival_windows");
    for name in ["kdtree", "swim", "ocean"] {
        let prog = by_name(name).unwrap().build(Scale::Test);
        let traces = lower(
            &prog,
            &LowerOptions {
                cores: cfg.nodes(),
                emit_busy: true,
            },
            None,
        );
        h.bench(name, || {
            let out = Engine::new(cfg, &traces, Scheme::Baseline)
                .with_instrumentation()
                .run();
            let ins = out.instrumentation.unwrap();
            ins.window_hist[0].cdf()
        });
    }
    h.finish();
}
