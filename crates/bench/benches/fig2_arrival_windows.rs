//! Figure 2 machinery: instrumented baseline runs collecting
//! arrival-window CDFs. Benchmarks the characterization cost per
//! workload (the data itself is printed by `ndc-eval fig2`).

use criterion::{criterion_group, criterion_main, Criterion};
use ndc::prelude::*;
use ndc_ir::{lower, LowerOptions};
use ndc_sim::engine::Engine;

fn bench_characterization(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let mut group = c.benchmark_group("fig2_arrival_windows");
    group.sample_size(10);
    for name in ["kdtree", "swim", "ocean"] {
        let prog = by_name(name).unwrap().build(Scale::Test);
        let traces = lower(
            &prog,
            &LowerOptions {
                cores: cfg.nodes(),
                emit_busy: true,
            },
            None,
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Engine::new(cfg, &traces, Scheme::Baseline)
                    .with_instrumentation()
                    .run();
                let ins = out.instrumentation.unwrap();
                std::hint::black_box(ins.window_hist[0].cdf());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
