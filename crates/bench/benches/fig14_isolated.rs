//! Figure 14 machinery: compiled runs under one-hot control-register
//! masks (per-component isolation).

use criterion::{criterion_group, criterion_main, Criterion};
use ndc::experiments;
use ndc::prelude::*;

fn bench_isolated(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let bench = by_name("kdtree").unwrap();
    let mut group = c.benchmark_group("fig14_isolated");
    group.sample_size(10);
    group.bench_function("kdtree_five_masks", |b| {
        b.iter(|| std::hint::black_box(experiments::figure14(&bench, cfg, Scale::Test).all))
    });
    group.finish();
}

criterion_group!(benches, bench_isolated);
criterion_main!(benches);
