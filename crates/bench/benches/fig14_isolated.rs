//! Figure 14 machinery: compiled runs under one-hot control-register
//! masks (per-component isolation).

use bench::Harness;
use ndc::experiments;
use ndc::prelude::*;

fn main() {
    let cfg = ArchConfig::paper_default();
    let bench = by_name("kdtree").unwrap();
    let mut h = Harness::new("fig14_isolated");
    h.bench("kdtree_five_masks", || {
        experiments::figure14(&bench, cfg, Scale::Test).all
    });
    h.finish();
}
