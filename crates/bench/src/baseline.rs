//! The perf-regression gate: compare a freshly generated `BENCH_*.json`
//! document against a committed baseline.
//!
//! Two channels with different contracts:
//!
//! * **Simulated counters are exact.** Every numeric leaf that is not
//!   wall-clock-derived (simulated cycles, issued instructions, NoC
//!   messages, offload cycles, fused-chain counts, ...) must match the
//!   baseline bit-for-bit — the simulator is deterministic, so any
//!   drift is a real behavioural change that someone must either fix
//!   or explicitly re-baseline (`NDC_BENCH_REBASE=1`).
//! * **Wall-clock numbers are toleranced.** Keys ending in `_ns` or
//!   `_per_sec`, and `speedup`, measure the host, not the simulator;
//!   they gate only on a generous ratio so a catastrophic slowdown
//!   still fails while machine-to-machine variance does not.
//! * **Host-shape keys are ignored.** `host_parallelism`,
//!   `host_saturated`, and the harness's calibration artifacts
//!   (`iters_per_sample`, `samples`) describe the machine the file was
//!   generated on, not the code under test.
//!
//! Comparison is structural and recursive; every divergence is
//! reported with its JSON path, so a failing gate says exactly which
//! counter moved and by how much.

use ndc_types::Json;

/// Default wall-clock tolerance: fail only when current/baseline (or
/// its inverse) exceeds this ratio.
pub const DEFAULT_WALL_TOLERANCE: f64 = 10.0;

/// Keys whose values describe the generating host, not the simulator.
const IGNORED_KEYS: [&str; 4] = [
    "host_parallelism",
    "host_saturated",
    "iters_per_sample",
    "samples",
];

/// Whether `key` carries a wall-clock-derived measurement.
fn is_wall_key(key: &str) -> bool {
    key.ends_with("_ns") || key.ends_with("_per_sec") || key == "speedup"
}

/// One divergence between baseline and current, with its JSON path.
#[derive(Debug, Clone, PartialEq)]
pub struct Diff {
    pub path: String,
    pub detail: String,
}

impl std::fmt::Display for Diff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Compare `current` against `baseline`. Empty result means the gate
/// passes. `wall_tolerance` is the permitted ratio for wall-clock keys.
pub fn compare(baseline: &Json, current: &Json, wall_tolerance: f64) -> Vec<Diff> {
    let mut diffs = Vec::new();
    walk(baseline, current, "$", wall_tolerance, &mut diffs);
    diffs
}

fn push(diffs: &mut Vec<Diff>, path: &str, detail: String) {
    diffs.push(Diff {
        path: path.to_string(),
        detail,
    });
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Int(_) | Json::UInt(_) | Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn walk(base: &Json, cur: &Json, path: &str, tol: f64, diffs: &mut Vec<Diff>) {
    // Numbers first: Int/UInt/Num cross-compare by value, wall keys by
    // ratio (the key test happens in the object arm via `path` suffix —
    // here we only see leaves whose tolerance was already decided).
    match (base, cur) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (k, bv) in b {
                if IGNORED_KEYS.contains(&k.as_str()) {
                    continue;
                }
                let Some(cv) = cur.get(k) else {
                    push(diffs, &format!("{path}.{k}"), "missing in current".into());
                    continue;
                };
                let child = format!("{path}.{k}");
                if is_wall_key(k) {
                    compare_wall(bv, cv, &child, tol, diffs);
                } else {
                    walk(bv, cv, &child, tol, diffs);
                }
            }
            for (k, _) in c {
                if base.get(k).is_none() && !IGNORED_KEYS.contains(&k.as_str()) {
                    push(diffs, &format!("{path}.{k}"), "missing in baseline".into());
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                push(
                    diffs,
                    path,
                    format!(
                        "array length {} in baseline vs {} in current",
                        b.len(),
                        c.len()
                    ),
                );
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                walk(bv, cv, &format!("{path}[{i}]"), tol, diffs);
            }
        }
        _ => {
            let (Some(bn), Some(cn)) = (base.as_f64(), cur.as_f64()) else {
                // Non-numeric leaves (and type mismatches): exact.
                if base != cur {
                    push(
                        diffs,
                        path,
                        format!(
                            "{} {} in baseline vs {} {} in current",
                            type_name(base),
                            base.render(),
                            type_name(cur),
                            cur.render()
                        ),
                    );
                }
                return;
            };
            if bn != cn {
                push(
                    diffs,
                    path,
                    format!(
                        "counter changed: baseline {} vs current {}",
                        base.render(),
                        cur.render()
                    ),
                );
            }
        }
    }
}

/// Wall-clock comparison: any numeric value within `tol`× either way
/// passes; non-numbers fall back to the exact rules.
fn compare_wall(base: &Json, cur: &Json, path: &str, tol: f64, diffs: &mut Vec<Diff>) {
    let (Some(b), Some(c)) = (base.as_f64(), cur.as_f64()) else {
        walk(base, cur, path, tol, diffs);
        return;
    };
    if b <= 0.0 || c <= 0.0 {
        return; // degenerate timings carry no signal
    }
    let ratio = if c > b { c / b } else { b / c };
    if ratio > tol {
        push(
            diffs,
            path,
            format!("wall-clock ratio {ratio:.2}x exceeds tolerance {tol:.1}x (baseline {b}, current {c})"),
        );
    }
}

/// Load a baseline file and compare a current document against it,
/// honouring the `NDC_BENCH_REBASE=1` escape hatch. Returns the diffs
/// (empty = pass); `Err` means the baseline could not be read/parsed.
pub fn gate_against_file(
    baseline_path: &str,
    current: &Json,
    wall_tolerance: f64,
) -> Result<Vec<Diff>, String> {
    if std::env::var("NDC_BENCH_REBASE").is_ok_and(|v| v == "1") {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline =
        Json::parse(&text).map_err(|e| format!("cannot parse baseline {baseline_path}: {e}"))?;
    Ok(compare(&baseline, current, wall_tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cycles: u64, ns: f64) -> Json {
        Json::obj().with("suite", "s").with(
            "benches",
            Json::Arr(vec![Json::obj()
                .with("name", "b")
                .with("median_ns", ns)
                .with("iters_per_sample", 4u64)
                .with("counters", Json::obj().with("total_cycles", cycles))]),
        )
    }

    #[test]
    fn identical_documents_pass() {
        assert!(compare(&doc(100, 5e6), &doc(100, 5e6), DEFAULT_WALL_TOLERANCE).is_empty());
    }

    #[test]
    fn perturbed_simulated_counter_fails_exactly() {
        let diffs = compare(&doc(100, 5e6), &doc(101, 5e6), DEFAULT_WALL_TOLERANCE);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(
            diffs[0].path.ends_with("counters.total_cycles"),
            "{diffs:?}"
        );
    }

    #[test]
    fn wall_clock_is_toleranced_but_not_unbounded() {
        // 8x slower: within the 10x default.
        assert!(compare(&doc(100, 1e6), &doc(100, 8e6), DEFAULT_WALL_TOLERANCE).is_empty());
        // 20x slower: fails. 20x faster fails symmetrically.
        assert_eq!(
            compare(&doc(100, 1e6), &doc(100, 2e7), DEFAULT_WALL_TOLERANCE).len(),
            1
        );
        assert_eq!(
            compare(&doc(100, 2e7), &doc(100, 1e6), DEFAULT_WALL_TOLERANCE).len(),
            1
        );
    }

    #[test]
    fn host_shape_keys_are_ignored() {
        let b = Json::obj().with("host_parallelism", 4u64).with("x", 1u64);
        let c = Json::obj().with("host_parallelism", 64u64).with("x", 1u64);
        assert!(compare(&b, &c, DEFAULT_WALL_TOLERANCE).is_empty());
    }

    #[test]
    fn structural_drift_is_reported_with_paths() {
        let b = Json::obj().with("rows", vec![1u64, 2]);
        let c = Json::obj()
            .with("rows", vec![1u64, 2, 3])
            .with("extra", true);
        let diffs = compare(&b, &c, DEFAULT_WALL_TOLERANCE);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert!(paths.contains(&"$.rows"), "{diffs:?}");
        assert!(paths.contains(&"$.extra"), "{diffs:?}");
    }

    #[test]
    fn rebase_escape_hatch_short_circuits() {
        std::env::set_var("NDC_BENCH_REBASE", "1");
        let diffs = gate_against_file("/nonexistent.json", &doc(1, 1.0), 10.0).unwrap();
        std::env::remove_var("NDC_BENCH_REBASE");
        assert!(diffs.is_empty());
    }
}
