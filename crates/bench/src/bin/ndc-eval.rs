//! `ndc-eval` — regenerate the paper's tables and figures.
//!
//! ```text
//! ndc-eval <experiment> [--scale test|paper] [--bench <name>]
//!                       [--metrics <out.json>] [--trace <out.trace.json>]
//!
//! experiments:
//!   table1            simulated configuration (paper Table 1)
//!   table2            CME L1/L2 estimation accuracy
//!   fig2              arrival-window CDFs per location
//!   fig3              breakeven points vs arrival windows
//!   fig4              performance benefit of every scheme
//!   fig5              consecutive arrival windows (ocean, radiosity)
//!   fig6              oracle NDC location breakdown
//!   fig13             Algorithm-1 NDC location breakdown
//!   fig14             Algorithm 1 restricted to single components
//!   fig15             NDC opportunities exercised by Algorithm 2
//!   fig16             L1/L2 miss rates under Algorithms 1 and 2
//!   fig17             sensitivity study (mesh size, L2 size, op class)
//!   explain           span traces + compiler provenance + cost-model cross-check
//!   ablation-routing  router NDC with vs without route reshaping
//!   ablation-coarse   fine-grain vs whole-nest mapping
//!   fuse              operator fusion: bytes moved + offload cycles, BENCH_fusion.json
//!   check             differential oracle + simulator invariants + fault matrix
//!   lint              static legality: certificates, bounds proofs, race report
//!   scale             mesh scale-up study: lane engine vs serial, BENCH_scale.json
//!   fuzz              seeded IR fuzzing: generator -> compilers -> oracle -> checked sim
//!   gen               seeded corpus summary (class mix, shapes, degenerate coverage)
//!   all               everything above in sequence (except check, lint, scale, fuzz)
//!   help              full usage (also -h / --help)
//! ```
//!
//! `fuzz` drives `--count` seeded programs (seeds `--seed`, `--seed`+1,
//! ...) through every layer and exits 1 on any divergence, invariant
//! violation, or panic, printing the reproducing seed; rerun one case
//! with `ndc-eval fuzz --count 1 --seed <seed>`. The class × bottleneck
//! corpus table lands in `BENCH_fuzz_corpus.json`.
//!
//! `--metrics` writes a per-run component-level breakdown (engine,
//! NDC, caches, directory, NoC links, DRAM channels) of every
//! benchmark-evaluation run as JSON; `--trace` additionally writes the
//! latest NDC offload events in Chrome trace format (load it at
//! `chrome://tracing` or Perfetto). Both apply to experiments that run
//! the shared benchmark evaluation (table2, fig2-fig6, fig13, fig15,
//! fig16); the output is byte-identical for any `NDC_THREADS`.
//!
//! `explain` cross-checks the compiler's offload cost model against
//! the simulator's measured issue→result latencies for every NDC
//! location; with `--bench` it additionally prints the per-segment
//! latency decomposition of the sampled span traces, the slowest
//! request trees, and the planner's per-chain decision provenance.
//!
//! Unknown experiments, flags, or flag values are errors (exit 2).

use ndc::experiments as exp;
use ndc::obs::ObsLevel;
use ndc::prelude::*;
use ndc_types::{geomean_improvement, Json, ALL_NDC_LOCATIONS, BUCKET_LABELS};

/// Ring capacity per simulated run when `--trace` is on: enough to
/// hold the tail of any test-scale run without unbounded memory.
const TRACE_RING_CAPACITY: usize = 4096;

struct Args {
    experiment: String,
    scale: Scale,
    bench: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    /// `--count` for fuzz/gen (default 256).
    count: Option<usize>,
    /// `--seed` for fuzz/gen (default 7, the acceptance seed).
    seed: Option<u64>,
    /// `--json`: machine-readable document on stdout instead of tables
    /// (profile, explain, check).
    json: bool,
    /// `--tenants` for profile (default 1, the single-tenant world).
    tenants: u16,
    /// `--top` for profile: outlier requests to show (default 5).
    top: usize,
    /// `--baseline` for gate: the committed `BENCH_*.json`.
    baseline: Option<String>,
    /// `--current` for gate: the freshly generated `BENCH_*.json`.
    current: Option<String>,
    /// `--tolerance` for gate: wall-clock ratio (default 10x).
    tolerance: f64,
}

impl Args {
    /// Observability requested on the command line.
    fn obs_level(&self) -> ObsLevel {
        match (&self.metrics, &self.trace) {
            (None, None) => ObsLevel::off(),
            (_, None) => ObsLevel::metrics(),
            (_, Some(_)) => ObsLevel::with_trace(TRACE_RING_CAPACITY),
        }
    }
}

/// Full usage text — the `help` experiment and the answer to any
/// argument error.
fn usage() {
    println!("usage: ndc-eval <experiment> [--scale test|paper] [--bench <name>]");
    println!("                             [--metrics <out.json>] [--trace <out.trace.json>]");
    println!();
    println!("experiments:");
    println!("  list              enumerate the 20 benchmarks");
    println!("  table1            simulated configuration (paper Table 1)");
    println!("  table2            CME L1/L2 estimation accuracy");
    println!("  fig2              arrival-window CDFs per location");
    println!("  fig3              breakeven points vs arrival windows");
    println!("  fig4              performance benefit of every scheme");
    println!("  fig5              consecutive arrival windows (ocean, radiosity)");
    println!("  fig6              oracle NDC location breakdown");
    println!("  fig13             Algorithm-1 NDC location breakdown");
    println!("  fig14             Algorithm 1 restricted to single components");
    println!("  fig15             NDC opportunities exercised by Algorithm 2");
    println!("  fig16             L1/L2 miss rates under Algorithms 1 and 2");
    println!("  fig17             sensitivity study (mesh size, L2 size, op class)");
    println!("  explain           span traces + compiler provenance + cost-model cross-check");
    println!("  profile           per-tenant attribution ledger + latency quantiles + outliers");
    println!("  gate              perf-regression gate: --current BENCH json vs --baseline");
    println!("  ablation-routing  router NDC with vs without route reshaping");
    println!("  ablation-coarse   fine-grain vs whole-nest mapping");
    println!("  ablation-k        Algorithm 2 reuse-threshold k sweep");
    println!("  ablation-markov   Markov window predictor vs Last-Wait");
    println!("  ablation-layout   data-layout optimization before Algorithm 2");
    println!(
        "  fuse              operator fusion: bytes moved + offload cycles, BENCH_fusion.json"
    );
    println!("  check             differential oracle + simulator invariants + fault matrix");
    println!("  lint              static legality: certificates, bounds proofs, race report");
    println!("  scale             mesh scale-up study: lane engine vs serial, BENCH_scale.json");
    println!(
        "  fuzz              seeded IR fuzzing: generator -> compilers -> oracle -> checked sim"
    );
    println!("  gen               seeded corpus summary (class mix, shapes, degenerate coverage)");
    println!("  all               everything above in sequence (except check, lint, scale, fuzz)");
    println!("  help              this text (also -h / --help)");
    println!();
    println!("flags:");
    println!("  --scale test|paper   problem sizes (default: paper)");
    println!("  --bench <name>       restrict to one benchmark (see `list`)");
    println!("  --metrics <path>     per-run component breakdown JSON (evaluation runs)");
    println!("  --trace <path>       NDC offload events, Chrome trace format (implies metrics)");
    println!("  --count <n>          fuzz/gen: programs to generate (default: 256)");
    println!("  --seed <u64>         fuzz/gen: base seed, decimal or 0x hex (default: 7)");
    println!("  --json               profile/explain/check: JSON document on stdout");
    println!("  --tenants <n>        profile: tenants, cores assigned round-robin (default: 1)");
    println!("  --top <k>            profile: slowest sampled requests to show (default: 5)");
    println!("  --baseline <path>    gate: committed BENCH_*.json to compare against");
    println!("  --current <path>     gate: freshly generated BENCH_*.json under test");
    println!("  --tolerance <ratio>  gate: wall-clock ratio tolerance (default: 10)");
}

/// Exit 2 with an argument error (usage goes to stderr so piped
/// experiment output stays clean).
fn arg_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `ndc-eval help` for usage");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Paper;
    let mut bench = None;
    let mut metrics = None;
    let mut trace = None;
    let mut count = None;
    let mut seed = None;
    let mut json = false;
    let mut tenants = 1u16;
    let mut top = 5usize;
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = bench::baseline::DEFAULT_WALL_TOLERANCE;
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .unwrap_or_else(|| arg_error(&format!("{flag} requires a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                usage();
                std::process::exit(0);
            }
            "--scale" => {
                let v = value(&mut it, "--scale");
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    other => arg_error(&format!("unknown scale '{other}' (want test|paper)")),
                };
            }
            "--bench" => bench = Some(value(&mut it, "--bench")),
            "--metrics" => metrics = Some(value(&mut it, "--metrics")),
            "--trace" => trace = Some(value(&mut it, "--trace")),
            "--count" => {
                let v = value(&mut it, "--count");
                count = Some(v.parse().unwrap_or_else(|_| {
                    arg_error(&format!("--count wants a positive integer, got '{v}'"))
                }));
            }
            "--seed" => {
                let v = value(&mut it, "--seed");
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                seed = Some(parsed.unwrap_or_else(|_| {
                    arg_error(&format!(
                        "--seed wants a u64 (decimal or 0x hex), got '{v}'"
                    ))
                }));
            }
            "--json" => json = true,
            "--tenants" => {
                let v = value(&mut it, "--tenants");
                tenants = v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    arg_error(&format!("--tenants wants a positive integer, got '{v}'"))
                });
            }
            "--top" => {
                let v = value(&mut it, "--top");
                top = v.parse().unwrap_or_else(|_| {
                    arg_error(&format!("--top wants a non-negative integer, got '{v}'"))
                });
            }
            "--baseline" => baseline = Some(value(&mut it, "--baseline")),
            "--current" => current = Some(value(&mut it, "--current")),
            "--tolerance" => {
                let v = value(&mut it, "--tolerance");
                tolerance = v.parse().ok().filter(|&t| t >= 1.0).unwrap_or_else(|| {
                    arg_error(&format!("--tolerance wants a ratio >= 1.0, got '{v}'"))
                });
            }
            flag if flag.starts_with('-') => arg_error(&format!("unknown flag '{flag}'")),
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => arg_error(&format!(
                "unexpected argument '{other}' (experiment already given)"
            )),
        }
    }
    Args {
        experiment: experiment.unwrap_or_else(|| "help".into()),
        scale,
        bench,
        metrics,
        trace,
        count,
        seed,
        json,
        tenants,
        top,
        baseline,
        current,
        tolerance,
    }
}

fn benches(filter: &Option<String>) -> Vec<Benchmark> {
    match filter {
        Some(name) => vec![by_name(name).unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}'");
            std::process::exit(1);
        })],
        None => all_benchmarks(),
    }
}

fn main() {
    let args = parse_args();
    let cfg = ArchConfig::paper_default();
    match args.experiment.as_str() {
        "list" => list_benchmarks(),
        "table1" => table1(&cfg),
        "table2" => with_evals(&args, cfg, table2_cmd),
        "fig2" => with_evals(&args, cfg, fig2),
        "fig3" => with_evals(&args, cfg, fig3),
        "fig4" => with_evals(&args, cfg, fig4),
        "fig5" => fig5(&args, cfg),
        "fig6" => with_evals(&args, cfg, fig6),
        "fig13" => with_evals(&args, cfg, fig13),
        "fig14" => fig14(&args, cfg),
        "fig15" => with_evals(&args, cfg, fig15),
        "fig16" => with_evals(&args, cfg, fig16),
        "fig17" => fig17(&args),
        "explain" => explain_cmd(&args, cfg),
        "profile" => profile_cmd(&args, cfg),
        "gate" => gate_cmd(&args),
        "ablation-routing" => ablation_routing(&args, cfg),
        "ablation-coarse" => ablation_coarse(&args, cfg),
        "ablation-k" => ablation_k(&args, cfg),
        "ablation-markov" => ablation_markov(&args, cfg),
        "ablation-layout" => ablation_layout(&args, cfg),
        "fuse" => fuse_cmd(&args, cfg),
        "check" => check_cmd(&args, cfg),
        "lint" => lint_cmd(&args, cfg),
        "scale" => scale_cmd(&args),
        "fuzz" => fuzz_cmd(&args, cfg),
        "gen" => gen_cmd(&args),
        "all" => {
            table1(&cfg);
            let evals = eval_benches(&args, cfg);
            table2_cmd(&evals);
            fig2(&evals);
            fig3(&evals);
            fig4(&evals);
            fig5(&args, cfg);
            fig6(&evals);
            fig13(&evals);
            fig14(&args, cfg);
            fig15(&evals);
            fig16(&evals);
            fig17(&args);
            explain_cmd(&args, cfg);
            ablation_routing(&args, cfg);
            ablation_coarse(&args, cfg);
            ablation_k(&args, cfg);
            ablation_markov(&args, cfg);
            ablation_layout(&args, cfg);
            fuse_cmd(&args, cfg);
        }
        "help" => usage(),
        other => arg_error(&format!("unknown experiment '{other}'")),
    }
}

/// Evaluate the selected benchmarks in parallel (ordered, deterministic)
/// and hand the slice to the printing closure.
fn with_evals(args: &Args, cfg: ArchConfig, f: impl Fn(&[exp::BenchmarkEvaluation])) {
    f(&eval_benches(args, cfg));
}

fn eval_benches(args: &Args, cfg: ArchConfig) -> Vec<exp::BenchmarkEvaluation> {
    let list = benches(&args.bench);
    let obs = args.obs_level();
    if !obs.any() {
        return ndc_par::parallel_map(&list, |b| exp::evaluate_benchmark(b, cfg, args.scale));
    }
    let pairs = ndc_par::parallel_map(&list, |b| {
        exp::evaluate_benchmark_obs(b, cfg, args.scale, obs)
    });
    let (mut evals, mut all_obs) = (Vec::new(), Vec::new());
    for (e, o) in pairs {
        evals.push(e);
        all_obs.push(o);
    }
    write_obs_outputs(args, &evals, &all_obs);
    evals
}

/// Write `--metrics` / `--trace` artifacts collected from the shared
/// benchmark evaluation. Benchmarks and runs appear in job input
/// order, so the files are byte-identical under any `NDC_THREADS`.
fn write_obs_outputs(args: &Args, evals: &[exp::BenchmarkEvaluation], all_obs: &[exp::BenchObs]) {
    if let Some(path) = &args.metrics {
        let mut bench_arr = Vec::new();
        for (e, o) in evals.iter().zip(all_obs) {
            let runs: Vec<Json> = o
                .per_run
                .iter()
                .map(|(label, m)| {
                    Json::obj()
                        .with("run", label.as_str())
                        .with("metrics", m.to_json())
                })
                .collect();
            bench_arr.push(Json::obj().with("name", e.name.as_str()).with("runs", runs));
        }
        let doc = Json::obj()
            .with("experiment", args.experiment.as_str())
            .with("scale", format!("{:?}", args.scale))
            .with("benchmarks", bench_arr);
        write_json(path, &doc);
    }
    if let Some(path) = &args.trace {
        // One Chrome-trace process per (benchmark, run); trace_json
        // assigns pids in slice order.
        let mut runs = Vec::new();
        for (e, o) in evals.iter().zip(all_obs) {
            for (label, events) in &o.per_run_events {
                runs.push((format!("{}/{}", e.name, label), events.clone()));
            }
        }
        write_json(path, &ndc::obs::trace_json(&runs));
    }
}

fn write_json(path: &str, doc: &Json) {
    let mut text = doc.render();
    text.push('\n');
    match std::fs::write(path, text) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn list_benchmarks() {
    println!("== Benchmarks (paper §3: SPECOMP + SPLASH-2) ==");
    println!(
        "{:<10} {:<9} {:<17} {:>9} {:>7} {:>9}",
        "name", "suite", "pattern", "arrays", "nests", "KB"
    );
    for b in all_benchmarks() {
        let p = b.build(Scale::Paper);
        println!(
            "{:<10} {:<9} {:<17} {:>9} {:>7} {:>9}",
            b.name,
            format!("{:?}", b.suite),
            format!("{:?}", b.pattern),
            p.arrays.len(),
            p.nests.len(),
            p.footprint() / 1024,
        );
    }
    println!();
}

fn table1(cfg: &ArchConfig) {
    println!("== Table 1: simulated configuration ==");
    println!(
        "Mesh: {}x{} 2D mesh, XY routing, {}B links, {}-cycle router pipeline",
        cfg.noc.width, cfg.noc.height, cfg.noc.link_bytes, cfg.noc.hop_cycles
    );
    println!(
        "L1: {} KB/node, {}B lines, {}-way, {}-cycle",
        cfg.l1.size_bytes / 1024,
        cfg.l1.line_bytes,
        cfg.l1.ways,
        cfg.l1.latency
    );
    println!(
        "L2: {} KB/node, {}B lines, {}-way, {}-cycle, line-interleaved static NUCA",
        cfg.l2.size_bytes / 1024,
        cfg.l2.line_bytes,
        cfg.l2.ways,
        cfg.l2.latency
    );
    println!(
        "Memory: {} controllers, {} KB interleave, {} banks/device, {} rows/bank, {} KB row buffers",
        cfg.mem.num_controllers,
        cfg.mem.interleave_bytes / 1024,
        cfg.mem.dram.banks_per_device,
        cfg.mem.dram.rows_per_bank,
        cfg.mem.dram.row_bytes / 1024
    );
    println!(
        "Cores: {}-issue, 1 thread/core, {} MSHRs; offloading: all arithmetic/logic ops",
        cfg.issue_width, cfg.mshrs
    );
    println!();
}

fn table2_cmd(evals: &[exp::BenchmarkEvaluation]) {
    println!("== Table 2: L1/L2 miss-estimation accuracy (%) ==");
    println!("{:<10} {:>6} {:>6}", "bench", "L1", "L2");
    let rows = exp::table2(evals);
    let (mut l1s, mut l2s) = (Vec::new(), Vec::new());
    for (name, r) in &rows {
        println!(
            "{:<10} {:>6.1} {:>6.1}",
            name, r.l1_accuracy_pct, r.l2_accuracy_pct
        );
        l1s.push(r.l1_accuracy_pct);
        l2s.push(r.l2_accuracy_pct);
    }
    println!(
        "{:<10} {:>6.1} {:>6.1}   (paper: 81.1 / 72.9)",
        "average",
        ndc_types::mean(&l1s),
        ndc_types::mean(&l2s)
    );
    println!();
}

fn fig2(evals: &[exp::BenchmarkEvaluation]) {
    println!("== Figure 2: arrival-window CDFs (%, truncated at 50) ==");
    let loc_names = [
        "link buffer",
        "L2 controller",
        "memory controller",
        "main memory",
    ];
    let rows = exp::figure2(evals);
    for (li, lname) in loc_names.iter().enumerate() {
        println!("--- ({}) {} ---", (b'a' + li as u8) as char, lname);
        print!("{:<10}", "bench");
        for l in BUCKET_LABELS {
            print!(" {l:>6}");
        }
        println!();
        for (name, per_loc) in &rows {
            print!("{name:<10}");
            for v in per_loc[li] {
                print!(" {v:>6.1}");
            }
            println!();
        }
    }
    println!();
}

fn fig3(evals: &[exp::BenchmarkEvaluation]) {
    println!("== Figure 3: breakeven points vs arrival windows (% per bucket) ==");
    let f3 = exp::figure3(evals);
    let loc_names = [
        "link buffer",
        "cache controller",
        "memory controller",
        "main memory",
    ];
    print!("{:<34}", "location / series");
    for l in BUCKET_LABELS {
        print!(" {l:>6}");
    }
    println!();
    for (i, lname) in loc_names.iter().enumerate() {
        print!("{:<34}", format!("{lname} arrival window"));
        for v in f3.windows[i].percentages() {
            print!(" {v:>6.1}");
        }
        println!();
        print!("{:<34}", format!("{lname} breakeven point"));
        for v in f3.breakevens[i].percentages() {
            print!(" {v:>6.1}");
        }
        println!();
    }
    println!();
}

fn fig4(evals: &[exp::BenchmarkEvaluation]) {
    println!("== Figure 4: performance benefit over original (%) ==");
    let rows = exp::figure4(evals);
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7} {:>7}",
        "bench", "default", "oracle", "w5%", "w10%", "w25%", "w50%", "lastwait", "alg1", "alg2"
    );
    for r in &rows {
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>7.1} {:>7.1}",
            r.name,
            r.schemes[0],
            r.schemes[1],
            r.schemes[2],
            r.schemes[3],
            r.schemes[4],
            r.schemes[5],
            r.schemes[6],
            r.alg1,
            r.alg2
        );
    }
    let g = |f: &dyn Fn(&exp::Figure4Row) -> f64| {
        geomean_improvement(&rows.iter().map(f).collect::<Vec<_>>())
    };
    println!(
        "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>7.1} {:>7.1}",
        "geomean",
        g(&|r| r.schemes[0]),
        g(&|r| r.schemes[1]),
        g(&|r| r.schemes[2]),
        g(&|r| r.schemes[3]),
        g(&|r| r.schemes[4]),
        g(&|r| r.schemes[5]),
        g(&|r| r.schemes[6]),
        g(&|r| r.alg1),
        g(&|r| r.alg2),
    );
    println!("(paper geomeans: default -16.7, oracle +29.3, wait -15.1..-13.4, lastwait -4.3, alg1 +22.5, alg2 +25.2)");
    println!();
}

fn fig5(args: &Args, cfg: ArchConfig) {
    println!("== Figure 5: 30 consecutive arrival windows of one instruction ==");
    let names = ["ocean", "radiosity"];
    let lines = ndc_par::parallel_map(&names, |name| {
        let bench = by_name(name).unwrap();
        let eval = exp::evaluate_benchmark(&bench, cfg, args.scale);
        let series = exp::figure5(&eval, 30);
        series
            .iter()
            .map(|w| w.map_or("-".into(), |c| c.to_string()))
            .collect::<Vec<String>>()
            .join(" ")
    });
    for (name, line) in names.iter().zip(&lines) {
        println!("{name:<10} {line}");
    }
    println!("(- = operands never co-located for that instance)");
    println!();
}

fn breakdown(rows: &[exp::BreakdownRow], title: &str, paper_avg: &str) {
    println!("== {title} ==");
    println!(
        "{:<10} {:>7} {:>8} {:>6} {:>7}",
        "bench", "cache", "network", "MC", "memory"
    );
    for r in rows {
        // Paper order: cache, network, MC, memory.
        println!(
            "{:<10} {:>7.1} {:>8.1} {:>6.1} {:>7.1}",
            r.name,
            r.pct[NdcLocation::CacheController.index()],
            r.pct[NdcLocation::LinkBuffer.index()],
            r.pct[NdcLocation::MemoryController.index()],
            r.pct[NdcLocation::MemoryBank.index()]
        );
    }
    let avg = exp::breakdown_average(rows);
    println!(
        "{:<10} {:>7.1} {:>8.1} {:>6.1} {:>7.1}   (paper avg: {paper_avg})",
        "average",
        avg[NdcLocation::CacheController.index()],
        avg[NdcLocation::LinkBuffer.index()],
        avg[NdcLocation::MemoryController.index()],
        avg[NdcLocation::MemoryBank.index()]
    );
    println!();
}

fn fig6(evals: &[exp::BenchmarkEvaluation]) {
    breakdown(
        &exp::figure6(evals),
        "Figure 6: oracle NDC location breakdown (%)",
        "25.9 / 36.0 / 21.7 / 16.4",
    );
}

fn fig13(evals: &[exp::BenchmarkEvaluation]) {
    breakdown(
        &exp::figure13(evals),
        "Figure 13: Algorithm-1 NDC location breakdown (%)",
        "similar shape to Figure 6",
    );
    let fracs: Vec<f64> = evals
        .iter()
        .map(|e| 100.0 * e.alg1.0.ndc_fraction())
        .collect();
    println!(
        "footnote 6: {:.1}% of arithmetic/logic instructions executed as NDC (paper: ~32%)",
        ndc_types::mean(&fracs)
    );
    println!();
}

fn fig14(args: &Args, cfg: ArchConfig) {
    println!("== Figure 14: Algorithm 1 restricted to a single component (%) ==");
    println!(
        "{:<10} {:>7} {:>8} {:>6} {:>7} {:>6}",
        "bench", "cache", "network", "MC", "memory", "all"
    );
    let list = benches(&args.bench);
    let rows = ndc_par::parallel_map(&list, |b| exp::figure14(b, cfg, args.scale));
    for r in &rows {
        println!(
            "{:<10} {:>7.1} {:>8.1} {:>6.1} {:>7.1} {:>6.1}",
            r.name,
            r.isolated[NdcLocation::CacheController.index()],
            r.isolated[NdcLocation::LinkBuffer.index()],
            r.isolated[NdcLocation::MemoryController.index()],
            r.isolated[NdcLocation::MemoryBank.index()],
            r.all
        );
    }
    println!("(the paper notes per-component sums exceed the combined run: a computation");
    println!(" performed in one component is not re-performed in another)");
    println!();
}

fn fig15(evals: &[exp::BenchmarkEvaluation]) {
    println!("== Figure 15: NDC opportunities exercised by Algorithm 2 (%) ==");
    let rows = exp::figure15(evals);
    let mut vals = Vec::new();
    for (name, pct) in &rows {
        println!("{name:<10} {pct:>6.1}");
        vals.push(*pct);
    }
    println!(
        "{:<10} {:>6.1}   (paper avg: 81.8)",
        "average",
        ndc_types::mean(&vals)
    );
    println!();
}

fn fig16(evals: &[exp::BenchmarkEvaluation]) {
    println!("== Figure 16: L1/L2 miss rates (%) under Algorithms 1 and 2 ==");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "bench", "L1 alg1", "L1 alg2", "L2 alg1", "L2 alg2"
    );
    for r in exp::figure16(evals) {
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            r.name, r.l1_alg1, r.l1_alg2, r.l2_alg1, r.l2_alg2
        );
    }
    println!("(paper: Algorithm 2's rates are lower than Algorithm 1's in all programs)");
    println!();
}

fn fig17(args: &Args) {
    println!("== Figure 17: sensitivity study (geomean improvement %) ==");
    println!(
        "{:<32} {:>7} {:>7} {:>7}",
        "configuration", "alg1", "alg2", "oracle"
    );
    for r in exp::figure17(args.scale) {
        println!(
            "{:<32} {:>7.1} {:>7.1} {:>7.1}",
            r.label, r.alg1, r.alg2, r.oracle
        );
    }
    println!(
        "(paper: larger meshes help; L2 capacity is neutral; +/- restriction gives 14.1/16.5)"
    );
    println!();
}

/// `explain`: cross-check the compiler's offload cost model against
/// the simulator's measured issue→result-at-core latencies, per NDC
/// location, for every selected benchmark. With `--bench` the spans
/// are sampled more densely and the per-segment latency decomposition,
/// the slowest sampled request trees, and the planner's per-chain
/// decision provenance are printed too.
fn explain_cmd(args: &Args, cfg: ArchConfig) {
    let detail = args.bench.is_some();
    let one_in = if detail {
        8
    } else {
        exp::EXPLAIN_SAMPLE_ONE_IN
    };
    let list = benches(&args.bench);
    let reports = ndc_par::parallel_map(&list, |b| {
        exp::explain_benchmark(b, cfg, args.scale, one_in)
    });

    // Aggregate model accuracy over the (benchmark × location) matrix:
    // absolute relative error of the reuse-derived model and of the
    // retired CME heuristic, on exactly the cells where the simulator
    // measured offloads. The new model must beat the legacy mean —
    // `ndc-eval gate` holds this via BENCH_model_accuracy.json.
    let mut acc_rows: Vec<Json> = Vec::new();
    let mut errs_new: Vec<f64> = Vec::new();
    let mut errs_legacy: Vec<f64> = Vec::new();
    for r in &reports {
        for loc in ALL_NDC_LOCATIONS {
            let a = r.offload.per_location[loc.index()];
            let l = r.offload_legacy.per_location[loc.index()];
            let (Some(en), Some(el)) = (a.error_pct(), l.error_pct()) else {
                continue;
            };
            errs_new.push(en);
            errs_legacy.push(el);
            acc_rows.push(
                Json::obj()
                    .with("name", r.name.as_str())
                    .with("location", loc.paper_label())
                    .with("measured_cycles", a.measured_cycles)
                    .with("predicted_cycles", a.predicted_cycles)
                    .with("predicted_cycles_legacy", l.predicted_cycles)
                    .with("error_pct", en)
                    .with("error_pct_legacy", el),
            );
        }
    }
    let agg = |v: &[f64]| -> (f64, f64) {
        if v.is_empty() {
            (0.0, 0.0)
        } else {
            (ndc_types::mean(v), v.iter().cloned().fold(0.0, f64::max))
        }
    };
    let (mean_new, max_new) = agg(&errs_new);
    let (mean_legacy, max_legacy) = agg(&errs_legacy);
    let beats = !errs_new.is_empty() && mean_new < mean_legacy;
    let summary = Json::obj()
        .with("cells", errs_new.len() as u64)
        .with("mean_abs_rel_error_pct", mean_new)
        .with("max_abs_rel_error_pct", max_new)
        .with("mean_abs_rel_error_pct_legacy", mean_legacy)
        .with("max_abs_rel_error_pct_legacy", max_legacy)
        .with("model_beats_legacy", beats);
    if !detail {
        // Full-sweep accuracy artifact for the CI gate.
        let doc = Json::obj()
            .with("experiment", "model_accuracy")
            .with("scale", format!("{:?}", args.scale))
            .with("summary", summary.clone())
            .with("rows", acc_rows);
        write_json("BENCH_model_accuracy.json", &doc);
    }

    if args.json {
        let bench_arr: Vec<Json> = reports
            .iter()
            .map(|r| {
                let offload: Vec<Json> = ALL_NDC_LOCATIONS
                    .iter()
                    .map(|loc| {
                        let a = r.offload.per_location[loc.index()];
                        let l = r.offload_legacy.per_location[loc.index()];
                        Json::obj()
                            .with("location", loc.paper_label())
                            .with("predicted_cycles", a.predicted_cycles)
                            .with("predicted_cycles_legacy", l.predicted_cycles)
                            .with("measured_cycles", a.measured_cycles)
                            .with("samples", a.samples)
                            .with("error_pct", a.error_pct().map_or(Json::Null, Json::Num))
                            .with(
                                "error_pct_legacy",
                                l.error_pct().map_or(Json::Null, Json::Num),
                            )
                    })
                    .collect();
                let top: Vec<Json> = r
                    .top_slowest(5)
                    .iter()
                    .map(|t| {
                        Json::obj()
                            .with("id", t.id)
                            .with("latency", t.latency())
                            .with("tree", ndc::sim::render_tree(t))
                    })
                    .collect();
                Json::obj()
                    .with("name", r.name.as_str())
                    .with("total_cycles", r.result.total_cycles)
                    .with("sampled_spans", r.spans.len())
                    .with("offload", offload)
                    .with("top", top)
            })
            .collect();
        let doc = Json::obj()
            .with("experiment", "explain")
            .with("scale", format!("{:?}", args.scale))
            .with("span_one_in", one_in)
            .with("model_accuracy", summary)
            .with("benchmarks", bench_arr);
        println!("{}", doc.render());
        return;
    }

    println!("== Explain: compiler cost model vs measured offload cycles (alg2) ==");
    // Paper breakdown order: cache, network, MC, memory.
    let locs = [
        NdcLocation::CacheController,
        NdcLocation::LinkBuffer,
        NdcLocation::MemoryController,
        NdcLocation::MemoryBank,
    ];
    for loc in locs {
        println!("-- {} --", loc.paper_label());
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>8} {:>7} {:>8}",
            "bench", "predicted", "legacy", "measured", "samples", "err%", "leg-err%"
        );
        let mut errs = Vec::new();
        let mut lerrs = Vec::new();
        for r in &reports {
            let a = r.offload.per_location[loc.index()];
            let l = r.offload_legacy.per_location[loc.index()];
            let err = match a.error_pct() {
                Some(e) => {
                    errs.push(e);
                    format!("{e:.1}")
                }
                None => "-".into(),
            };
            let lerr = match l.error_pct() {
                Some(e) => {
                    lerrs.push(e);
                    format!("{e:.1}")
                }
                None => "-".into(),
            };
            println!(
                "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>8} {:>7} {:>8}",
                r.name,
                a.predicted_cycles,
                l.predicted_cycles,
                a.measured_cycles,
                a.samples,
                err,
                lerr
            );
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}", ndc_types::mean(v))
            }
        };
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>8} {:>7} {:>8}",
            "average",
            "",
            "",
            "",
            "",
            avg(&errs),
            avg(&lerrs)
        );
        println!();
    }
    println!(
        "-- model accuracy over {} measured cells --",
        errs_new.len()
    );
    println!(
        "reuse model:  mean {mean_new:.1}%  max {max_new:.1}%\n\
         legacy model: mean {mean_legacy:.1}%  max {max_legacy:.1}%\n\
         model_beats_legacy: {beats}"
    );
    println!();
    if detail {
        explain_detail(&reports[0], one_in);
    }
}

/// The `--bench` detail of [`explain_cmd`]: decomposition, slowest
/// request trees, and the compiler's decision provenance.
fn explain_detail(r: &exp::ExplainReport, one_in: u32) {
    let total: u64 = r.spans.iter().map(|t| t.latency()).sum();
    println!(
        "-- {}: latency decomposition over {} sampled requests (one in {one_in}) --",
        r.name,
        r.spans.len()
    );
    println!("{:<10} {:>12} {:>7}", "segment", "cycles", "%");
    for (seg, cycles) in ndc::sim::decompose(&r.spans) {
        let pct = if total > 0 {
            100.0 * cycles as f64 / total as f64
        } else {
            0.0
        };
        println!("{seg:<10} {cycles:>12} {pct:>7.1}");
    }
    println!();

    println!("-- {}: slowest sampled requests --", r.name);
    for t in r.top_slowest(5) {
        print!("{}", ndc::sim::render_tree(t));
    }
    println!();

    println!("-- {}: compiler decision provenance (alg2) --", r.name);
    for chain in &r.compiler.provenance {
        println!(
            "nest {} stmt {}: {} (pL1 {:.2}/{:.2}, same-line {:.2})",
            chain.nest, chain.stmt, chain.outcome, chain.p_l1_a, chain.p_l1_b, chain.same_l1_line
        );
        // Fusion provenance: which packet absorbed the chain (the
        // packet's union-footprint bytes are charged once per group,
        // reconciling with the per-candidate bytes below), or why the
        // fusion pass declined.
        if let (Some(g), Some(t)) = (chain.chain_group, chain.final_target) {
            if chain.outcome == ndc::compiler::outcome::FUSED {
                println!(
                    "    fused into packet {} @ {} (union cycles={:.1} byte-hops={})",
                    g,
                    t.paper_label(),
                    chain.fused_predicted_cycles.unwrap_or(0.0),
                    chain.fused_predicted_bytes.unwrap_or(0)
                );
            }
        }
        if let Some(note) = chain.fuse_note {
            if note != ndc::compiler::fuse_note::FUSED {
                println!("    fusion declined: {note}");
            }
        }
        // The analysis facts behind the predictions: per-operand reuse
        // class and line counts with their Exact/Bound soundness tags,
        // the pair's shared/union line structure, and the hottest
        // projected NoC link of the chain's traffic.
        if let Some(ru) = &chain.reuse {
            for (slot, f) in [("a", &ru.a), ("b", &ru.b)] {
                println!(
                    "    reuse[{slot}] {}: {} l2-lines={} ({}) dram-bytes={} ({})",
                    f.array,
                    f.class.label(),
                    f.l2_lines.value,
                    f.l2_lines.tag.label(),
                    f.dram_bytes.value,
                    f.dram_bytes.tag.label()
                );
            }
            let link = match ru.max_link {
                Some((from, to)) => format!("{from}->{to} ({} B)", ru.max_link_bytes),
                None => "-".into(),
            };
            println!(
                "    reuse[pair] shared-l2-iters={} union-l2-lines={} max-link={link}",
                ru.shared_l2_iters, ru.union_l2_lines
            );
        }
        for c in &chain.candidates {
            println!(
                "    {:<8} coloc={:.2} cycles={:>8.1} legacy={:>8.1} byte-hops={:>12}  {}",
                c.location.paper_label(),
                c.colocation,
                c.predicted_cycles,
                c.predicted_cycles_legacy,
                c.predicted_bytes_moved,
                c.reason
            );
        }
    }
    println!();
}

/// One line of quantiles from a latency sketch: count plus
/// p50/p90/p99/max (blank when the sketch is empty).
fn sketch_cells(s: &ndc::obs::sketch::QuantileSketch) -> (u64, String, String, String, String) {
    let q = |p: u64| {
        s.quantile_pct(p)
            .map_or_else(|| "-".into(), |v| v.to_string())
    };
    let max = s.max().map_or_else(|| "-".into(), |v| v.to_string());
    (s.count(), q(50), q(90), q(99), max)
}

fn profile_cmd(args: &Args, cfg: ArchConfig) {
    let detail = args.bench.is_some();
    let one_in = if detail {
        8
    } else {
        exp::PROFILE_SAMPLE_ONE_IN
    };
    let list = benches(&args.bench);
    let reports = ndc_par::parallel_map(&list, |b| {
        exp::profile_benchmark(b, cfg, args.scale, args.tenants, one_in)
    });

    if args.json {
        let bench_arr: Vec<Json> = reports
            .iter()
            .map(|r| {
                let top: Vec<Json> = r
                    .top_slowest(args.top)
                    .iter()
                    .map(|t| {
                        Json::obj()
                            .with("id", t.id)
                            .with("latency", t.latency())
                            .with("tree", ndc::sim::render_tree(t))
                    })
                    .collect();
                Json::obj()
                    .with("name", r.name.as_str())
                    .with("total_cycles", r.result.total_cycles)
                    .with("events_dropped", r.events_dropped)
                    .with("tenants", r.ledger.to_json())
                    .with("top", top)
            })
            .collect();
        let doc = Json::obj()
            .with("experiment", "profile")
            .with("scale", format!("{:?}", args.scale))
            .with("tenants", args.tenants as u64)
            .with("span_one_in", one_in)
            .with("benchmarks", bench_arr);
        println!("{}", doc.render());
        return;
    }

    println!(
        "== Profile: per-tenant attribution, {} tenant(s) round-robin over {} cores (alg2) ==",
        args.tenants,
        cfg.nodes()
    );
    for r in &reports {
        println!("-- {} --", r.name);
        println!(
            "{:<7} {:>10} {:>6} {:>10} {:>12} {:>12} {:>12}",
            "tenant", "requests", "util%", "noc_msgs", "flit_hops", "dram_bytes", "offload_cyc"
        );
        let total_cycles: u64 = r.ledger.rows().iter().map(|t| t.request_cycles).sum();
        for (t, row) in r.ledger.rows().iter().enumerate() {
            let util = if total_cycles > 0 {
                100.0 * row.request_cycles as f64 / total_cycles as f64
            } else {
                0.0
            };
            println!(
                "{:<7} {:>10} {:>6.1} {:>10} {:>12} {:>12} {:>12}",
                t,
                row.requests,
                util,
                row.noc_messages,
                row.noc_flit_hops,
                row.dram_bytes,
                row.ndc_offload_cycles.iter().sum::<u64>()
            );
        }
        println!(
            "{:<7} {:>10} {:>8} {:>8} {:>8} {:>8}   (request latency, cycles)",
            "tenant", "count", "p50", "p90", "p99", "max"
        );
        for (t, row) in r.ledger.rows().iter().enumerate() {
            let (n, p50, p90, p99, max) = sketch_cells(&row.latency);
            println!("{t:<7} {n:>10} {p50:>8} {p90:>8} {p99:>8} {max:>8}");
        }
        if r.events_dropped > 0 {
            println!("(trace ring dropped {} events)", r.events_dropped);
        }
        if detail {
            println!();
            println!(
                "-- {}: slowest sampled requests (one in {one_in}) --",
                r.name
            );
            for t in r.top_slowest(args.top) {
                print!("{}", ndc::sim::render_tree(t));
            }
        }
        println!();
    }
}

/// `gate`: compare a freshly generated `BENCH_*.json` (`--current`)
/// against a committed baseline (`--baseline`). Simulated counters
/// must match exactly; wall-clock keys gate on `--tolerance`;
/// `NDC_BENCH_REBASE=1` skips the comparison.
fn gate_cmd(args: &Args) {
    let Some(baseline) = &args.baseline else {
        arg_error("gate requires --baseline <path>");
    };
    let Some(current_path) = &args.current else {
        arg_error("gate requires --current <path>");
    };
    let text = std::fs::read_to_string(current_path).unwrap_or_else(|e| {
        eprintln!("gate: cannot read current {current_path}: {e}");
        std::process::exit(1);
    });
    let current = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("gate: cannot parse current {current_path}: {e}");
        std::process::exit(1);
    });
    match bench::baseline::gate_against_file(baseline, &current, args.tolerance) {
        Ok(diffs) if diffs.is_empty() => {
            println!("gate: {current_path} matches baseline {baseline}");
        }
        Ok(diffs) => {
            eprintln!("gate: {current_path} DIVERGES from baseline {baseline}:");
            for d in &diffs {
                eprintln!("  {d}");
            }
            eprintln!("(rerun with NDC_BENCH_REBASE=1 to accept the new numbers)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
}

fn ablation_routing(args: &Args, cfg: ArchConfig) {
    println!("== Ablation: route reshaping (router NDC counts) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "bench", "with", "without", "drop%"
    );
    let list = benches(&args.bench);
    let rows = ndc_par::parallel_map(&list, |b| exp::ablation_routing(b, cfg, args.scale));
    let mut drops = Vec::new();
    for r in &rows {
        let drop = if r.router_ndc_with > 0 {
            100.0 * (r.router_ndc_with - r.router_ndc_without) as f64 / r.router_ndc_with as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:>10} {:>10} {:>8.1}",
            r.name, r.router_ndc_with, r.router_ndc_without, drop
        );
        if r.router_ndc_with > 0 {
            drops.push(drop);
        }
    }
    println!(
        "{:<10} {:>10} {:>10} {:>8.1}   (paper: ~40% fewer router NDC)",
        "average",
        "",
        "",
        ndc_types::mean(&drops)
    );
    println!();
}

fn ablation_k(args: &Args, cfg: ArchConfig) {
    println!("== Extension: Algorithm 2 reuse-threshold k sweep ==");
    let ks = [0u32, 1, 2, 4, 8];
    println!(
        "{:<10} {:>4} {:>10} {:>12}",
        "bench", "k", "improve%", "exercised%"
    );
    let names = if args.bench.is_some() {
        benches(&args.bench)
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
    } else {
        vec!["md", "water", "bt", "cholesky"]
    };
    let sweeps = ndc_par::parallel_map(&names, |name| {
        let b = by_name(name).unwrap();
        ndc::experiments::ablation_k(&b, cfg, args.scale, &ks)
    });
    for (name, rows) in names.iter().zip(&sweeps) {
        for r in rows {
            println!(
                "{:<10} {:>4} {:>10.1} {:>12.1}",
                name, r.k, r.improvement, r.exercised_pct
            );
        }
    }
    println!("(the paper evaluates k=0 and defers tuning to future work)");
    println!();
}

fn ablation_markov(args: &Args, cfg: ArchConfig) {
    println!("== Extension: Markov window predictor (vs Last-Wait, oracle) ==");
    println!(
        "{:<10} {:>9} {:>8} {:>8}",
        "bench", "lastwait", "markov", "oracle"
    );
    let list = benches(&args.bench);
    let rows = ndc_par::parallel_map(&list, |b| {
        ndc::experiments::ablation_markov(b, cfg, args.scale)
    });
    let (mut lw, mut mk) = (Vec::new(), Vec::new());
    for r in &rows {
        println!(
            "{:<10} {:>9.1} {:>8.1} {:>8.1}",
            r.name, r.last_wait, r.markov, r.oracle
        );
        lw.push(r.last_wait);
        mk.push(r.markov);
    }
    println!(
        "{:<10} {:>9.1} {:>8.1}          (paper: \"even a Markov Chain-based predictor\"",
        "geomean",
        geomean_improvement(&lw),
        geomean_improvement(&mk)
    );
    println!("                                      \"generated similar results\" to Last-Wait)");
    println!();
}

fn ablation_layout(args: &Args, cfg: ArchConfig) {
    println!("== Extension: data-layout optimization before Algorithm 2 ==");
    println!(
        "{:<10} {:>9} {:>12} {:>9}",
        "bench", "without", "with-layout", "aligned"
    );
    let list = benches(&args.bench);
    let rows = ndc_par::parallel_map(&list, |b| {
        ndc::experiments::ablation_layout(b, cfg, args.scale)
    });
    for r in &rows {
        println!(
            "{:<10} {:>9.1} {:>12.1} {:>9}",
            r.name, r.without, r.with_layout, r.chains_aligned
        );
    }
    println!("(the paper defers bank-remapping layout optimization to a future study)");
    println!();
}

/// `check`: run the correctness layer — the differential oracle over
/// every workload × candidate transform, the simulator invariant
/// checker on a `CheckLevel::full()` run per benchmark, and the seeded
/// fault-injection matrix proving each invariant fires. Exits 1 on any
/// failure; output is deterministic for any `NDC_THREADS`.
fn check_cmd(args: &Args, cfg: ArchConfig) {
    use ndc::check as chk;
    let quiet = args.json;
    if !quiet {
        println!("== Check: differential oracle + simulator invariants ==");
    }
    let list = benches(&args.bench);
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let mut failed = false;

    if !quiet {
        println!("-- differential oracle: reference vs every legal candidate transform --");
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>10}  result",
            "bench", "nests", "legal", "illegal", "oob-reads"
        );
    }
    let sweeps = ndc_par::parallel_map(&list, |b| {
        let prog = b.build_timesteps(args.scale, 1);
        chk::sweep_workload(&prog, 1)
    });
    let mut oracle_rows = Vec::new();
    for s in &sweeps {
        if !quiet {
            println!(
                "{:<10} {:>6} {:>6} {:>8} {:>10}  {}",
                s.workload,
                s.nests,
                s.legal_checked,
                s.illegal_skipped,
                s.oob_reads,
                if s.passed() { "ok" } else { "DIVERGED" }
            );
        }
        for f in &s.failures {
            failed = true;
            if !quiet {
                println!(
                    "    nest {} transform {:?}: {}",
                    f.nest, f.transform, f.divergence
                );
            }
        }
        oracle_rows.push(
            Json::obj()
                .with("bench", s.workload.as_str())
                .with("legal_checked", s.legal_checked as u64)
                .with("illegal_skipped", s.illegal_skipped as u64)
                .with("passed", s.passed()),
        );
    }

    if !quiet {
        println!();
        println!("-- simulator invariants: CheckLevel::full() under NdcAll w50% --");
        println!(
            "{:<10} {:>9} {:>6} {:>9} {:>6}  result",
            "bench", "requests", "links", "events", "spans"
        );
    }
    let reports = ndc_par::parallel_map(&list, |b| {
        let prog = b.build_timesteps(args.scale, 1);
        let traces = lower(&prog, &opts, None);
        let out = chk::simulate_checked(
            cfg,
            &traces,
            Scheme::NdcAll {
                budget: WaitBudget::PctOfCap(50),
            },
        );
        (b.name, out.spans.len(), chk::check_engine_output(&out))
    });
    let mut invariant_rows = Vec::new();
    for (name, spans, r) in &reports {
        if !quiet {
            println!(
                "{:<10} {:>9} {:>6} {:>9} {:>6}  {}",
                name,
                r.requests,
                r.links,
                r.events,
                spans,
                if r.ok() { "ok" } else { "VIOLATED" }
            );
        }
        let mut violations = Vec::new();
        for v in &r.violations {
            failed = true;
            if !quiet {
                println!("    {v}");
            }
            violations.push(Json::Str(v.to_string()));
        }
        invariant_rows.push(
            Json::obj()
                .with("bench", *name)
                .with("requests", r.requests as u64)
                .with("events", r.events as u64)
                .with("spans", *spans as u64)
                .with("ok", r.ok())
                .with("violations", Json::Arr(violations)),
        );
    }

    // Reuse-soundness cross-check: interpreter-measured distinct
    // line/byte footprints must equal every Exact-tagged static count
    // and never exceed a Bound-tagged one — the contract the
    // compiler's integer traffic model rests on.
    if !quiet {
        println!();
        println!("-- reuse soundness: measured footprints vs ndc-reuse static counts --");
        println!(
            "{:<10} {:>6} {:>6} {:>6}  result",
            "bench", "refs", "exact", "bound"
        );
    }
    let reuse_sums = ndc_par::parallel_map(&list, |b| {
        let prog = b.build_timesteps(args.scale, 1);
        (
            b.name,
            chk::cross_check_workload(&prog, cfg.l1.line_bytes, cfg.l2.line_bytes),
        )
    });
    let mut reuse_rows = Vec::new();
    for (name, s) in &reuse_sums {
        if !quiet {
            println!(
                "{:<10} {:>6} {:>6} {:>6}  {}",
                name,
                s.refs,
                s.exact_refs,
                s.bound_refs,
                if s.ok() { "ok" } else { "VIOLATED" }
            );
        }
        let mut violations = Vec::new();
        for v in &s.violations {
            failed = true;
            if !quiet {
                println!("    {v}");
            }
            violations.push(Json::Str(v.clone()));
        }
        reuse_rows.push(
            Json::obj()
                .with("bench", *name)
                .with("refs", s.refs as u64)
                .with("exact_refs", s.exact_refs as u64)
                .with("bound_refs", s.bound_refs as u64)
                .with("ok", s.ok())
                .with("violations", Json::Arr(violations)),
        );
    }

    // Fault matrices: a checked kdtree run, with every stream-level and
    // ledger-level fault class injected into a clean copy — each must
    // draw exactly the invariant that guards against it.
    if !quiet {
        println!();
        println!("-- fault-injection matrix: kdtree under NdcAll w50%, seed 0xC0FFEE --");
    }
    let prog = by_name("kdtree").unwrap().build_timesteps(args.scale, 1);
    let traces = lower(&prog, &opts, None);
    let out = chk::simulate_checked(
        cfg,
        &traces,
        Scheme::NdcAll {
            budget: WaitBudget::PctOfCap(50),
        },
    );
    let clean_result = out.result;
    let clean_data = out.check.expect("checked run records CheckData");
    let clean_ledger = out.ledger.expect("checked run collects the ledger");
    let mut fault_rows = Vec::new();
    if !quiet {
        println!("{:<24} {:<20}  result", "fault", "invariant");
    }
    let mut fault_row = |label: &str, invariant: &str, tripped: bool| {
        if !quiet {
            println!(
                "{:<24} {:<20}  {}",
                label,
                invariant,
                if tripped { "tripped" } else { "MISSED" }
            );
        }
        fault_rows.push(
            Json::obj()
                .with("fault", label)
                .with("invariant", invariant)
                .with("tripped", tripped),
        );
    };
    for (k, fault) in chk::ALL_FAULTS.iter().enumerate() {
        let mut data = clean_data.clone();
        let mut result = clean_result.clone();
        let injected = chk::inject(&mut data, &mut result, *fault, 0xC0FFEE + k as u64);
        let report = chk::check_run(&data, &result);
        let tripped = injected && report.violated(fault.expected_invariant());
        if !tripped {
            failed = true;
        }
        fault_row(fault.label(), fault.expected_invariant().label(), tripped);
    }
    for (k, fault) in chk::ALL_LEDGER_FAULTS.iter().enumerate() {
        let mut ledger = clean_ledger.clone();
        let injected = chk::inject_ledger(&mut ledger, *fault, 0xC0FFEE + k as u64);
        let violations = chk::check_ledger(&ledger, &clean_data, &clean_result);
        let tripped = injected
            && violations
                .iter()
                .any(|v| v.invariant == fault.expected_invariant());
        if !tripped {
            failed = true;
        }
        fault_row(fault.label(), fault.expected_invariant().label(), tripped);
    }
    {
        // A deliberately corrupted reuse vector must trip the
        // reuse-soundness cross-check.
        let mut report = ndc::reuse::analyze_program(&prog, cfg.l1.line_bytes, cfg.l2.line_bytes);
        let injected = chk::inject_reuse(&mut report, 0xC0FFEE);
        let sum =
            ndc::reuse::cross_check_program(&prog, &report, cfg.l1.line_bytes, cfg.l2.line_bytes);
        let tripped = injected && !sum.ok();
        if !tripped {
            failed = true;
        }
        fault_row(chk::CORRUPTED_REUSE_VECTOR, chk::REUSE_SOUNDNESS, tripped);
    }

    if quiet {
        let doc = Json::obj()
            .with("experiment", "check")
            .with("scale", format!("{:?}", args.scale))
            .with("oracle", Json::Arr(oracle_rows))
            .with("invariants", Json::Arr(invariant_rows))
            .with("reuse", Json::Arr(reuse_rows))
            .with("faults", Json::Arr(fault_rows))
            .with("ok", !failed);
        println!("{}", doc.render());
        if failed {
            std::process::exit(1);
        }
        return;
    }
    println!();
    if failed {
        println!("check: FAILED");
        std::process::exit(1);
    }
    println!("check: oracle clean, all invariants hold, every fault class detected");
    println!();
}

/// `lint`: run the static legality layer — IR verifier, affine bounds
/// prover, GCD/Banerjee refinement, `T·D` certificate engine, and race
/// detector — over every selected workload and both compiled schedules,
/// then the schedule-fault matrix proving each injected compiler bug
/// class draws exactly the lint error that guards against it. Exits 1
/// on any lint error, unproven bound, failed certificate
/// re-verification, or missed fault; output is deterministic for any
/// `NDC_THREADS`.
///
/// With `--bench` the per-workload detail is printed too: each
/// certificate's witnesses, the race report, and a deliberately-illegal
/// candidate transform with its printed certificate failure.
fn lint_cmd(args: &Args, cfg: ArchConfig) {
    println!("== Lint: static legality of every workload and shipped schedule ==");
    let list = benches(&args.bench);
    let mut failed = false;

    println!(
        "{:<10} {:<5} {:>7} {:>9} {:>8} {:>6} {:>6} {:>11}  result",
        "bench", "alg", "errors", "unproven", "refined", "races", "certs", "transforms"
    );
    let rows = ndc_par::parallel_map(&list, |b| {
        let prog = b.build_timesteps(args.scale, 1);
        let (s1, r1) = compile_algorithm1(&prog, &cfg, cfg.nodes());
        let (s2, r2) = compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
        let out = [("alg1", s1, r1), ("alg2", s2, r2)].map(|(alg, sched, rep)| {
            let lint = ndc::lint::lint_schedule(&prog, &sched);
            // Every certificate the compiler attached must re-verify
            // independently against the IR — not just lint cleanly.
            let certs_ok = rep.certificates.iter().all(|c| {
                prog.nests
                    .iter()
                    .find(|n| n.id == c.nest)
                    .is_some_and(|n| ndc::lint::verify_certificate(n, c).is_ok())
            });
            (alg, rep.transforms_applied, lint, certs_ok)
        });
        (prog, out)
    });
    for (_, out) in &rows {
        for (alg, transforms, lint, certs_ok) in out {
            let ok = lint.accepted() && *certs_ok;
            if !ok {
                failed = true;
            }
            println!(
                "{:<10} {:<5} {:>7} {:>9} {:>8} {:>6} {:>6} {:>11}  {}",
                lint.workload,
                alg,
                lint.errors.len(),
                lint.unproven_bounds(),
                lint.refine.total(),
                lint.races.len(),
                lint.certificates.len(),
                transforms,
                if ok { "ok" } else { "REJECTED" }
            );
            for e in &lint.errors {
                println!("    {e}");
            }
            if !certs_ok {
                println!("    certificate re-verification FAILED");
            }
        }
    }

    println!();
    println!("-- schedule-fault matrix: corrupted schedules must draw their lint error --");
    println!("{:<24} {:<10} {:<26}  result", "fault", "bench", "expected");
    for (k, fault) in ndc::check::ALL_SCHEDULE_FAULTS.iter().enumerate() {
        // First selected workload with an injection site (deterministic).
        let mut drawn = None;
        for (prog, _) in &rows {
            let mut sched = Schedule::default();
            if !ndc::check::inject_schedule(prog, &mut sched, *fault, 0xC0FFEE + k as u64) {
                continue;
            }
            let report = ndc::lint::lint_schedule(prog, &sched);
            let hit = report
                .errors
                .iter()
                .any(|e| e.label() == fault.expected_lint());
            drawn = Some((prog.name.clone(), hit));
            break;
        }
        let (bench, hit) = drawn.unwrap_or(("-".into(), false));
        if !hit {
            failed = true;
        }
        println!(
            "{:<24} {:<10} {:<26}  {}",
            fault.label(),
            bench,
            fault.expected_lint(),
            if hit { "drawn" } else { "MISSED" }
        );
    }

    if args.bench.is_some() {
        lint_detail(&rows[0].0, &rows[0].1);
    }

    println!();
    if failed {
        println!("lint: FAILED");
        std::process::exit(1);
    }
    println!("lint: all schedules certified, all bounds proven, every fault class drawn");
    println!();
}

/// The `--bench` detail of [`lint_cmd`]: certificate witnesses, the
/// race report, and a deliberately-illegal transform with its printed
/// certificate failure.
fn lint_detail(prog: &Program, out: &[(&str, u64, ndc::lint::LintReport, bool); 2]) {
    println!();
    println!("-- {}: certificates (alg1/alg2) --", prog.name);
    let mut any = false;
    for (alg, _, lint, _) in out {
        for cert in &lint.certificates {
            any = true;
            println!(
                "{alg}: nest {} transform {:?}: {} witnesses, {} edges refined away",
                cert.nest.0,
                cert.transform,
                cert.witnesses.len(),
                cert.refined_away
            );
            for w in &cert.witnesses {
                println!(
                    "    stmt {} -> stmt {} on array {}: T·{:?} = {:?}, pivot {}",
                    w.src.0, w.dst.0, w.array.0, w.distance, w.image, w.pivot
                );
            }
        }
    }
    if !any {
        println!("(no transforms adopted; identity schedules need no certificate)");
    }

    println!();
    println!(
        "-- {}: race report (parallel-partition dimension) --",
        prog.name
    );
    let races = &out[0].2.races;
    if races.is_empty() {
        println!("(no loop-carried dependence crosses the partitioned dimension)");
    }
    for r in races {
        println!("{r}");
    }

    println!();
    println!(
        "-- {}: a deliberately-illegal transform, refused --",
        prog.name
    );
    let mut shown = false;
    'nests: for nest in &prog.nests {
        let identity = ndc::ir::IMat::identity(nest.depth());
        for t in ndc::ir::matrix::candidate_transforms(nest.depth(), 1) {
            if t == identity {
                continue;
            }
            if let Err(e) = ndc::lint::certify(nest, &t) {
                println!("nest {} transform {:?}:", nest.id.0, t);
                println!("    {e}");
                shown = true;
                break 'nests;
            }
        }
    }
    if !shown {
        println!("(every skew-1 candidate on every nest is legal for this workload)");
    }
}

fn ablation_coarse(args: &Args, cfg: ArchConfig) {
    println!("== Ablation: coarse-grain (whole-nest) mapping (%) ==");
    println!(
        "{:<10} {:>9} {:>9} {:>11} {:>11}",
        "bench", "fine-a1", "fine-a2", "coarse-a1", "coarse-a2"
    );
    let list = benches(&args.bench);
    let rows = ndc_par::parallel_map(&list, |b| exp::ablation_coarse(b, cfg, args.scale));
    let (mut c1s, mut c2s) = (Vec::new(), Vec::new());
    for r in &rows {
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>11.1} {:>11.1}",
            r.name, r.fine_alg1, r.fine_alg2, r.coarse_alg1, r.coarse_alg2
        );
        c1s.push(r.coarse_alg1);
        c2s.push(r.coarse_alg2);
    }
    println!(
        "{:<10} {:>9} {:>9} {:>11.1} {:>11.1}   (paper: 1.2 / 2.5)",
        "geomean",
        "",
        "",
        geomean_improvement(&c1s),
        geomean_improvement(&c2s)
    );
    println!();
}

/// `scale` — the mesh scale-up study: one workload run at every mesh
/// size by the serial engine and the epoch-barriered lane engine at
/// several lane counts. Per row: simulated cycles, host wall-clock,
/// and host throughput (issued instructions per second). The lane
/// engine's full `SimResult` must be byte-identical at every lane
/// count (the determinism contract); the run aborts otherwise.
///
/// `NDC_BENCH_FAST=1` shrinks the sweep to the 8×8 mesh with lane
/// counts {1, 2} for CI. Results land in `BENCH_scale.json`.
fn scale_cmd(args: &Args) {
    use ndc::sim::{Engine, LaneEngine};
    use std::time::Instant;

    let fast = std::env::var("NDC_BENCH_FAST").is_ok();
    let meshes: &[(u16, u16)] = if fast {
        &[(8, 8)]
    } else {
        &[(5, 5), (8, 8), (12, 12), (16, 16)]
    };
    let lane_counts: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4, 8] };
    let name = args.bench.as_deref().unwrap_or("ocean");
    let bench = by_name(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(1);
    });
    let scheme = Scheme::NdcAll {
        budget: WaitBudget::LastWindow,
    };

    println!("== Mesh scale-up: serial engine vs epoch-barriered lanes ({name}) ==");
    println!(
        "{:<7} {:>6} {:<8} {:>6} {:>14} {:>12} {:>10} {:>12}",
        "mesh", "nodes", "engine", "lanes", "sim cycles", "insts", "host ms", "insts/sec"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut host_ns_of: Vec<((u16, u16), &'static str, usize, u64)> = Vec::new();
    for &(w, h) in meshes {
        let cfg = ArchConfig::with_mesh(w, h);
        // Work scales with the mesh so per-node load stays constant:
        // the 5×5 study mesh is exactly `Scale::Test`.
        let prog = bench.build(Scale::proportional(cfg.nodes()));
        let opts = LowerOptions {
            cores: cfg.nodes(),
            emit_busy: true,
        };
        let traces = lower(&prog, &opts, None);

        let mut row = |engine: &'static str, lanes: usize, result: &SimResult, host_ns: u64| {
            let per_sec = result.issued_insts as f64 * 1e9 / host_ns.max(1) as f64;
            println!(
                "{:<7} {:>6} {:<8} {:>6} {:>14} {:>12} {:>10.1} {:>12.0}",
                format!("{w}x{h}"),
                cfg.nodes(),
                engine,
                lanes,
                result.total_cycles,
                result.issued_insts,
                host_ns as f64 / 1e6,
                per_sec
            );
            host_ns_of.push(((w, h), engine, lanes, host_ns));
            rows.push(
                Json::obj()
                    .with("mesh", format!("{w}x{h}"))
                    .with("nodes", cfg.nodes())
                    .with("engine", engine)
                    .with("lanes", lanes)
                    .with("simulated_cycles", result.total_cycles)
                    .with("issued_insts", result.issued_insts)
                    .with("host_ns", host_ns)
                    .with("insts_per_sec", per_sec),
            );
        };

        let t0 = Instant::now();
        let serial = Engine::new(cfg, &traces, scheme).run();
        row("serial", 0, &serial.result, t0.elapsed().as_nanos() as u64);

        let mut fingerprint: Option<String> = None;
        for &n in lane_counts {
            let t0 = Instant::now();
            let out = LaneEngine::new(cfg, &traces, scheme).with_lanes(n).run();
            let host_ns = t0.elapsed().as_nanos() as u64;
            let fp = format!("{:?}", out.result);
            match &fingerprint {
                None => fingerprint = Some(fp),
                Some(first) => assert_eq!(
                    *first, fp,
                    "{w}x{h}: lane engine diverged between lane counts"
                ),
            }
            row("lanes", n, &out.result, host_ns);
        }
    }

    // Single-run speedup at the largest mesh: serial wall-clock over
    // the widest lane configuration (ISSUE 6 targets >= 3x at 16x16
    // with 8 lanes; only meaningful for release builds).
    let &(bw, bh) = meshes.last().expect("non-empty mesh list");
    let widest = *lane_counts.last().expect("non-empty lane list");
    let ns = |eng: &str, lanes: usize| {
        host_ns_of
            .iter()
            .find(|&&(m, e, l, _)| m == (bw, bh) && e == eng && l == lanes)
            .map(|&(_, _, _, ns)| ns)
            .expect("measured row")
    };
    let speedup = ns("serial", 0) as f64 / ns("lanes", widest).max(1) as f64;
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!();
    println!("{bw}x{bh} speedup, {widest} lanes vs serial: {speedup:.2}x (host CPUs: {host_cpus})");
    if host_cpus < widest {
        println!(
            "note: only {host_cpus} host CPU(s) — lane threads time-slice instead of \
             running concurrently, so the recorded speedup reflects overhead, not scaling"
        );
    }
    println!("lane engine byte-identical across lane counts: yes");

    let doc = Json::obj()
        .with("experiment", "scale")
        .with("benchmark", name)
        .with("scheme", format!("{scheme:?}"))
        .with("fast", fast)
        .with("epoch_hops", ndc::sim::lanes::EPOCH_HOPS)
        .with("host_parallelism", host_cpus)
        .with("deterministic_across_lanes", true)
        .with(
            "speedup_largest_mesh",
            Json::obj()
                .with("mesh", format!("{bw}x{bh}"))
                .with("lanes", widest)
                .with("speedup", speedup)
                .with("host_saturated", host_cpus < widest),
        )
        .with("rows", rows);
    write_json("BENCH_scale.json", &doc);
}

/// `fuse`: the operator-fusion ablation — Algorithm 2 with and without
/// producer-consumer chain fusion, per workload. "Bytes moved" is the
/// compiler's cost model over the fused schedule's chains: a planned
/// chain is charged its adopted candidate's predicted bytes, a fused
/// packet its union footprint exactly once (arrays gathered by several
/// members are not double-counted), and the unfused baseline charges
/// each packet what its members would have moved individually —
/// individual plans at their own adopted targets, conventional tails
/// at their near-L2 lower bound (conventional execution returns whole
/// cache lines to the core where an offload returns a 16 B result, so
/// the real saving is larger). Offload cycles and NoC messages are
/// measured by simulating both schedules under `Scheme::Compiled`.
/// Results land in `BENCH_fusion.json`; rows are deterministic for any
/// `NDC_THREADS`.
fn fuse_cmd(args: &Args, cfg: ArchConfig) {
    use ndc::compiler::outcome;
    use std::collections::BTreeSet;

    /// Cost-model bytes moved under the fusion-enabled schedule:
    /// planned chains at their adopted target, fused packets once per
    /// group. With `unfused_equiv` the fused groups are instead
    /// charged the compiler's estimate of what the same members would
    /// have moved unfused (individual plans at their own targets,
    /// conventional tails at their near-L2 lower bound) — the
    /// like-for-like baseline of the bytes-moved comparison.
    fn predicted_bytes(rep: &CompilerReport, unfused_equiv: bool) -> u64 {
        let mut total = 0u64;
        let mut charged_groups: BTreeSet<u32> = BTreeSet::new();
        for chain in &rep.provenance {
            if chain.outcome == outcome::FUSED {
                let bytes = if unfused_equiv {
                    chain.fused_unfused_bytes
                } else {
                    chain.fused_predicted_bytes
                };
                if let (Some(g), Some(b)) = (chain.chain_group, bytes) {
                    if charged_groups.insert(g) {
                        total = total.saturating_add(b);
                    }
                }
            } else if chain.outcome == outcome::PLANNED {
                if let Some(target) = chain.final_target {
                    if let Some(c) = chain.candidates.iter().find(|c| c.location == target) {
                        total = total.saturating_add(c.predicted_bytes_moved);
                    }
                }
            }
        }
        total
    }

    println!("== Fusion: Algorithm 2 with producer-consumer chain fusion ==");
    println!(
        "{:<10} {:>6} {:>4} {:>12} {:>12} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "bench",
        "chains",
        "ops",
        "bytes-unf",
        "bytes-fus",
        "drop%",
        "offcyc-unf",
        "offcyc-fus",
        "noc-unf",
        "noc-fus"
    );
    let list = benches(&args.bench);
    let opts = LowerOptions {
        cores: cfg.nodes(),
        emit_busy: true,
    };
    let rows = ndc_par::parallel_map(&list, |b| {
        let prog = b.build(args.scale);
        let (su, _) = compile_algorithm2(&prog, &cfg, cfg.nodes(), Algorithm2Options::default());
        let (sf, rf) = compile_algorithm2(
            &prog,
            &cfg,
            cfg.nodes(),
            Algorithm2Options {
                fuse: true,
                ..Default::default()
            },
        );
        let run = |sched: &Schedule| {
            simulate(cfg, &lower(&prog, &opts, Some(sched)), Scheme::Compiled).result
        };
        let (mu, mf) = (run(&su), run(&sf));
        (
            b.name,
            rf.fused_chains,
            rf.fused_ops,
            predicted_bytes(&rf, true),
            predicted_bytes(&rf, false),
            mu.ndc_offload_cycles.iter().sum::<u64>(),
            mf.ndc_offload_cycles.iter().sum::<u64>(),
            mu.noc_messages,
            mf.noc_messages,
        )
    });

    let mut json_rows: Vec<Json> = Vec::new();
    let mut reduced_both = 0usize;
    let mut total_chains = 0u64;
    for &(name, chains, ops, bu, bf, cu, cf, nu, nf) in &rows {
        let drop_pct = if bu > 0 {
            100.0 * (bu.saturating_sub(bf)) as f64 / bu as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:>6} {:>4} {:>12} {:>12} {:>6.1} {:>12} {:>12} {:>10} {:>10}",
            name, chains, ops, bu, bf, drop_pct, cu, cf, nu, nf
        );
        total_chains += chains;
        if chains > 0 && bf < bu && cf < cu {
            reduced_both += 1;
        }
        json_rows.push(
            Json::obj()
                .with("name", name)
                .with("fused_chains", chains)
                .with("fused_ops", ops)
                .with("predicted_bytes_unfused", bu)
                .with("predicted_bytes_fused", bf)
                .with("offload_cycles_unfused", cu)
                .with("offload_cycles_fused", cf)
                .with("noc_messages_unfused", nu)
                .with("noc_messages_fused", nf),
        );
    }
    println!();
    println!(
        "fused chains: {total_chains}   workloads with fewer predicted bytes AND \
         fewer measured offload cycles: {reduced_both}"
    );

    let doc = Json::obj()
        .with("experiment", "fuse")
        .with("scale", format!("{:?}", args.scale))
        .with("fused_chains", total_chains)
        .with("workloads_reduced_bytes_and_cycles", reduced_both as u64)
        .with("rows", json_rows);
    write_json("BENCH_fusion.json", &doc);
}

/// `fuzz`: drive `--count` seeded programs (seeds `--seed`, `--seed`+1,
/// ...) through the whole stack — generator, verifier + bounds prover,
/// both compiler algorithms, schedule lint, the differential oracle,
/// structured lowering, and the checked simulator — then classify each
/// simulated run with the DAMOV-style bottleneck taxonomy. Prints the
/// class × bottleneck corpus table, writes `BENCH_fuzz_corpus.json`,
/// and exits 1 on any failure with the seed that reproduces it.
/// Deterministic for any `NDC_THREADS`.
fn fuzz_cmd(args: &Args, cfg: ArchConfig) {
    use ndc::fuzz::{fuzz_batch, CorpusTable};
    use ndc::workloads::gen::GenClass;
    let count = args.count.unwrap_or(256);
    let seed = args.seed.unwrap_or(7);
    println!("== Fuzz: {count} seeded programs from base seed {seed:#x}, full pipeline ==");
    let outcomes = fuzz_batch(seed, count, &cfg);
    let table = CorpusTable::build(&outcomes);

    println!();
    println!("-- corpus coverage: access-pattern class x bottleneck --");
    println!(
        "{:<17} {:>9} {:>9} {:>9} {:>9}",
        "class", "programs", "compute", "dram-bw", "noc"
    );
    let mut class_rows: Vec<Json> = Vec::new();
    for (ci, class) in GenClass::ALL.iter().enumerate() {
        println!(
            "{:<17} {:>9} {:>9} {:>9} {:>9}",
            class.label(),
            table.per_class[ci],
            table.cells[ci][0],
            table.cells[ci][1],
            table.cells[ci][2],
        );
        class_rows.push(
            Json::obj()
                .with("class", class.label())
                .with("programs", table.per_class[ci] as u64)
                .with("compute", table.cells[ci][0] as u64)
                .with("dram_bw", table.cells[ci][1] as u64)
                .with("noc", table.cells[ci][2] as u64),
        );
    }

    let planned1: u64 = outcomes.iter().map(|o| o.alg1_planned).sum();
    let planned2: u64 = outcomes.iter().map(|o| o.alg2_planned).sum();
    let oracle_legal: usize = outcomes.iter().map(|o| o.oracle_legal).sum();
    println!();
    println!(
        "alg1 chains planned: {planned1}   alg2 chains planned: {planned2}   \
         oracle-verified transforms: {oracle_legal}"
    );

    let mut failure_rows: Vec<Json> = Vec::new();
    for o in outcomes.iter().filter(|o| !o.passed()) {
        println!();
        println!(
            "FAIL seed {:#018x} (reproduce: ndc-eval fuzz --count 1 --seed {:#x})",
            o.seed, o.seed
        );
        for f in &o.failures {
            println!("  {f}");
        }
        failure_rows.push(
            Json::obj().with("seed", format!("{:#x}", o.seed)).with(
                "failures",
                o.failures
                    .iter()
                    .map(|f| Json::from(f.as_str()))
                    .collect::<Vec<_>>(),
            ),
        );
    }

    let doc = Json::obj()
        .with("experiment", "fuzz")
        .with("base_seed", format!("{seed:#x}"))
        .with("count", count as u64)
        .with("failed", table.failed as u64)
        .with("clean", table.failed == 0)
        .with("alg1_planned", planned1)
        .with("alg2_planned", planned2)
        .with("oracle_verified_transforms", oracle_legal as u64)
        .with("classes", class_rows)
        .with("failures", failure_rows);
    write_json("BENCH_fuzz_corpus.json", &doc);

    println!();
    if table.failed > 0 {
        println!("fuzz: FAILED ({} of {} seeds)", table.failed, table.total);
        std::process::exit(1);
    }
    println!(
        "fuzz: {} seeds clean — zero divergences, violations, or panics",
        table.total
    );
}

/// `gen`: summarize the seeded corpus without running it — class mix,
/// shape statistics, and coverage of the degenerate cases the fuzzer
/// is designed to reach (zero-trip and single-trip nests, negative
/// strides, zero-work bodies).
fn gen_cmd(args: &Args) {
    use ndc::workloads::gen::{generate_batch, GenClass};
    let count = args.count.unwrap_or(256);
    let seed = args.seed.unwrap_or(7);
    println!("== Generated corpus: {count} programs from base seed {seed:#x} ==");
    let batch = generate_batch(seed, count);

    println!(
        "{:<17} {:>9} {:>7} {:>12} {:>8} {:>10}",
        "class", "programs", "nests", "points", "arrays", "KB"
    );
    for class in GenClass::ALL {
        let of_class: Vec<_> = batch.iter().filter(|g| g.class == class).collect();
        let nests: usize = of_class.iter().map(|g| g.program.nests.len()).sum();
        let points: u64 = of_class
            .iter()
            .flat_map(|g| g.program.nests.iter())
            .map(|n| n.points())
            .sum();
        let arrays: usize = of_class.iter().map(|g| g.program.arrays.len()).sum();
        let kb: u64 = of_class.iter().map(|g| g.program.footprint() / 1024).sum();
        println!(
            "{:<17} {:>9} {:>7} {:>12} {:>8} {:>10}",
            class.label(),
            of_class.len(),
            nests,
            points,
            arrays,
            kb
        );
    }

    let zero_trip = batch
        .iter()
        .filter(|g| g.program.nests.iter().any(|n| n.is_empty()))
        .count();
    let single_trip = batch
        .iter()
        .filter(|g| {
            g.program
                .nests
                .iter()
                .any(|n| n.lo.iter().zip(n.hi.iter()).any(|(&l, &h)| h - l == 1))
        })
        .count();
    let neg_stride = batch
        .iter()
        .filter(|g| {
            g.program.nests.iter().any(|n| {
                n.body.iter().any(|s| {
                    s.array_refs().iter().any(|(r, _)| {
                        (0..r.coeffs.rows).any(|i| (0..r.coeffs.cols).any(|j| r.coeffs[(i, j)] < 0))
                    })
                })
            })
        })
        .count();
    let zero_work = batch
        .iter()
        .filter(|g| {
            g.program
                .nests
                .iter()
                .any(|n| n.body.iter().any(|s| s.work == 0))
        })
        .count();
    println!();
    println!(
        "degenerate coverage: zero-trip {zero_trip}, single-trip {single_trip}, \
         negative-stride {neg_stride}, zero-work {zero_work}"
    );
}
