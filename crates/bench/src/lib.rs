//! Benchmark/evaluation crate: the `ndc-eval` binary regenerates every
//! table and figure of the paper (see `ndc-eval help`), and the
//! Criterion benches (`cargo bench`) measure the machinery behind each
//! experiment. Table/figure *content* comes from `ndc::experiments`.

pub use ndc::experiments;
