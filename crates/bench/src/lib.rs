//! Benchmark/evaluation crate: the `ndc-eval` binary regenerates every
//! table and figure of the paper (see `ndc-eval help`), and the
//! in-tree benches (`cargo bench`) measure the machinery behind each
//! experiment with the zero-dependency [`harness`]. Table/figure
//! *content* comes from `ndc::experiments`.

pub mod baseline;
pub mod harness;

pub use harness::Harness;
pub use ndc::experiments;
