//! Minimal in-tree benchmark harness (criterion replacement).
//!
//! Each `[[bench]]` target is a plain `main` (`harness = false`) that
//! builds a [`Harness`], registers closures with [`Harness::bench`],
//! and calls [`Harness::finish`]. The harness:
//!
//! * auto-calibrates an iteration count so one sample lasts at least
//!   [`TARGET_SAMPLE_NANOS`] (fast micro-ops get batched; slow
//!   whole-simulation runs get `iters = 1`),
//! * runs a warmup pass, then `samples` timed samples,
//! * reports the **median** nanoseconds per iteration (robust to a
//!   noisy neighbour sample) plus min/max,
//! * writes the machine-readable summary to `BENCH_<suite>.json` in
//!   the current directory via [`ndc_types::Json`].
//!
//! Environment knobs: `NDC_BENCH_SAMPLES` (default 15) and
//! `NDC_BENCH_FAST=1` (3 samples, short target — used by CI smoke
//! runs where wall-clock matters more than variance).
//!
//! Each bench can also register **simulated counters**
//! ([`Harness::counter`]) — deterministic numbers like total simulated
//! cycles that land in the JSON next to the timings. Passing
//! `--baseline <BENCH_x.json>` (cargo forwards it after `--`), or
//! setting `NDC_BENCH_BASELINE=<path>`, turns [`Harness::finish`] into
//! a regression gate: counters compare exactly, wall-clock numbers
//! within [`crate::baseline::DEFAULT_WALL_TOLERANCE`], and any diff
//! exits 1. `NDC_BENCH_REBASE=1` skips the gate (the freshly written
//! file becomes the new baseline to commit).

use std::time::Instant;

/// Minimum duration of one timed sample, in nanoseconds.
const TARGET_SAMPLE_NANOS: u128 = 5_000_000;

/// Per-benchmark timing summary, all in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub iters_per_sample: u64,
    pub samples: usize,
}

/// One finished bench row: name, timings, and the simulated counters
/// attached via [`Harness::counter`].
type BenchRow = (String, Stats, Vec<(String, u64)>);

pub struct Harness {
    suite: String,
    samples: usize,
    target_ns: u128,
    rows: Vec<BenchRow>,
}

impl Harness {
    pub fn new(suite: &str) -> Self {
        let fast = std::env::var("NDC_BENCH_FAST").is_ok_and(|v| v == "1");
        let samples = std::env::var("NDC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(if fast { 3 } else { 15 });
        println!("== bench suite: {suite} ({samples} samples, median of samples) ==");
        println!(
            "{:<28} {:>14} {:>14} {:>14} {:>8}",
            "name", "median", "min", "max", "iters"
        );
        Harness {
            suite: suite.to_string(),
            samples,
            target_ns: if fast {
                TARGET_SAMPLE_NANOS / 10
            } else {
                TARGET_SAMPLE_NANOS
            },
            rows: Vec::new(),
        }
    }

    /// Time `f`, batching calls until one sample meets the target
    /// duration. The closure's result is black-boxed so the work is
    /// not optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        // Calibration: double the batch size until a batch is long
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Self::time_batch(&mut f, iters);
            if t >= self.target_ns || iters >= 1 << 20 {
                break;
            }
            // Jump close to the target in one step when the first
            // measurements are far off, rather than doubling blindly.
            let scale = (self.target_ns / t.max(1)).max(2) as u64;
            iters = iters.saturating_mul(scale.min(1024)).min(1 << 20);
        }

        // Warmup, then timed samples.
        Self::time_batch(&mut f, iters);
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| Self::time_batch(&mut f, iters) as f64 / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let stats = Stats {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters_per_sample: iters,
            samples: self.samples,
        };
        println!(
            "{:<28} {:>14} {:>14} {:>14} {:>8}",
            name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            stats.iters_per_sample
        );
        self.rows.push((name.to_string(), stats, Vec::new()));
    }

    /// Attach a simulated counter to the most recent bench row. Unlike
    /// the timings these are deterministic, so the regression gate
    /// compares them exactly.
    pub fn counter(&mut self, name: &str, value: u64) {
        let row = self
            .rows
            .last_mut()
            .expect("counter() before the first bench()");
        row.2.push((name.to_string(), value));
    }

    fn time_batch<R, F: FnMut() -> R>(f: &mut F, iters: u64) -> u128 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        start.elapsed().as_nanos()
    }

    /// Print the footer, write `BENCH_<suite>.json`, and — when a
    /// baseline was requested via `--baseline <path>` or
    /// `NDC_BENCH_BASELINE` — run the regression gate against it,
    /// exiting 1 on any diff.
    pub fn finish(self) {
        use ndc_types::Json;
        let benches: Vec<Json> = self
            .rows
            .iter()
            .map(|(name, s, counters)| {
                let mut row = Json::obj()
                    .with("name", name.as_str())
                    .with("median_ns", s.median_ns)
                    .with("min_ns", s.min_ns)
                    .with("max_ns", s.max_ns)
                    .with("iters_per_sample", s.iters_per_sample)
                    .with("samples", s.samples);
                if !counters.is_empty() {
                    let mut c = Json::obj();
                    for (k, v) in counters {
                        c.set(k.as_str(), *v);
                    }
                    row.set("counters", c);
                }
                row
            })
            .collect();
        let doc = Json::obj()
            .with("suite", self.suite.as_str())
            .with("benches", Json::Arr(benches));
        // `cargo bench` runs targets with cwd = the package directory;
        // anchor artifacts at the workspace root so they land in one
        // predictable place.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let path = format!("{root}/BENCH_{}.json", self.suite);
        match std::fs::write(&path, doc.render() + "\n") {
            Ok(()) => println!("wrote BENCH_{}.json", self.suite),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
        if let Some(baseline) = baseline_path() {
            gate(&self.suite, &baseline, &doc);
        }
        println!();
    }
}

/// The baseline requested for this run: `--baseline <path>` on the
/// command line (cargo forwards everything after `--` to the bench
/// target) or the `NDC_BENCH_BASELINE` environment variable.
fn baseline_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--baseline" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--baseline=") {
            return Some(p.to_string());
        }
    }
    std::env::var("NDC_BENCH_BASELINE").ok()
}

/// Run the regression gate and exit 1 on any divergence.
fn gate(suite: &str, baseline: &str, current: &ndc_types::Json) {
    match crate::baseline::gate_against_file(
        baseline,
        current,
        crate::baseline::DEFAULT_WALL_TOLERANCE,
    ) {
        Ok(diffs) if diffs.is_empty() => {
            println!("gate: {suite} matches baseline {baseline}");
        }
        Ok(diffs) => {
            eprintln!("gate: {suite} DIVERGES from baseline {baseline}:");
            for d in &diffs {
                eprintln!("  {d}");
            }
            eprintln!("(rerun with NDC_BENCH_REBASE=1 to accept the new numbers)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_sane_for_cheap_work() {
        std::env::set_var("NDC_BENCH_FAST", "1");
        let mut h = Harness::new("harness_selftest");
        let mut acc = 0u64;
        h.bench("wrapping_add", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        let (_, s, _) = &h.rows[0];
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.iters_per_sample >= 1);
        // Don't write a JSON artifact from the unit test.
    }
}
