//! The paper's primary contribution: two compiler-directed NDC
//! optimization passes.
//!
//! * [`algorithm1`] — *Exploiting NDC through computation restructuring*
//!   (paper Algorithm 1): for every use-use chain (two-memory-operand
//!   computation) it tries the candidate components in order
//!   (L2 bank → router → memory queue → memory bank), and for each
//!   component the three movement strategies of Figure 8 (move `y`,
//!   move `x`, move both) realized as operand-issue staggers plus an
//!   iteration lookahead, with dependence-constrained legality and a
//!   unimodular loop-transformation search (`T·D ≻ 0`) on top. For the
//!   router target it additionally selects route signatures maximizing
//!   `Sx ∩ Sy` (§5.2.1, Figure 11).
//! * [`algorithm2`] — *Exploring the NDC/data-locality trade-off*
//!   (paper Algorithm 2): identical search, but a plan is rejected when
//!   either operand is reused beyond the computation (the `∃ I_m` check
//!   of §5.3), favoring cache locality; the rejection count is the
//!   Figure 15 metric. The reuse threshold `k` is configurable (the
//!   paper evaluates `k = 0` and leaves `k > 0` to future work).
//! * [`coarse`] — the coarse-grain ablation of §5.4: whole-nest mapping
//!   to a single component, which the paper reports performs poorly
//!   (1.2%/2.5%) — reproduced as a bench target.
//! * [`layout`] — the data-layout optimization the paper defers to
//!   future work (§5.2.1, fourth challenge): base-address padding that
//!   co-homes cross-array operand pairs, creating NDC opportunities
//!   that no amount of code motion could.
//!
//! All passes consume the Cache Miss Equations estimates (`ndc-cme`),
//! the architecture description (`ndc_types::ArchConfig`) and produce
//! an `ndc_ir::Schedule` plus a [`report::CompilerReport`].

pub mod algorithm1;
pub mod algorithm2;
pub mod coarse;
pub mod estimate;
pub mod layout;
pub mod report;

pub use algorithm1::compile_algorithm1;
pub use algorithm2::{compile_algorithm2, Algorithm2Options};
pub use coarse::compile_coarse;
pub use estimate::{assess_fused, FusedViability, LatencyModel, TargetViability};
pub use layout::{optimize_layout, LayoutReport};
pub use report::{
    fuse_note, no_offload, outcome, reason, CandidateRecord, ChainProvenance, CompilerReport,
};
