//! Static estimation: what the compiler can know about a use-use chain
//! without running the program.
//!
//! For a two-memory-operand statement in a nest, [`assess`] combines
//! two static sources:
//!
//! * **Reuse analysis** (`ndc-reuse`): exact-or-bounded distinct
//!   L1/L2-line counts, shared-line iteration counts, and union
//!   footprints for the operand pair — the traffic side of the model.
//!   Byte volumes ([`TargetViability::est_bytes`]) are *integer*
//!   whole-nest byte-hop totals built from these counts; no sampled
//!   f64 heuristics remain on the bytes path.
//! * **Iteration-space sampling**: placement-dependent fractions (how
//!   often the operands share an L2 home bank, a memory controller, a
//!   DRAM bank; how often their reply routes overlap) and the expected
//!   arrival-time skew at the target — the **stagger** (`Δ` of §5.2.1)
//!   the pre-compute instruction encodes.
//!
//! The offload-latency predictions come in two flavors:
//! [`TargetViability::est_offload`] weights the DRAM path by the
//! reuse-derived compulsory miss fraction (`distinct L2 lines /
//! accesses`), while [`TargetViability::est_offload_legacy`] keeps the
//! retired CME-probability heuristic so `ndc-eval explain` can score
//! both models against the simulator's measured latencies.

use ndc_cme::{CmeAnalysis, RefKey};
use ndc_ir::program::{LoopNest, Program, Stmt};
use ndc_ir::schedule::chain_operands;
use ndc_noc::{best_signature_pair, Mesh, RouteSignature};
use ndc_reuse::{
    analyze_ref, identical_stream, shared_line_iters, union_lines, AddressForm, ChainReuse,
    HopLoad, RefFacts,
};
use ndc_types::FxHashMap;
use ndc_types::{ArchConfig, Coord, NodeId};

/// Static latency model derived from the architecture description —
/// the compiler-side mirror of the simulator's timing.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    pub cfg: ArchConfig,
}

impl LatencyModel {
    pub fn new(cfg: ArchConfig) -> Self {
        LatencyModel { cfg }
    }

    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let w = self.cfg.noc.width;
        a.coord(w).manhattan(b.coord(w)) as u64
    }

    /// Expected cycle (relative to issue) at which an operand's data is
    /// available at its home L2 bank, weighting the DRAM path by the
    /// given L2 miss probability (CME-predicted for the legacy model,
    /// reuse-derived for the new one).
    pub fn est_data_at_bank(&self, core: NodeId, home: NodeId, p_l2_miss: f64) -> f64 {
        let hop = self.cfg.noc.hop_cycles as f64;
        let req = self.cfg.l1.latency as f64 + self.hops(core, home) as f64 * hop;
        let hit = req + self.cfg.l2.latency as f64;
        let mc = self.cfg.mc_of(0); // representative controller distance
        let mc_node = self.cfg.mc_node(mc);
        let dram = self.cfg.mem.dram.row_miss_cycles as f64 + self.cfg.mem.dram.burst_cycles as f64;
        let miss = hit + 2.0 * self.hops(home, mc_node) as f64 * hop + dram;
        hit * (1.0 - p_l2_miss) + miss * p_l2_miss
    }

    /// Expected arrival at the owning memory controller's queue.
    pub fn est_at_mc(&self, core: NodeId, home: NodeId, mc_node: NodeId) -> f64 {
        let hop = self.cfg.noc.hop_cycles as f64;
        self.cfg.l1.latency as f64
            + self.hops(core, home) as f64 * hop
            + self.cfg.l2.latency as f64
            + self.hops(home, mc_node) as f64 * hop
    }

    /// Expected conventional completion (operand to core) for Δ
    /// conversion.
    pub fn est_to_core(&self, core: NodeId, home: NodeId, p_l2_miss: f64) -> f64 {
        let hop = self.cfg.noc.hop_cycles as f64;
        self.est_data_at_bank(core, home, p_l2_miss)
            + self.hops(home, core) as f64 * hop
            + self.cfg.l1.latency as f64
    }
}

/// Static viability of each NDC target for one use-use chain:
/// placement fractions sampled from the iteration space, integer
/// traffic totals derived from the reuse analysis.
#[derive(Debug, Clone, Default)]
pub struct TargetViability {
    /// Fraction of sampled iterations whose operands share an L2 home
    /// bank.
    pub same_bank: f64,
    /// Fraction sharing a memory controller.
    pub same_mc: f64,
    /// Fraction sharing a DRAM bank.
    pub same_dram_bank: f64,
    /// Fraction of iterations whose two operands sit in the same L1
    /// line — such pairs are conventional-friendly (one fill serves
    /// both) and poor NDC candidates.
    pub same_l1_line: f64,
    /// Fraction whose XY reply routes share at least one link.
    pub overlap_xy: f64,
    /// Same with reshaped (overlap-maximized) minimal routes.
    pub overlap_reshaped: f64,
    /// Mean estimated availability skew at the L2 bank
    /// (`est(a) − est(b)` in cycles; positive = `a` later).
    pub bank_skew: f64,
    /// Mean estimated skew at the memory controller.
    pub mc_skew: f64,
    /// Mean predicted issue→result-at-core cycles if the chain were
    /// offloaded to each location (indexed by `NdcLocation::index()`),
    /// with the DRAM path weighted by the reuse-derived compulsory
    /// miss fraction — the predicted side `ndc-eval explain`
    /// cross-checks against measured offload latencies.
    pub est_offload: [f64; 4],
    /// The retired heuristic: same formula, but the DRAM path weighted
    /// by the CME miss probability. Kept solely so the model-accuracy
    /// comparison has its baseline.
    pub est_offload_legacy: [f64; 4],
    /// Predicted whole-nest NoC traffic (byte·hops) per location:
    /// operand requests, compulsory line fills (one per distinct L2
    /// line, from the reuse analysis), and result returns. Integer
    /// totals — shared-line and identical-stream dedup comes from
    /// `ndc-reuse`, not from per-sample address comparison.
    pub est_bytes: [u64; 4],
    /// The reuse facts behind the traffic totals, threaded into
    /// `ChainProvenance` so `ndc-eval explain` can attribute each
    /// prediction to its analysis.
    pub reuse: Option<ChainReuse>,
    /// Placement samples taken.
    pub samples: u32,
}

/// How many iteration points to sample per chain.
const SAMPLES: usize = 24;

/// Bytes of one operand request / result message on the NoC.
const MSG_BYTES: u64 = 16;

/// Reuse analysis of one operand pair: per-ref facts, canonical forms
/// (when the shape permits), shared/union line structure.
struct PairReuse {
    facts_a: RefFacts,
    facts_b: RefFacts,
    /// One gather serves both operands every iteration.
    identical: bool,
    /// Iterations whose operands share an L2 line.
    shared_l2_iters: u64,
    /// Distinct L2 lines of the union footprint.
    union_l2: u64,
}

fn pair_reuse(
    prog: &Program,
    nest: &LoopNest,
    stmt: &Stmt,
    stmt_pos: usize,
    cfg: &ArchConfig,
) -> Option<PairReuse> {
    let l1 = cfg.l1.line_bytes;
    let l2 = cfg.l2.line_bytes;
    let facts_a = analyze_ref(prog, nest, stmt, stmt_pos, 0, l1, l2)?;
    let facts_b = analyze_ref(prog, nest, stmt, stmt_pos, 1, l1, l2)?;
    let (ra, rb) = stmt.memory_operand_pair()?;
    let form_a = AddressForm::build(prog, nest, ra);
    let form_b = AddressForm::build(prog, nest, rb);
    let n = nest.points();
    let (identical, shared, union_l2) = match (&form_a, &form_b) {
        (Some(fa), Some(fb)) => {
            let identical = identical_stream(fa, fb);
            let shared = if identical {
                n
            } else {
                shared_line_iters(fa, fb, l2).min(n)
            };
            (
                identical,
                shared,
                union_lines(fa, fb, facts_a.l2_lines.value, facts_b.l2_lines.value, l2),
            )
        }
        // Shape defeated the form builder: no dedup, conservative
        // union.
        _ => (
            false,
            0,
            facts_a
                .l2_lines
                .value
                .saturating_add(facts_b.l2_lines.value),
        ),
    };
    Some(PairReuse {
        facts_a,
        facts_b,
        identical,
        shared_l2_iters: shared,
        union_l2,
    })
}

/// `total · per / div` in u128, saturated to u64 — the whole-nest
/// extrapolation of a sampled hop sum.
fn scaled(total: u64, per: u64, div: u64) -> u64 {
    if div == 0 {
        return 0;
    }
    let v = (total as u128) * (per as u128) / (div as u128);
    v.min(u64::MAX as u128) as u64
}

/// Assess one statement's NDC viability. The iteration space is
/// sampled for placement fractions and mean hop distances; the traffic
/// totals come from the reuse analysis. `cme` provides the miss
/// predictions the legacy latency model (and the locality gates) use.
#[allow(clippy::too_many_arguments)]
pub fn assess(
    prog: &Program,
    nest_pos: usize,
    nest: &LoopNest,
    stmt_pos: usize,
    stmt: &Stmt,
    cfg: &ArchConfig,
    cme: &CmeAnalysis,
    cores: usize,
) -> Option<TargetViability> {
    let (ra, rb) = stmt.memory_operand_pair()?;
    let model = LatencyModel::new(*cfg);
    let mesh = Mesh::new(cfg.noc);
    let mut v = TargetViability::default();
    let mut overlap_cache: FxHashMap<(Coord, Coord, Coord), bool> = FxHashMap::default();

    let p_l2_a = cme
        .get(&RefKey {
            nest_pos,
            stmt_pos,
            slot: 0,
        })
        .map(|p| p.l2_miss_rate)
        .unwrap_or(0.5);
    let p_l2_b = cme
        .get(&RefKey {
            nest_pos,
            stmt_pos,
            slot: 1,
        })
        .map(|p| p.l2_miss_rate)
        .unwrap_or(0.5);

    // The reuse side: distinct-line counts and pair structure. The
    // new latency model weights the DRAM path by the compulsory miss
    // fraction these counts imply.
    let total = nest.points();
    let reuse = pair_reuse(prog, nest, stmt, stmt_pos, cfg);
    let compulsory = |lines: u64| (lines as f64 / total.max(1) as f64).min(1.0);
    let (p_new_a, p_new_b) = match &reuse {
        Some(r) => (
            compulsory(r.facts_a.l2_lines.value),
            compulsory(r.facts_b.l2_lines.value),
        ),
        None => (p_l2_a, p_l2_b),
    };

    // Evenly spaced sample points across the iteration space.
    let step = (total / SAMPLES as u64).max(1);
    let mut skews_bank = 0.0;
    let mut skews_mc = 0.0;
    // Sampled hop sums, extrapolated to whole-nest byte·hop totals
    // after the loop.
    let mut hops_req_a = 0u64; // core -> home(a)
    let mut hops_req_b = 0u64; // core -> home(b)
    let mut hops_fill_a = 0u64; // home(a) -> mc(a)
    let mut hops_fill_b = 0u64; // home(b) -> mc(b)
    let mut hops_res_l2 = 0u64; // home(a) -> core
    let mut hops_res_mc = 0u64; // mc(a) -> core
    let mut load = HopLoad::new(cfg.noc.width);

    for (k, point) in nest.iter_points().step_by(step as usize).enumerate() {
        if k >= SAMPLES {
            break;
        }
        let (Some(addr_a), Some(addr_b)) = (prog.addr_of(ra, &point), prog.addr_of(rb, &point))
        else {
            continue;
        };
        // Which core executes this iteration (block partitioning).
        let core = core_of(nest, &point, cores, cfg);
        let home_a = cfg.l2_home(addr_a);
        let home_b = cfg.l2_home(addr_b);
        v.samples += 1;

        if home_a == home_b {
            v.same_bank += 1.0;
        }
        if addr_a / cfg.l1.line_bytes == addr_b / cfg.l1.line_bytes {
            v.same_l1_line += 1.0;
        }
        let mc_a = cfg.mc_of(addr_a);
        let mc_b = cfg.mc_of(addr_b);
        if mc_a == mc_b {
            v.same_mc += 1.0;
            if cfg.dram_bank_of(addr_a) == cfg.dram_bank_of(addr_b) {
                v.same_dram_bank += 1.0;
            }
        }

        // Route overlap of the data replies toward the executing core.
        let w = cfg.noc.width;
        let (ca, cb, cc) = (home_a.coord(w), home_b.coord(w), core.coord(w));
        let xy_a = mesh.xy_route(ca, cc);
        let xy_b = mesh.xy_route(cb, cc);
        let sa = RouteSignature::from_route(&mesh, &xy_a);
        let sb = RouteSignature::from_route(&mesh, &xy_b);
        if sa.and(&sb).count_ones() > 0 {
            v.overlap_xy += 1.0;
        }
        let reshaped = *overlap_cache
            .entry((ca, cb, cc))
            .or_insert_with(|| best_signature_pair(&mesh, ca, cc, cb, cc).common_links > 0);
        if reshaped {
            v.overlap_reshaped += 1.0;
        }

        skews_bank += model.est_data_at_bank(core, home_a, p_l2_a)
            - model.est_data_at_bank(core, home_b, p_l2_b);
        let mcn_a = cfg.mc_node(mc_a);
        let mcn_b = cfg.mc_node(mc_b);
        skews_mc += model.est_at_mc(core, home_a, mcn_a) - model.est_at_mc(core, home_b, mcn_b);

        // Predicted offload latency (issue → result at core) per
        // location: both operands must be present at the meeting
        // component, plus the one-cycle op and the result's trip home.
        // Accumulated twice — once per miss model.
        let hop = cfg.noc.hop_cycles as f64;
        let h = |x: NodeId, y: NodeId| model.hops(x, y) as f64;
        for (est, pa, pb) in [
            (&mut v.est_offload, p_new_a, p_new_b),
            (&mut v.est_offload_legacy, p_l2_a, p_l2_b),
        ] {
            let at_bank = model
                .est_data_at_bank(core, home_a, pa)
                .max(model.est_data_at_bank(core, home_b, pb));
            let cc_lat = at_bank + 1.0 + h(home_a, core) * hop;
            est[ndc_types::NdcLocation::CacheController.index()] += cc_lat;
            // A link buffer meets the operands one hop off the bank
            // path.
            est[ndc_types::NdcLocation::LinkBuffer.index()] += cc_lat + hop;
            let at_mc = model
                .est_at_mc(core, home_a, mcn_a)
                .max(model.est_at_mc(core, home_b, mcn_b));
            let mc_lat = at_mc + 1.0 + h(mcn_a, core) * hop;
            est[ndc_types::NdcLocation::MemoryController.index()] += mc_lat;
            // The bank variant additionally waits out the row access.
            est[ndc_types::NdcLocation::MemoryBank.index()] +=
                mc_lat + cfg.mem.dram.row_hit_cycles as f64;
        }

        // Hop distances for the traffic extrapolation, and the
        // per-link projection of the request/result flows.
        hops_req_a += model.hops(core, home_a);
        hops_req_b += model.hops(core, home_b);
        hops_fill_a += model.hops(home_a, mcn_a);
        hops_fill_b += model.hops(home_b, mcn_b);
        hops_res_l2 += model.hops(home_a, core);
        hops_res_mc += model.hops(mcn_a, core);
        load.add_flow(core, home_a, MSG_BYTES);
        if !reuse.as_ref().is_some_and(|r| r.identical) {
            load.add_flow(core, home_b, MSG_BYTES);
        }
        load.add_flow(home_a, core, MSG_BYTES);
    }

    if v.samples == 0 {
        return None;
    }
    let n = v.samples as f64;
    v.same_bank /= n;
    v.same_l1_line /= n;
    v.same_mc /= n;
    v.same_dram_bank /= n;
    v.overlap_xy /= n;
    v.overlap_reshaped /= n;
    v.bank_skew = skews_bank / n;
    v.mc_skew = skews_mc / n;
    for e in &mut v.est_offload {
        *e /= n;
    }
    for e in &mut v.est_offload_legacy {
        *e /= n;
    }

    // Whole-nest traffic totals (byte·hops). Requests: operand `a`
    // every iteration; operand `b` only on iterations its line is not
    // already being gathered for `a` (identical streams never, shared
    // lines deducted). Fills: one line per distinct L2 line of the
    // union footprint — `a`'s own lines along `a`'s DRAM path, the
    // extra lines `b` adds along `b`'s. Result: one message per
    // iteration back to the core.
    let k = v.samples as u64;
    let (req_iters_b, fills_a, fills_b) = match &reuse {
        Some(r) => (
            if r.identical {
                0
            } else {
                total - r.shared_l2_iters.min(total)
            },
            r.facts_a.l2_lines.value,
            r.union_l2.saturating_sub(r.facts_a.l2_lines.value),
        ),
        // No reuse facts (malformed refs): charge everything.
        None => (total, total, total),
    };
    let line = cfg.l2.line_bytes;
    let req = scaled(MSG_BYTES * total, hops_req_a, k).saturating_add(scaled(
        MSG_BYTES * req_iters_b,
        hops_req_b,
        k,
    ));
    let fills = scaled(line * fills_a, hops_fill_a, k).saturating_add(scaled(
        line * fills_b,
        hops_fill_b,
        k,
    ));
    let near_l2 =
        req.saturating_add(fills)
            .saturating_add(scaled(MSG_BYTES * total, hops_res_l2, k));
    let near_mc =
        req.saturating_add(fills)
            .saturating_add(scaled(MSG_BYTES * total, hops_res_mc, k));
    v.est_bytes[ndc_types::NdcLocation::CacheController.index()] = near_l2;
    v.est_bytes[ndc_types::NdcLocation::LinkBuffer.index()] = near_l2;
    v.est_bytes[ndc_types::NdcLocation::MemoryController.index()] = near_mc;
    v.est_bytes[ndc_types::NdcLocation::MemoryBank.index()] = near_mc;

    // The chain's reuse provenance: facts, pair structure, and the
    // hottest projected link of its request/result traffic.
    if let Some(r) = reuse {
        load.scale(total, k);
        let (max_link, max_link_bytes) = match load.max_link() {
            Some((l, b)) => (Some(l), b),
            None => (None, 0),
        };
        v.reuse = Some(ChainReuse {
            a: r.facts_a,
            b: r.facts_b,
            shared_l2_iters: r.shared_l2_iters,
            union_l2_lines: r.union_l2,
            max_link,
            max_link_bytes,
        });
    }
    Some(v)
}

/// Static viability of a fused chain: every gathered operand of the
/// packet, costed together as one gather / one exec / one feed.
#[derive(Debug, Clone, Default)]
pub struct FusedViability {
    /// Per-location fraction of sampled iterations whose gathered
    /// operands *all* co-locate there (`NdcLocation::index()` order).
    pub colocation: [f64; 4],
    /// Mean predicted issue→result-at-core cycles for the whole
    /// packet: slowest operand's availability (DRAM path weighted by
    /// each operand's compulsory miss fraction), one cycle per chained
    /// op, one result trip home.
    pub est_offload: [f64; 4],
    /// Predicted whole-nest NoC traffic (byte·hops) for the packet's
    /// *union* footprint — duplicate address streams gathered once,
    /// one fill per distinct L2 line, one result return per iteration.
    pub est_bytes: [u64; 4],
    /// Samples taken.
    pub samples: u32,
}

/// Assess a fused chain (`members` are body positions in chain order)
/// by analyzing the union footprint of its gathered operands. The
/// chain's structure must already validate ([`chain_operands`] must
/// link every tail); returns `None` otherwise or when the iteration
/// space is unsampleable.
pub fn assess_fused(
    prog: &Program,
    nest_pos: usize,
    nest: &LoopNest,
    members: &[usize],
    cfg: &ArchConfig,
    cme: &CmeAnalysis,
    cores: usize,
) -> Option<FusedViability> {
    let head = nest.body.get(*members.first()?)?;
    let (ra, rb) = head.memory_operand_pair()?;
    // (gathered ref, stmt_pos, slot) for every operand the packet
    // fetches from memory; forwarded link values move no NoC bytes.
    let mut refs = vec![(ra, members[0], 0u8), (rb, members[0], 1u8)];
    let mut prev_dst = &head.dst;
    for &pos in &members[1..] {
        let s = nest.body.get(pos)?;
        let (link_is_a, gathered) = chain_operands(s, prev_dst)?;
        refs.push((gathered, pos, if link_is_a { 1 } else { 0 }));
        prev_dst = &s.dst;
    }
    let n_ops = members.len() as f64;
    let total = nest.points();
    // Miss weighting is reuse-derived; CME feeds the per-chain gates,
    // and the nest position only keys CME lookups.
    let _ = (cme, nest_pos);

    // Reuse facts per gathered ref; `rep[i]` is the index of the first
    // ref with an identical address stream (the one gather that serves
    // all of them).
    let l1 = cfg.l1.line_bytes;
    let l2 = cfg.l2.line_bytes;
    let facts: Vec<Option<RefFacts>> = refs
        .iter()
        .map(|&(_, stmt_pos, slot)| {
            analyze_ref(prog, nest, &nest.body[stmt_pos], stmt_pos, slot, l1, l2)
        })
        .collect();
    let forms: Vec<Option<AddressForm>> = refs
        .iter()
        .map(|(r, _, _)| AddressForm::build(prog, nest, r))
        .collect();
    let mut rep: Vec<usize> = (0..refs.len()).collect();
    for i in 0..refs.len() {
        if let Some(fi) = &forms[i] {
            if let Some(j) = forms[..i]
                .iter()
                .position(|fj| fj.as_ref().is_some_and(|fj| identical_stream(fj, fi)))
            {
                rep[i] = j;
            }
        }
    }
    let lines_of = |i: usize| facts[i].as_ref().map_or(total, |f| f.l2_lines.value);
    let p_new: Vec<f64> = (0..refs.len())
        .map(|i| (lines_of(i) as f64 / total.max(1) as f64).min(1.0))
        .collect();

    let model = LatencyModel::new(*cfg);
    let mesh = Mesh::new(cfg.noc);
    let mut v = FusedViability::default();
    let step = (total / SAMPLES as u64).max(1);
    // Per-ref sampled hop sums (request and fill paths), plus the
    // result path of the head operand.
    let mut hops_req = vec![0u64; refs.len()];
    let mut hops_fill = vec![0u64; refs.len()];
    let mut hops_res_l2 = 0u64;
    let mut hops_res_mc = 0u64;
    for (k, point) in nest.iter_points().step_by(step as usize).enumerate() {
        if k >= SAMPLES {
            break;
        }
        let addrs: Option<Vec<u64>> = refs
            .iter()
            .map(|(r, _, _)| prog.addr_of(r, &point))
            .collect();
        let Some(addrs) = addrs else { continue };
        let core = core_of(nest, &point, cores, cfg);
        let homes: Vec<NodeId> = addrs.iter().map(|&a| cfg.l2_home(a)).collect();
        let mcns: Vec<NodeId> = addrs.iter().map(|&a| cfg.mc_node(cfg.mc_of(a))).collect();
        v.samples += 1;

        use ndc_types::NdcLocation::*;
        if homes.iter().all(|&hm| hm == homes[0]) {
            v.colocation[CacheController.index()] += 1.0;
        }
        // Router viability needs one link that every operand's XY
        // reply route crosses — the n-ary analogue of pairwise
        // overlap (reshaping is pairwise, so fused packets use XY).
        let w = cfg.noc.width;
        let cc_coord = core.coord(w);
        let mut sig =
            RouteSignature::from_route(&mesh, &mesh.xy_route(homes[0].coord(w), cc_coord));
        for hm in &homes[1..] {
            sig = sig.and(&RouteSignature::from_route(
                &mesh,
                &mesh.xy_route(hm.coord(w), cc_coord),
            ));
        }
        if sig.count_ones() > 0 {
            v.colocation[LinkBuffer.index()] += 1.0;
        }
        let same_mc = mcns.iter().all(|&m| m == mcns[0]);
        if same_mc {
            v.colocation[MemoryController.index()] += 1.0;
            if addrs
                .iter()
                .all(|&a| cfg.dram_bank_of(a) == cfg.dram_bank_of(addrs[0]))
            {
                v.colocation[MemoryBank.index()] += 1.0;
            }
        }

        // Packet latency: the slowest operand's availability at the
        // meeting component, one cycle per chained op, result home.
        let hop = cfg.noc.hop_cycles as f64;
        let h = |x: NodeId, y: NodeId| model.hops(x, y) as f64;
        let at_bank = homes
            .iter()
            .zip(&p_new)
            .map(|(&hm, &p)| model.est_data_at_bank(core, hm, p))
            .fold(0.0_f64, f64::max);
        let cc_cost = at_bank + n_ops + h(homes[0], core) * hop;
        v.est_offload[CacheController.index()] += cc_cost;
        v.est_offload[LinkBuffer.index()] += cc_cost + hop;
        let at_mc = homes
            .iter()
            .zip(&mcns)
            .map(|(&hm, &m)| model.est_at_mc(core, hm, m))
            .fold(0.0_f64, f64::max);
        let mc_cost = at_mc + n_ops + h(mcns[0], core) * hop;
        v.est_offload[MemoryController.index()] += mc_cost;
        v.est_offload[MemoryBank.index()] += mc_cost + cfg.mem.dram.row_hit_cycles as f64;

        for i in 0..refs.len() {
            hops_req[i] += model.hops(core, homes[i]);
            hops_fill[i] += model.hops(homes[i], mcns[i]);
        }
        hops_res_l2 += model.hops(homes[0], core);
        hops_res_mc += model.hops(mcns[0], core);
    }

    if v.samples == 0 {
        return None;
    }
    let n = v.samples as f64;
    for c in &mut v.colocation {
        *c /= n;
    }
    for e in &mut v.est_offload {
        *e /= n;
    }

    // Union-footprint traffic: each *distinct* address stream is
    // requested and filled once — an array read by several members is
    // gathered once, which is exactly the byte saving the adoption
    // check banks on. Integer whole-nest totals, as in [`assess`].
    let k = v.samples as u64;
    let mut req = 0u64;
    let mut fills = 0u64;
    for i in 0..refs.len() {
        if rep[i] != i {
            continue; // duplicate stream: served by its representative
        }
        req = req.saturating_add(scaled(MSG_BYTES * total, hops_req[i], k));
        fills = fills.saturating_add(scaled(l2 * lines_of(i), hops_fill[i], k));
    }
    let near_l2 =
        req.saturating_add(fills)
            .saturating_add(scaled(MSG_BYTES * total, hops_res_l2, k));
    let near_mc =
        req.saturating_add(fills)
            .saturating_add(scaled(MSG_BYTES * total, hops_res_mc, k));
    use ndc_types::NdcLocation::*;
    v.est_bytes[CacheController.index()] = near_l2;
    v.est_bytes[LinkBuffer.index()] = near_l2;
    v.est_bytes[MemoryController.index()] = near_mc;
    v.est_bytes[MemoryBank.index()] = near_mc;
    Some(v)
}

/// The core executing an iteration point under block partitioning of
/// the parallel level.
pub fn core_of(nest: &LoopNest, point: &[i64], cores: usize, cfg: &ArchConfig) -> NodeId {
    let cores = cores.max(1).min(cfg.nodes());
    match nest.parallel_level {
        None => NodeId(0),
        Some(level) => {
            let lo = nest.lo[level];
            let hi = nest.hi[level];
            let extent = (hi - lo).max(1) as usize;
            let per = extent.div_ceil(cores).max(1);
            let t = ((point[level] - lo) as usize / per).min(cores - 1);
            NodeId(t as u16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndc_ir::program::{ArrayDecl, ArrayRef, Program, Ref};
    use ndc_types::Op;

    fn cfg() -> ArchConfig {
        ArchConfig::paper_default()
    }

    fn streaming(n: u64) -> (Program, LoopNest) {
        let mut p = Program::new("s");
        let x = p.add_array(ArrayDecl::new("X", vec![n], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![n], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![n], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(y, 1, vec![0])),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![n as i64], vec![s]);
        p.nests.push(nest.clone());
        p.assign_layout(0, 4096);
        (p, nest)
    }

    #[test]
    fn assess_produces_fractions_in_range() {
        let (p, nest) = streaming(4096);
        let cme = ndc_cme::analyze(&p, &cfg(), 25);
        let v = assess(&p, 0, &nest, 0, &nest.body[0], &cfg(), &cme, 25).unwrap();
        assert!(v.samples > 0);
        for f in [
            v.same_bank,
            v.same_mc,
            v.same_dram_bank,
            v.overlap_xy,
            v.overlap_reshaped,
        ] {
            assert!((0.0..=1.0).contains(&f), "fraction out of range: {v:?}");
        }
        // Reshaping can only help.
        assert!(v.overlap_reshaped >= v.overlap_xy);
    }

    #[test]
    fn same_array_offset_chain_shares_banks_often() {
        // Z[i] = X[i] + X[i+25]: operands 25 lines apart... with 8-byte
        // elements, X[i] and X[i+8k] share an L2 line when within one
        // 256-byte line. Use a pair 25*32 elements apart so homes
        // coincide (25 banks * 256B lines).
        let mut p = Program::new("sb");
        let x = p.add_array(ArrayDecl::new("X", vec![8192], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![8192], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            // 25 banks * 32 elements/line = 800 elements ahead: same
            // home bank, different line.
            Ref::Array(ArrayRef::identity(x, 1, vec![800])),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![7000], vec![s]);
        p.nests.push(nest.clone());
        p.assign_layout(0, 4096);
        let cme = ndc_cme::analyze(&p, &cfg(), 25);
        let v = assess(&p, 0, &nest, 0, &nest.body[0], &cfg(), &cme, 25).unwrap();
        assert!(
            v.same_bank > 0.9,
            "operands 800 elements apart always share a home: {v:?}"
        );
    }

    #[test]
    fn core_assignment_is_block_partitioned() {
        let (_, nest) = streaming(100);
        let c = cfg();
        assert_eq!(core_of(&nest, &[0], 25, &c), NodeId(0));
        assert_eq!(core_of(&nest, &[99], 25, &c), NodeId(24));
        assert_eq!(core_of(&nest, &[50], 25, &c), NodeId(12));
        // Serial nest runs on core 0.
        let mut serial = nest.clone();
        serial.parallel_level = None;
        assert_eq!(core_of(&serial, &[99], 25, &c), NodeId(0));
    }

    #[test]
    fn offload_estimates_are_positive_and_ordered() {
        let (p, nest) = streaming(4096);
        let cme = ndc_cme::analyze(&p, &cfg(), 25);
        let v = assess(&p, 0, &nest, 0, &nest.body[0], &cfg(), &cme, 25).unwrap();
        for loc in ndc_types::ALL_NDC_LOCATIONS {
            assert!(v.est_offload[loc.index()] > 1.0, "{v:?}");
            assert!(v.est_offload_legacy[loc.index()] > 1.0, "{v:?}");
            assert!(v.est_bytes[loc.index()] > 0, "{v:?}");
        }
        // The link buffer sits one hop past the L2 bank; the memory
        // bank waits out a row access the queue variant does not.
        for est in [&v.est_offload, &v.est_offload_legacy] {
            let cc = est[ndc_types::NdcLocation::CacheController.index()];
            let lb = est[ndc_types::NdcLocation::LinkBuffer.index()];
            let mc = est[ndc_types::NdcLocation::MemoryController.index()];
            let mb = est[ndc_types::NdcLocation::MemoryBank.index()];
            assert!(lb > cc);
            assert!(mb > mc);
        }
        // Near-L2 and near-memory traffic share requests and fills,
        // differing only in the result path.
        let cc = v.est_bytes[ndc_types::NdcLocation::CacheController.index()];
        let lb = v.est_bytes[ndc_types::NdcLocation::LinkBuffer.index()];
        assert_eq!(cc, lb);
    }

    #[test]
    fn reuse_facts_drive_the_traffic_totals() {
        let (p, nest) = streaming(4096);
        let cme = ndc_cme::analyze(&p, &cfg(), 25);
        let v = assess(&p, 0, &nest, 0, &nest.body[0], &cfg(), &cme, 25).unwrap();
        let r = v.reuse.as_ref().expect("well-formed refs analyze");
        // Streaming X[i]: 4096 elements * 8 B / 256 B = 128 exact L2
        // lines; disjoint arrays never share lines.
        assert_eq!(r.a.l2_lines, ndc_reuse::Count::exact(128));
        assert_eq!(r.b.l2_lines, ndc_reuse::Count::exact(128));
        assert_eq!(r.shared_l2_iters, 0);
        assert_eq!(r.union_l2_lines, 256);
        assert!(r.a.all_exact() && r.b.all_exact());
    }

    #[test]
    fn identical_streams_are_gathered_once() {
        // Z[i] = X[i] + X[i]: one gather serves both operands, so the
        // pair's traffic equals a single-operand stream's (requests +
        // fills for one stream, one result per iteration).
        let mut p = Program::new("dup");
        let x = p.add_array(ArrayDecl::new("X", vec![4096], 8));
        let z = p.add_array(ArrayDecl::new("Z", vec![4096], 8));
        let s = Stmt::binary(
            0,
            ArrayRef::identity(z, 1, vec![0]),
            Op::Add,
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            Ref::Array(ArrayRef::identity(x, 1, vec![0])),
            1,
        );
        let nest = LoopNest::new(0, vec![0], vec![4096], vec![s]);
        p.nests.push(nest.clone());
        p.assign_layout(0, 4096);
        let cme = ndc_cme::analyze(&p, &cfg(), 25);
        let v = assess(&p, 0, &nest, 0, &nest.body[0], &cfg(), &cme, 25).unwrap();
        let r = v.reuse.as_ref().unwrap();
        assert_eq!(r.shared_l2_iters, 4096);
        assert_eq!(r.union_l2_lines, r.a.l2_lines.value);
        // Distinct-operand traffic at the same shape costs strictly
        // more.
        let (p2, nest2) = streaming(4096);
        let cme2 = ndc_cme::analyze(&p2, &cfg(), 25);
        let v2 = assess(&p2, 0, &nest2, 0, &nest2.body[0], &cfg(), &cme2, 25).unwrap();
        let t = ndc_types::NdcLocation::CacheController.index();
        assert!(
            v.est_bytes[t] < v2.est_bytes[t],
            "dup {} vs distinct {}",
            v.est_bytes[t],
            v2.est_bytes[t]
        );
    }

    #[test]
    fn latency_model_orders_paths() {
        let m = LatencyModel::new(cfg());
        let core = NodeId(12);
        let near = NodeId(12);
        let far = NodeId(24);
        // Farther homes take longer.
        assert!(m.est_data_at_bank(core, far, 0.0) > m.est_data_at_bank(core, near, 0.0));
        // Missing L2 costs more than hitting.
        assert!(m.est_data_at_bank(core, near, 1.0) > m.est_data_at_bank(core, near, 0.0));
        // Full path to core exceeds bank availability.
        assert!(m.est_to_core(core, far, 0.5) > m.est_data_at_bank(core, far, 0.5));
    }
}
